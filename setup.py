"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs bdist_wheel for PEP 660
editable installs; on offline boxes without `wheel`, fall back to
``python setup.py develop``.
"""

from setuptools import setup

setup()
