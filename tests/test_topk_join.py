"""Tests for the top-K star join operator (`repro.algorithms.topk_join`).

Includes a reconstruction of the paper's Figure 5 / section IV-B
walkthrough: the group bound unblocks the second result earlier than the
classic HRJN bound.
"""

import pytest

from repro.algorithms.topk_join import (CLASSIC, GROUP, ListInput,
                                        TopKStarJoin, topk_join)

# Three relations in the spirit of Figure 5.  Scores descend; ids join
# across all three.  Constructed so that after six retrievals the
# snapshot matches the paper's narrative: id 2 completes with 2.5, id 1
# with 2.2, the bucket holds id 3 seen in R1+R3 (1.0 + 0.6) and id 4
# seen in R2 (0.8).
R1 = [(2, 1.0), (3, 1.0), (1, 0.9), (4, 0.5)]
R2 = [(2, 0.8), (1, 0.8), (4, 0.8), (3, 0.4)]
R3 = [(2, 0.7), (3, 0.6), (1, 0.5), (4, 0.3)]


class TestListInput:
    def test_pop_and_peek(self):
        inp = ListInput([(1, 0.9), (2, 0.5)])
        assert inp.peek_score() == pytest.approx(0.9)
        assert inp.pop() == (1, 0.9)
        assert inp.peek_score() == pytest.approx(0.5)
        inp.pop()
        assert inp.peek_score() is None
        assert inp.pop() is None

    def test_unsorted_raises(self):
        with pytest.raises(ValueError):
            ListInput([(1, 0.5), (2, 0.9)])


class TestStarJoinMechanics:
    def test_completion_sums_scores(self):
        join = TopKStarJoin([ListInput(r) for r in (R1, R2, R3)], 10)
        while join.step():
            pass
        scores = {c.key: c.score for c in join.completed}
        assert scores[2] == pytest.approx(2.5)
        assert scores[1] == pytest.approx(2.2)
        assert scores[3] == pytest.approx(2.0)
        assert scores[4] == pytest.approx(1.6)

    def test_first_seen_score_wins_duplicates(self):
        # A duplicate id within one input keeps only its first (max) score.
        r1 = [(1, 0.9), (1, 0.4)]
        r2 = [(1, 0.8)]
        join = TopKStarJoin([ListInput(r1), ListInput(r2)], 10)
        while join.step():
            pass
        assert len(join.completed) == 1
        assert join.completed[0].score == pytest.approx(1.7)

    def test_id_cannot_complete_twice(self):
        r1 = [(1, 0.9), (1, 0.8)]
        r2 = [(1, 0.9), (1, 0.8)]
        join = TopKStarJoin([ListInput(r1), ListInput(r2)], 10)
        while join.step():
            pass
        assert len(join.completed) == 1

    def test_per_input_scores_recorded(self):
        join = TopKStarJoin([ListInput(r) for r in (R1, R2, R3)], 10)
        while join.step():
            pass
        two = next(c for c in join.completed if c.key == 2)
        assert two.scores == [1.0, 0.8, 0.7]

    def test_round_robin_until_target(self):
        join = TopKStarJoin([ListInput(R1), ListInput(R2), ListInput(R3)],
                            target_k=10)
        for _ in range(3):
            join.step()
        # One tuple from each input under round-robin.
        assert join.tuples_retrieved == 3
        assert all(inp._pos == 1 for inp in join.inputs)

    def test_invalid_bound_mode(self):
        with pytest.raises(ValueError):
            TopKStarJoin([ListInput(R1)], 1, bound_mode="nope")

    def test_no_inputs_raises(self):
        with pytest.raises(ValueError):
            TopKStarJoin([], 1)


class TestBounds:
    def _advance(self, bound_mode, steps):
        join = TopKStarJoin([ListInput(r) for r in (R1, R2, R3)], 2,
                            bound_mode=bound_mode)
        for _ in range(steps):
            join.step()
        return join

    def test_paper_snapshot_classic_bound(self):
        """After three round-robin sweeps (nine tuples), the classic
        bound is max_i(s^i + sum of other maxima): s = (0.5, 0.4, 0.3),
        maxima (1.0, 0.8, 0.7) -> max(2.0, 2.1, 2.1) = 2.1."""
        join = self._advance(CLASSIC, 9)
        assert join.threshold() == pytest.approx(2.1)

    def test_paper_snapshot_group_bound_tighter(self):
        """The group bound sees the partials, as in the paper's Figure 5
        walkthrough: G{1,3} = (3, 1.6) needs s^2, G{2} = (4, 0.8) needs
        s^1 + s^3 -> max(1.6 + 0.4, 0.8 + 0.8, 1.2) = 2.0, strictly
        tighter than the classic 2.1."""
        join = self._advance(GROUP, 9)
        assert join.threshold() == pytest.approx(2.0)

    def test_group_bound_never_looser(self):
        for steps in range(1, 12):
            classic = self._advance(CLASSIC, steps)
            group = self._advance(GROUP, steps)
            assert group.threshold() <= classic.threshold() + 1e-12

    def test_bounds_sound(self):
        """Any result not yet completed scores below the threshold."""
        for mode in (CLASSIC, GROUP):
            join = TopKStarJoin([ListInput(r) for r in (R1, R2, R3)], 2,
                                bound_mode=mode)
            final = {2: 2.5, 1: 2.2, 3: 2.0, 4: 1.6}
            while join.step():
                bound = join.threshold()
                done = {c.key for c in join.completed}
                for key, score in final.items():
                    if key not in done:
                        assert score <= bound + 1e-9

    def test_exhausted_threshold_is_minus_inf(self):
        join = TopKStarJoin([ListInput(r) for r in (R1, R2, R3)], 10)
        while join.step():
            pass
        assert join.threshold() == -float("inf")
        assert join.exhausted

    def test_dead_partials_dropped_when_input_dries(self):
        r1 = [(1, 0.9)]
        r2 = [(2, 0.8), (1, 0.7)]
        join = TopKStarJoin([ListInput(r1), ListInput(r2)], 5,
                            bound_mode=GROUP)
        while join.step():
            pass
        # id 2 was seen only in r2 and r1 is exhausted: no valid bound
        # remains for it.
        assert join.threshold() == -float("inf")
        assert {c.key for c in join.completed} == {1}


class TestTopKJoinDriver:
    def test_emits_in_score_order(self):
        emitted, _ = topk_join([R1, R2, R3], k=4)
        assert [c.key for c in emitted] == [2, 1, 3, 4]
        scores = [c.score for c in emitted]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits_output(self):
        emitted, _ = topk_join([R1, R2, R3], k=2)
        assert [c.key for c in emitted] == [2, 1]

    def test_group_bound_retrieves_no_more_than_classic(self):
        _, group_cost = topk_join([R1, R2, R3], k=2, bound_mode=GROUP)
        _, classic_cost = topk_join([R1, R2, R3], k=2, bound_mode=CLASSIC)
        assert group_cost <= classic_cost

    def test_early_termination_beats_full_scan(self):
        # Large correlated relations: top-1 must not read everything.
        n = 2000
        big = [[(i, 1000.0 - i) for i in range(n)] for _ in range(2)]
        emitted, cost = topk_join(big, k=1)
        assert emitted[0].key == 0
        assert cost < 2 * n / 10

    def test_single_relation(self):
        emitted, _ = topk_join([[(5, 0.9), (6, 0.4)]], k=1)
        assert [c.key for c in emitted] == [5]
        assert emitted[0].score == pytest.approx(0.9)
