"""Tests for the synthetic corpora and workloads (`repro.datagen`)."""

import numpy as np
import pytest

from repro import XMLDatabase
from repro.datagen import (CorrelatedGroup, DBLPGenerator, PlantedTerm,
                           PlantingPlan, TextSource, XMarkGenerator,
                           frequency_ladder)
from repro.datagen.workload import (QuerySpec, WorkloadBuilder,
                                    random_terms_in_range)


class TestTextSource:
    def test_deterministic(self):
        a = TextSource(seed=5).sentence(20)
        b = TextSource(seed=5).sentence(20)
        assert a == b

    def test_different_seeds_differ(self):
        assert TextSource(seed=5).sentence(50) != \
            TextSource(seed=6).sentence(50)

    def test_zipf_skew(self):
        words = TextSource(seed=1, vocab_size=100).words_batch(20_000)
        counts = {}
        for w in words:
            counts[w] = counts.get(w, 0) + 1
        # The most frequent word dominates a mid-rank word heavily.
        assert counts.get("w00000", 0) > 5 * counts.get("w00050", 1)

    def test_vocab_prefix(self):
        src = TextSource(seed=1, vocab_size=10, prefix="zz")
        assert all(w.startswith("zz") for w in src.words_batch(100))

    def test_empty_vocab_raises(self):
        with pytest.raises(ValueError):
            TextSource(seed=1, vocab_size=0)


class TestDBLPGenerator:
    def test_deterministic(self):
        t1 = DBLPGenerator(seed=9, n_papers=50).generate()
        t2 = DBLPGenerator(seed=9, n_papers=50).generate()
        assert t1.to_xml() == t2.to_xml()

    def test_structure(self):
        tree = DBLPGenerator(seed=1, n_papers=30, n_conferences=3,
                             n_years=2).generate()
        assert tree.root.tag == "dblp"
        confs = [c for c in tree.root.children if c.tag == "conference"]
        assert len(confs) == 3
        papers = tree.find_all(lambda n: n.tag == "paper")
        assert len(papers) == 30
        for paper in papers:
            tags = [c.tag for c in paper.children]
            assert "title" in tags and "authors" in tags

    def test_paper_depth(self):
        tree = DBLPGenerator(seed=1, n_papers=10).generate()
        paper = tree.find_all(lambda n: n.tag == "paper")[0]
        # dblp / conference / year / paper
        assert paper.level == 4

    def test_abstracts_optional(self):
        with_abs = DBLPGenerator(seed=1, n_papers=10,
                                 abstract_words=20).generate()
        without = DBLPGenerator(seed=1, n_papers=10,
                                abstract_words=0).generate()
        assert with_abs.find_all(lambda n: n.tag == "abstract")
        assert not without.find_all(lambda n: n.tag == "abstract")

    def test_planted_frequency_exact(self):
        plan = PlantingPlan(planted=[PlantedTerm("needle", 17)])
        gen = DBLPGenerator(seed=2, n_papers=100, plan=plan)
        db = XMLDatabase.from_tree(gen.generate())
        assert gen.realized_df["needle"] == 17
        assert db.document_frequency("needle") == 17

    def test_planted_frequency_clamped(self):
        plan = PlantingPlan(planted=[PlantedTerm("needle", 10 ** 6)])
        gen = DBLPGenerator(seed=2, n_papers=20, plan=plan)
        db = XMLDatabase.from_tree(gen.generate())
        assert db.document_frequency("needle") == gen.realized_df["needle"]
        assert gen.realized_df["needle"] <= 20

    def test_correlated_terms_cooccur(self):
        plan = PlantingPlan(correlated=[
            CorrelatedGroup(("qq1", "qq2"), 25, rate=1.0)])
        db = XMLDatabase.from_tree(
            DBLPGenerator(seed=2, n_papers=100, plan=plan).generate())
        # With rate 1.0 both terms land in the same 25 papers, so the
        # two-keyword query has ~25 paper-level results.
        results = db.search(["qq1", "qq2"], semantics="slca")
        assert len(results) == 25


class TestXMarkGenerator:
    def test_deterministic(self):
        t1 = XMarkGenerator(seed=4, scale=0.003).generate()
        t2 = XMarkGenerator(seed=4, scale=0.003).generate()
        assert t1.to_xml() == t2.to_xml()

    def test_structure(self):
        tree = XMarkGenerator(seed=4, scale=0.003).generate()
        assert tree.root.tag == "site"
        top = [c.tag for c in tree.root.children]
        assert top == ["regions", "people", "open_auctions",
                       "closed_auctions", "categories"]

    def test_scale_controls_counts(self):
        small = XMarkGenerator(seed=4, scale=0.002).generate()
        large = XMarkGenerator(seed=4, scale=0.006).generate()
        n_items = lambda t: len(t.find_all(lambda n: n.tag == "item"))
        assert 2 * n_items(small) <= n_items(large)

    def test_deeper_than_dblp(self):
        tree = XMarkGenerator(seed=4, scale=0.002).generate()
        assert tree.depth >= 5

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            XMarkGenerator(scale=0)

    def test_planting(self):
        plan = PlantingPlan(planted=[PlantedTerm("needle", 9)])
        gen = XMarkGenerator(seed=4, scale=0.002, plan=plan)
        db = XMLDatabase.from_tree(gen.generate())
        assert db.document_frequency("needle") == 9


class TestFrequencyLadder:
    def test_names_encode_frequency(self):
        ladder = frequency_ladder([10, 1000], per_step=2)
        names = [p.term for p in ladder]
        assert "kw10-0" in names and "kw1k-1" in names
        assert len(ladder) == 4


class TestWorkloadBuilder:
    @pytest.fixture
    def builder(self):
        return WorkloadBuilder(high_freq=200, low_freqs=(5, 20),
                               per_cell=2, max_keywords=4,
                               correlated_entities=15)

    def test_plan_has_all_terms(self, builder):
        plan = builder.plan()
        terms = plan.all_terms()
        assert "hi200-0" in terms
        assert "lo5-0" in terms and "lo20-7" in terms
        assert "corr0-0" in terms

    def test_frequency_sweep_shape(self, builder):
        queries = builder.frequency_sweep(n_keywords=3)
        assert len(queries) == 2 * 2  # ranges x per_cell
        for q in queries:
            assert q.n_keywords == 3 == len(q.terms)
            assert q.terms[0].startswith("hi")
            assert all(t.startswith("lo") for t in q.terms[1:])

    def test_sweep_keyword_bounds(self, builder):
        with pytest.raises(ValueError):
            builder.frequency_sweep(n_keywords=1)
        with pytest.raises(ValueError):
            builder.frequency_sweep(n_keywords=9)

    def test_equal_frequency(self, builder):
        queries = builder.equal_frequency(n_keywords=4, freq=20)
        for q in queries:
            assert len(q.terms) == 4
            assert all(t.startswith("lo20") for t in q.terms)

    def test_correlated_queries(self, builder):
        queries = builder.correlated_queries()
        sizes = sorted(len(q.terms) for q in queries)
        assert sizes == [2, 2, 3, 3, 4, 5]

    def test_queries_use_distinct_planted_terms(self, builder):
        plan_terms = set(builder.plan().all_terms())
        for q in builder.frequency_sweep(3) + builder.correlated_queries():
            assert set(q.terms) <= plan_terms

    def test_end_to_end_frequencies(self):
        builder = WorkloadBuilder(high_freq=80, low_freqs=(6,), per_cell=1,
                                  max_keywords=3, correlated_entities=10)
        gen = DBLPGenerator(seed=5, n_papers=150, plan=builder.plan())
        db = XMLDatabase.from_tree(gen.generate())
        assert db.document_frequency("hi80-0") == 80
        assert db.document_frequency("lo6-0") == 6


class TestRandomTermsInRange:
    def test_frequencies_within_range(self, dblp_db):
        terms = random_terms_in_range(dblp_db.inverted_index, 5, 50, 8)
        assert terms
        for term in terms:
            assert 5 <= dblp_db.document_frequency(term) <= 50

    def test_planted_terms_excluded(self, dblp_db):
        terms = random_terms_in_range(dblp_db.inverted_index, 1, 10 ** 6,
                                      10 ** 6)
        assert not any(t.startswith(("hi", "lo", "corr")) for t in terms)

    def test_deterministic(self, dblp_db):
        a = random_terms_in_range(dblp_db.inverted_index, 5, 50, 5, seed=3)
        b = random_terms_in_range(dblp_db.inverted_index, 5, 50, 5, seed=3)
        assert a == b


class TestQuerySpec:
    def test_iterable(self):
        q = QuerySpec(("a", "b"), 10, 2)
        assert list(q) == ["a", "b"]
