"""Tests for text tokenization (`repro.index.tokenizer`)."""

from repro.index.tokenizer import DEFAULT_STOPWORDS, Tokenizer


class TestTokens:
    def test_lowercases(self):
        assert Tokenizer(stopwords=()).tokens("XML Data") == ["xml", "data"]

    def test_splits_on_punctuation(self):
        toks = Tokenizer(stopwords=()).tokens("top-k, join; (XML)!")
        assert toks == ["top-k", "join", "xml"]

    def test_keeps_internal_hyphen_and_apostrophe(self):
        toks = Tokenizer(stopwords=()).tokens("fagin's top-k")
        assert toks == ["fagin's", "top-k"]

    def test_numbers_kept(self):
        assert Tokenizer(stopwords=()).tokens("ICDE 2010") == ["icde", "2010"]

    def test_stopwords_removed(self):
        toks = Tokenizer().tokens("the quick search of the data")
        assert "the" not in toks and "of" not in toks
        assert toks == ["quick", "search", "data"]

    def test_custom_stopwords(self):
        toks = Tokenizer(stopwords={"data"}).tokens("the data model")
        assert toks == ["the", "model"]

    def test_min_length_filter(self):
        toks = Tokenizer(stopwords=(), min_length=3).tokens("an xml db x")
        assert toks == ["xml"]

    def test_empty_text(self):
        assert Tokenizer().tokens("") == []

    def test_default_stopwords_frozen(self):
        assert "the" in DEFAULT_STOPWORDS
        assert isinstance(DEFAULT_STOPWORDS, frozenset)


class TestTermFrequencies:
    def test_counts(self):
        tf = Tokenizer(stopwords=()).term_frequencies("xml data xml")
        assert tf == {"xml": 2, "data": 1}

    def test_empty(self):
        assert Tokenizer().term_frequencies("") == {}

    def test_stopwords_not_counted(self):
        tf = Tokenizer().term_frequencies("the the the data")
        assert tf == {"data": 1}


class TestQueryTerms:
    def test_distinct_in_order(self):
        terms = Tokenizer().query_terms("XML data xml search")
        assert terms == ["xml", "data", "search"]

    def test_stopwords_kept_in_queries(self):
        assert Tokenizer().query_terms("the") == ["the"]

    def test_empty_query(self):
        assert Tokenizer().query_terms("   ") == []
