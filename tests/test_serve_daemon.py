"""The `repro serve` daemon: endpoint correctness vs. the library,
admission control (429 queue_full / 504 deadline), metric wiring, and
the worker-pool evaluation path.

The daemon runs on a private event loop in a background thread with an
ephemeral port and a private `MetricsRegistry`, so tests are hermetic
and parallel-safe.  Admission-control edge cases that would be timing
races over HTTP are driven directly against `_admit` on a scripted
semaphore instead.
"""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.obs import MetricsRegistry
from repro.serve import AdmissionError, ServeDaemon, ShardedDatabase


class DaemonHarness:
    """Run a `ServeDaemon` on its own loop + thread; HTTP helpers."""

    def __init__(self, db, **kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("metrics", MetricsRegistry())
        self.daemon = ServeDaemon(db, **kwargs)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.daemon.start())
        self._ready.set()
        self.loop.run_forever()

    def __enter__(self):
        self.thread.start()
        assert self._ready.wait(10), "daemon failed to start"
        return self

    def __exit__(self, *exc):
        asyncio.run_coroutine_threadsafe(self.daemon.stop(),
                                         self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()

    def request(self, path, method="GET"):
        conn = http.client.HTTPConnection("127.0.0.1", self.daemon.port,
                                          timeout=30)
        try:
            conn.request(method, path)
            resp = conn.getresponse()
            body = resp.read().decode("utf-8")
            return resp.status, body
        finally:
            conn.close()

    def get_json(self, path, method="GET"):
        status, body = self.request(path, method=method)
        return status, json.loads(body)


@pytest.fixture(scope="module")
def sharded(dblp_db):
    return ShardedDatabase.from_database(dblp_db, 3)


@pytest.fixture(scope="module")
def harness(sharded):
    with DaemonHarness(sharded, max_concurrency=4,
                       queue_limit=8) as h:
        yield h


def payload_ids(body):
    return [(tuple(r["dewey"]), round(r["score"], 9))
            for r in body["results"]]


def oracle_ids(results):
    return [(tuple(r.node.dewey), round(r.score, 9)) for r in results]


class TestEndpoints:
    def test_healthz(self, harness):
        status, body = harness.get_json("/healthz")
        assert status == 200
        assert body == {"status": "ok", "shards": 3, "workers": 0}

    def test_topk_matches_library(self, harness, dblp_db):
        status, body = harness.get_json("/topk?q=alpha+beta&k=7")
        assert status == 200
        want = dblp_db.search_topk("alpha beta", 7)
        assert payload_ids(body) == oracle_ids(want.results)
        assert body["partial"] == want.partial
        assert body["cached"] is False

    def test_search_matches_library(self, harness, dblp_db):
        status, body = harness.get_json("/search?q=cx+cy&semantics=slca")
        assert status == 200
        want = dblp_db.search("cx cy", semantics="slca", use_cache=False)
        assert payload_ids(body) == oracle_ids(want)

    def test_second_call_is_cached(self, harness, dblp_db):
        harness.get_json("/topk?q=rare+gamma&k=5")
        status, body = harness.get_json("/topk?q=rare+gamma&k=5")
        assert status == 200
        assert body["cached"] is True
        want = dblp_db.search_topk("rare gamma", 5)
        assert payload_ids(body) == oracle_ids(want.results)

    def test_bad_requests_are_typed(self, harness):
        assert harness.get_json("/topk?k=5")[0] == 400
        assert harness.get_json("/topk?q=alpha&k=zero")[0] == 400
        assert harness.get_json(
            "/search?q=alpha&semantics=nope")[0] == 400
        assert harness.get_json("/nope")[0] == 404

    def test_stats_shape(self, harness):
        status, body = harness.get_json("/stats")
        assert status == 200
        assert body["shards"] == 3
        assert body["queue_limit"] == 8
        assert body["manifest"]["strategy"] == "root-child-mod"
        assert "results" in body["cache"]

    def test_cache_clear_requires_post_and_clears(self, harness):
        harness.get_json("/topk?q=alpha&k=3")
        assert harness.get_json("/cache/clear")[0] == 405
        status, body = harness.get_json("/cache/clear", method="POST")
        assert status == 200 and body["cleared"] is True
        assert len(harness.daemon.cache.results) == 0

    def test_metrics_exposition(self, harness):
        harness.get_json("/topk?q=alpha+beta&k=3")
        status, text = harness.request("/metrics")
        assert status == 200
        assert "repro_serve_queue_depth" in text
        assert "repro_serve_requests_total" in text
        assert 'repro_serve_rejects_total{reason="queue_full"}' in text
        assert 'repro_serve_shard_ms_count{shard="0"}' in text
        assert "repro_serve_latency_ms_count" in text


class TestDeadlineOverHttp:
    def test_zero_budget_uncached_is_504(self, harness):
        status, body = harness.get_json(
            "/topk?q=beta+gamma+rare&k=50&timeout_ms=0")
        assert status == 504
        assert body["error"]["type"] == "deadline"

    def test_zero_budget_partial_policy_returns_200_partial(
            self, harness, dblp_db):
        status, body = harness.get_json(
            "/search?q=beta+gamma+rare&timeout_ms=0&partial=1")
        assert status == 200
        assert body["partial"] is True
        full = {tuple(r.node.dewey)
                for r in dblp_db.search("beta gamma rare",
                                        use_cache=False)}
        assert {tuple(r["dewey"]) for r in body["results"]} <= full

    def test_partial_responses_are_not_cached(self, harness):
        harness.get_json("/search?q=beta+gamma+rare&timeout_ms=0&partial=1")
        status, body = harness.get_json(
            "/search?q=beta+gamma+rare&timeout_ms=0&partial=1")
        assert body["cached"] is False

    def test_cache_hit_is_served_before_admission(self, harness):
        """A cached answer costs no slot, so it is exempt from the
        budget: the hit path returns 200 even with a zero budget."""
        harness.get_json("/topk?q=cx+cy&k=4")     # warm (no budget)
        status, body = harness.get_json(
            "/topk?q=cx+cy&k=4&timeout_ms=0")
        assert status == 200 and body["cached"] is True


class TestAdmissionControl:
    def _daemon(self, sharded, **kwargs):
        kwargs.setdefault("metrics", MetricsRegistry())
        return ServeDaemon(sharded, **kwargs)

    def test_queue_full_is_429(self, sharded):
        daemon = self._daemon(sharded, max_concurrency=1, queue_limit=1)

        async def scenario():
            daemon._sem = asyncio.Semaphore(1)
            await daemon._sem.acquire()          # occupy the only slot
            waiter = asyncio.ensure_future(daemon._admit(None))
            await asyncio.sleep(0.01)            # waiter fills the queue
            with pytest.raises(AdmissionError) as excinfo:
                await daemon._admit(None)
            assert excinfo.value.status == 429
            assert excinfo.value.reason == "queue_full"
            daemon._sem.release()
            await waiter                         # first waiter admitted
            assert daemon._waiting == 0

        asyncio.run(scenario())
        rejects = daemon.metrics.counter("repro_serve_rejects_total",
                                         {"reason": "queue_full"})
        assert rejects.value == 1

    def test_deadline_expiry_in_queue_is_504(self, sharded):
        from repro.reliability.deadline import Deadline

        daemon = self._daemon(sharded, max_concurrency=1, queue_limit=4)

        async def scenario():
            daemon._sem = asyncio.Semaphore(1)
            await daemon._sem.acquire()          # never released
            with pytest.raises(AdmissionError) as excinfo:
                await daemon._admit(Deadline(timeout_ms=5.0))
            assert excinfo.value.status == 504
            assert excinfo.value.reason == "deadline"
            assert daemon._waiting == 0

        asyncio.run(scenario())
        rejects = daemon.metrics.counter("repro_serve_rejects_total",
                                         {"reason": "deadline"})
        assert rejects.value == 1

    def test_queue_depth_returns_to_zero(self, harness):
        for _ in range(3):
            harness.get_json("/topk?q=alpha&k=2")
        gauge = harness.daemon.metrics.gauge("repro_serve_queue_depth")
        assert gauge.value == 0
        inflight = harness.daemon.metrics.gauge("repro_serve_inflight")
        assert inflight.value == 0

    def test_concurrent_burst_all_accounted(self, harness):
        """A concurrent burst larger than max_concurrency: every
        request gets a typed response (200 or 429/504), and the queue
        drains back to zero."""
        statuses = []
        lock = threading.Lock()

        def fire(i):
            status, _body = harness.get_json(
                f"/topk?q=beta+gamma&k=5&timeout_ms=5000&x={i}")
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert len(statuses) == 12
        assert all(s in (200, 429, 504) for s in statuses)
        assert statuses.count(200) >= 1
        assert harness.daemon.metrics.gauge(
            "repro_serve_queue_depth").value == 0


class TestWorkerPools:
    def test_workers_pool_path_matches_oracle(self, sharded, dblp_db):
        with DaemonHarness(sharded, workers=1, max_concurrency=2) as h:
            status, body = h.get_json("/topk?q=alpha+beta&k=6")
            assert status == 200
            want = dblp_db.search_topk("alpha beta", 6)
            assert payload_ids(body) == oracle_ids(want.results)
            status, body = h.get_json("/search?q=rare+gamma")
            assert status == 200
            want = dblp_db.search("rare gamma", use_cache=False)
            assert payload_ids(body) == oracle_ids(want)
            # fan-out latency histograms saw every shard that ran
            text = h.request("/metrics")[1]
            assert 'repro_serve_shard_ms_count{shard="0"}' in text


class TestLifecycleAndHealth:
    """Daemon lifecycle: per-shard /healthz liveness, drain semantics
    (SIGTERM path = `stop(drain=True)`), in-flight completion, and
    clean pool shutdown."""

    def test_healthz_reports_per_shard_liveness(self, sharded):
        with DaemonHarness(sharded, workers=1) as h:
            status, body = h.get_json("/healthz")
            assert status == 200 and body["status"] == "ok"
            shard_health = body["shard_health"]
            assert sorted(shard_health) == ["0", "1", "2"]
            for cell in shard_health.values():
                assert cell["state"] == "healthy"
                assert cell["breaker"] == "closed"
                assert cell["pool"] == "ready"
                assert cell["rebuilds"] == 0

    def test_503_only_when_every_shard_is_down(self, sharded):
        with DaemonHarness(sharded, workers=1) as h:
            sup = h.daemon.supervisor
            # one dead shard: brownout, the node stays in rotation
            sup._pool_state[0] = "down"
            status, body = h.get_json("/healthz")
            assert status == 200 and body["status"] == "degraded"
            assert body["shard_health"]["0"]["state"] == "down"
            assert body["shard_health"]["1"]["state"] == "healthy"
            # all dead: pull the node
            for sid in range(3):
                sup._pool_state[sid] = "down"
            status, body = h.get_json("/healthz")
            assert status == 503 and body["status"] == "down"
            # recovery flips it back without a restart
            for sid in range(3):
                sup._pool_state[sid] = "ready"
            status, body = h.get_json("/healthz")
            assert status == 200 and body["status"] == "ok"

    def test_draining_daemon_rejects_new_queries_typed(self, sharded):
        with DaemonHarness(sharded) as h:
            h.daemon._draining = True
            try:
                status, body = h.get_json("/topk?q=alpha&k=3")
                assert status == 503
                assert body["error"]["type"] == "shutting_down"
                assert h.daemon.metrics.counter(
                    "repro_serve_rejects_total",
                    {"reason": "shutting_down"}).value == 1
                status, body = h.get_json("/healthz")
                assert status == 503 and body["status"] == "draining"
            finally:
                h.daemon._draining = False

    def test_graceful_stop_lets_inflight_finish(self, sharded):
        """`stop(drain=True)` (the SIGTERM path): an in-flight request
        completes with 200 while the daemon drains, and the pools are
        shut down afterwards."""
        h = DaemonHarness(sharded, workers=1, drain_grace_ms=5000.0)
        with h:
            daemon = h.daemon
            inner = daemon._eval_topk

            async def slow_eval(*args, **kwargs):
                await asyncio.sleep(0.3)
                return await inner(*args, **kwargs)

            daemon._eval_topk = slow_eval
            outcome = {}

            def fire():
                outcome["resp"] = h.get_json(
                    "/topk?q=alpha+beta&k=5&timeout_ms=10000")

            client = threading.Thread(target=fire)
            client.start()
            deadline = time.perf_counter() + 5.0
            while (daemon._inflight_count == 0
                   and time.perf_counter() < deadline):
                time.sleep(0.005)
            assert daemon._inflight_count == 1, "request never started"
            asyncio.run_coroutine_threadsafe(daemon.stop(),
                                             h.loop).result(30)
            client.join(30)
            status, body = outcome["resp"]
            assert status == 200, body
            assert body["results"], "drained request lost its results"
            assert daemon._inflight_count == 0
            sup = daemon.supervisor
            assert all(sup.pool(sid) is None for sid in range(3))
            # a post-drain connection attempt is refused: the listener
            # closed before the drain started
            with pytest.raises(OSError):
                h.request("/healthz")
