"""Tests for per-query resource accounting (`repro.obs.account`).

Covers the account object itself, the context-var scoping (nested
accounts shadow, they never double-charge), the fold into
`ExecutionStats`, the disk-path integration (a lazy v3 database
produces nonzero byte counters; the eager in-memory index produces
zeros but still attaches a breakdown), cache attribution, and the
metric families the API layer publishes.  The drift test pins
`ExecutionStats._COUNTER_FIELDS` to the dataclass so a new counter
cannot silently miss merge/as_dict.
"""

import dataclasses

import pytest

from repro.algorithms.base import ExecutionStats
from repro.api import XMLDatabase
from repro.diskdb import load_database, save_database
from repro.obs.account import (ResourceAccount, accounting, active_account,
                               fold_into_stats, merge_resources,
                               postings_nbytes)


class TestResourceAccount:
    def test_record_column_mapped(self):
        account = ResourceAccount()
        account.record_column(2, "delta", 100, 400, 50, True)
        assert account.bytes_mapped == 100
        assert account.bytes_copied == 0
        assert account.bytes_decompressed == 400
        assert account.postings_bytes_read == 100
        assert account.columns_decompressed == 1
        assert account.by_codec == {"delta": 400}
        assert account.level_postings == {2: 50}
        assert account.level_bytes == {2: 100}

    def test_record_column_copied(self):
        account = ResourceAccount()
        account.record_column(1, "rle", 80, 320, 40, False)
        assert account.bytes_mapped == 0
        assert account.bytes_copied == 80

    def test_record_cache(self):
        account = ResourceAccount()
        account.record_cache(True, 1000)
        account.record_cache(False, 500)
        assert account.cache_bytes_saved == 1000
        assert account.cache_bytes_paid == 500

    def test_as_dict_string_level_keys(self):
        account = ResourceAccount()
        account.record_column(3, "delta", 10, 40, 5, True)
        data = account.as_dict()
        assert data["by_level_postings"] == {"3": 5}
        assert data["by_level_bytes"] == {"3": 10}
        assert data["by_codec"] == {"delta": 40}


class TestAccountingContext:
    def test_no_active_account_by_default(self):
        assert active_account() is None

    def test_context_sets_and_restores(self):
        with accounting() as account:
            assert active_account() is account
        assert active_account() is None

    def test_nested_account_shadows_outer(self):
        """The inner scope replaces the outer: shard-level accounting
        must not double-charge the root-protocol account."""
        with accounting() as outer:
            with accounting() as inner:
                active_account().record_copy(100)
            assert active_account() is outer
            active_account().record_copy(7)
        assert inner.bytes_copied == 100
        assert outer.bytes_copied == 7


class TestFoldAndMerge:
    def test_fold_into_stats(self):
        stats = ExecutionStats()
        account = ResourceAccount()
        account.record_column(1, "delta", 100, 400, 50, True)
        account.record_cache(True, 30)
        fold_into_stats(stats, account)
        assert stats.bytes_mapped == 100
        assert stats.bytes_decompressed == 400
        assert stats.columns_decompressed == 1
        assert stats.cache_bytes_saved == 30
        assert stats.resources["by_codec"] == {"delta": 400}

    def test_merge_resources_sums_recursively(self):
        a = {"bytes_mapped": 1, "by_codec": {"delta": 10}}
        b = {"bytes_mapped": 2, "by_codec": {"delta": 5, "rle": 3}}
        merged = merge_resources(a, b)
        assert merged["bytes_mapped"] == 3
        assert merged["by_codec"] == {"delta": 15, "rle": 3}

    def test_merge_resources_none_identity(self):
        assert merge_resources(None, None) is None
        assert merge_resources(None, {"x": 1}) == {"x": 1}
        assert merge_resources({"x": 1}, None) == {"x": 1}

    def test_stats_merge_carries_resources(self):
        left = ExecutionStats()
        right = ExecutionStats()
        left.resources = {"bytes_mapped": 5}
        right.resources = {"bytes_mapped": 7}
        left += right
        assert left.resources["bytes_mapped"] == 12
        assert left.bytes_mapped == 0  # scalars merge separately


class TestCounterFieldDrift:
    """Satellite: a numeric counter added to ExecutionStats must also
    land in _COUNTER_FIELDS, or merge()/as_dict() silently drop it."""

    def test_counter_fields_match_dataclass(self):
        # `from __future__ import annotations` makes the annotation the
        # *string* "int"; structural fields (resources, per_level_plan,
        # audit) and the bool flag are not counters.
        numeric = {
            f.name for f in dataclasses.fields(ExecutionStats)
            if f.type in ("int", int)
        }
        counters = set(ExecutionStats._COUNTER_FIELDS)
        missing = numeric - counters
        assert not missing, (
            f"ExecutionStats numeric fields missing from "
            f"_COUNTER_FIELDS (merge/as_dict will drop them): "
            f"{sorted(missing)}")
        phantom = counters - numeric
        assert not phantom, (
            f"_COUNTER_FIELDS names non-numeric or removed fields: "
            f"{sorted(phantom)}")

    def test_new_counters_present(self):
        for name in ("bytes_mapped", "bytes_copied", "bytes_decompressed",
                     "postings_bytes_read", "columns_decompressed",
                     "cache_bytes_saved", "cache_bytes_paid"):
            assert name in ExecutionStats._COUNTER_FIELDS


class TestDiskIntegration:
    @pytest.fixture
    def lazy_db(self, tmp_path, small_db):
        path = str(tmp_path / "db")
        save_database(small_db, path, format_version=3)
        return load_database(path, lazy=True)

    def test_lazy_v3_counts_bytes(self, lazy_db):
        top = lazy_db.search_topk("xml data", 5)
        stats = top.stats
        assert stats.bytes_decompressed > 0
        assert stats.columns_decompressed > 0
        assert stats.postings_bytes_read > 0
        assert stats.bytes_mapped > 0  # v3 columns are mmap views
        assert stats.resources is not None
        assert stats.resources["by_codec"]
        assert stats.resources["by_level_postings"]

    def test_eager_db_attaches_zero_account(self, small_db):
        """The in-memory index never hits the lazy column taps: all
        byte counters are zero, but the breakdown still attaches."""
        _results, stats = small_db.search("xml data", with_stats=True)
        assert stats.resources is not None
        assert stats.bytes_decompressed == 0

    def test_query_metrics_published(self, tmp_path, small_db):
        path = str(tmp_path / "db")
        save_database(small_db, path, format_version=3)
        db = load_database(path, lazy=True)
        db.search_topk("xml data", 5)
        exposition = db.metrics.render_prometheus()
        assert "repro_query_bytes_decompressed_total" in exposition
        assert "repro_query_postings_scanned_total" in exposition
        assert "repro_query_bytes_mapped_total" in exposition


class TestPostingsNbytes:
    def test_sums_level_payloads(self, small_db):
        postings = small_db.columnar_index.term_postings("xml")
        assert postings_nbytes(postings) > 0
