"""Doc-drift guard: every metric family a live daemon exports must
have a row in docs/OBSERVABILITY.md's reference table.

The test drives an inline daemon (with accounting, tracing, caching
and a disk-backed v3 sharded database, so as many families as
possible actually emit), scrapes `/metrics`, extracts the family
names from the `# TYPE` exposition lines, and greps the doc.  A new
metric added without a doc row fails here by name.
"""

import asyncio
import os
import re

import pytest

from repro.serve.daemon import ServeDaemon
from repro.serve.merge import ShardedDatabase

DOC = os.path.join(os.path.dirname(__file__), os.pardir, "docs",
                   "OBSERVABILITY.md")

#: Families folded in from worker processes keep their origin name
#: under this prefix; the doc documents the pattern, not each name.
WILDCARD_PREFIXES = ("repro_worker_",)


def _exposition_families(text):
    families = set()
    for line in text.splitlines():
        match = re.match(r"# TYPE (\S+) ", line)
        if match:
            families.add(match.group(1))
    return families


@pytest.fixture(scope="module")
def exposition(tmp_path_factory):
    """Daemon `/metrics` plus a lazy-v3 database registry: the daemon
    exposition carries the serve families, the database registry the
    query-pipeline and resource-accounting families (which inline
    shards publish into their own registries, not the daemon's)."""
    from repro.diskdb import load_database, save_database
    from tests.conftest import SMALL_XML
    from repro.api import XMLDatabase
    from repro.obs.metrics import MetricsRegistry

    tmp = tmp_path_factory.mktemp("doc_drift")
    db = XMLDatabase.from_xml_text(SMALL_XML)
    path = str(tmp / "db")
    save_database(db, path, format_version=3, shards=2)
    sharded = ShardedDatabase.open(path)
    daemon = ServeDaemon(sharded, workers=0,
                         access_log_path=str(tmp / "access.jsonl"))

    async def go():
        await daemon.start()
        for query in ("/topk?q=xml+data&k=5", "/search?q=keyword+search",
                      "/topk?q=xml+data&k=5"):
            status, _, _ = await daemon._dispatch("GET", query)
            assert status == 200
        status, _ctype, body = await daemon._dispatch("GET", "/metrics")
        assert status == 200
        await daemon.stop()
        return body

    daemon_text = asyncio.run(go())

    flat_path = str(tmp / "db_flat")
    save_database(db, flat_path, format_version=3)
    lazy = load_database(flat_path, lazy=True,
                         metrics=MetricsRegistry())
    lazy.search_topk("xml data", 5)
    lazy.search("keyword search")
    lazy.search("keyword search")   # result-cache hit
    return daemon_text + "\n" + lazy.metrics.render_prometheus()


def test_every_exported_family_documented(exposition):
    doc = open(DOC, encoding="utf-8").read()
    families = _exposition_families(exposition)
    assert families, "exposition had no # TYPE lines"
    missing = sorted(
        name for name in families
        if name not in doc
        and not any(name.startswith(p) for p in WILDCARD_PREFIXES))
    assert not missing, (
        f"metric families exported by /metrics but absent from "
        f"docs/OBSERVABILITY.md: {missing}")


def test_exposition_covers_core_families(exposition):
    """The scrape itself must be meaningful: the daemon drive above
    has to emit the serve, query and accounting families the doc
    table anchors on."""
    families = _exposition_families(exposition)
    for name in ("repro_serve_requests_total", "repro_serve_latency_ms",
                 "repro_queries_total", "repro_query_latency_ms"):
        assert name in families, f"{name} missing from the drive"


def test_documented_accounting_families_match_code():
    """The six accounting families in the doc exist in api.py -- a
    rename on either side fails here."""
    doc = open(DOC, encoding="utf-8").read()
    src = open(os.path.join(os.path.dirname(DOC), os.pardir, "src",
                            "repro", "api.py"), encoding="utf-8").read()
    for name in ("repro_query_bytes_mapped_total",
                 "repro_query_bytes_copied_total",
                 "repro_query_bytes_decompressed_total",
                 "repro_query_bytes_cache_total",
                 "repro_query_postings_scanned_total",
                 "repro_query_postings_bytes_total"):
        assert name in doc, f"{name} undocumented"
        assert name in src, f"{name} documented but gone from api.py"
