"""Tests for the document-mutation workflow: encoder maintenance plus
`XMLDatabase.refresh`."""

import pytest

from repro import XMLDatabase
from repro.xmltree.tree import Node


@pytest.fixture
def db():
    return XMLDatabase.from_xml_text(
        "<bib>"
        "<paper><title>xml search</title></paper>"
        "<paper><title>data models</title></paper>"
        "</bib>", jdewey_gap=2)


class TestInsertAndRefresh:
    def test_new_occurrence_found_after_refresh(self, db):
        # Initially the root is the only node covering both keywords.
        before = db.search("xml data")
        assert [r.node.tag for r in before] == ["bib"]
        paper = db.tree.root.children[0]
        db.encoder.insert(paper, Node("note", "data appendix"))
        db.refresh()
        # The first paper now nests both; the root loses its free xml
        # witness (it only lives under the new C-node) and drops out.
        after = db.search("xml data")
        assert [r.node.tag for r in after] == ["paper"]

    def test_all_algorithms_agree_after_mutation(self, db):
        paper = db.tree.root.children[1]
        db.encoder.insert(paper, Node("note", "xml extras"))
        db.refresh()
        oracle = db.search("xml data", algorithm="oracle")
        assert oracle  # paper 2 now has both
        for algorithm in ("join", "stack", "index"):
            got = db.search("xml data", algorithm=algorithm)
            assert [(r.node.dewey, round(r.score, 9)) for r in got] == \
                [(r.node.dewey, round(r.score, 9)) for r in oracle]

    def test_topk_after_mutation(self, db):
        for i, paper in enumerate(db.tree.root.children):
            db.encoder.insert(paper, Node("note", "xml data " * (i + 1)))
        db.refresh()
        top = db.search_topk("xml data", 2)
        ranked = db.search_ranked("xml data")
        assert [round(r.score, 9) for r in top] == \
            [round(r.score, 9) for r in ranked[:2]]

    def test_jdewey_invariants_survive_mutations(self, db):
        for _ in range(6):
            db.encoder.insert(db.tree.root.children[0], Node("x", "pad"))
        db.encoder.validate()
        db.refresh()
        assert db.search("pad")  # occurrences indexed

    def test_stale_index_without_refresh(self, db):
        """Without refresh the old index answers from the old document --
        the documented contract."""
        paper = db.tree.root.children[0]
        db.inverted_index  # build
        db.encoder.insert(paper, Node("note", "freshword"))
        assert db.document_frequency("freshword") == 0
        db.refresh()
        assert db.document_frequency("freshword") == 1


class TestDeleteAndRefresh:
    def test_deleted_occurrence_gone(self, db):
        title = db.tree.root.children[0].children[0]
        assert db.search(["search"])
        db.encoder.delete(title)
        db.refresh()
        assert db.search(["search"]) == []

    def test_delete_subtree_then_queries_consistent(self, db):
        db.encoder.delete(db.tree.root.children[1])
        db.refresh()
        oracle = db.search(["xml"], algorithm="oracle")
        for algorithm in ("join", "stack", "index"):
            got = db.search(["xml"], algorithm=algorithm)
            assert [r.node.dewey for r in got] == \
                [r.node.dewey for r in oracle]

    def test_refresh_reassigns_dewey(self, db):
        db.encoder.delete(db.tree.root.children[0])
        db.refresh()
        # The remaining paper is now the first child: Dewey (1, 1).
        assert db.tree.root.children[0].dewey == (1, 1)
