"""Multi-process `search_batch`: equivalence, pooling, gauge hygiene.

The fork-based process pool must be an *implementation detail*: same
results, same merged stats, same metrics totals as the in-process run,
with batch error isolation intact, on any executor shape (owned pool,
reused pool from `batch_executor`).  The queue-depth gauge returns to
zero after every run -- thread, process, or failing.
"""

import os
import signal

import pytest

from repro import XMLDatabase
from repro import api as api_mod
from repro.algorithms.base import ExecutionStats
from repro.obs import MetricsRegistry
from repro.reliability.errors import WorkerCrashError
from tests.conftest import SMALL_XML

QUERIES = ["xml data", "keyword search", "data models",
           "relational data", "search processing", "keyword data xml"]


def fingerprint(batch):
    out = []
    for entry in batch:
        if entry is None:
            out.append(None)
        else:
            out.append([(r.node.dewey, r.level, r.score,
                         tuple(r.witness_scores)) for r in entry])
    return out


def make_db():
    db = XMLDatabase.from_xml_text(SMALL_XML,
                                   metrics=MetricsRegistry())
    db.columnar_index
    db.inverted_index
    return db


class TestEquivalence:
    def test_results_match_inline_run(self):
        db = make_db()
        inline = db.search_batch(QUERIES, use_cache=False)
        for n in (2, 4):
            procs = db.search_batch(QUERIES, processes=n,
                                    use_cache=False)
            assert procs.ok
            assert fingerprint(procs) == fingerprint(inline)

    def test_topk_results_match(self):
        db = make_db()
        inline = db.search_batch(QUERIES, k=3, use_cache=False)
        procs = db.search_batch(QUERIES, k=3, processes=2,
                                use_cache=False)
        assert fingerprint(procs) == fingerprint(inline)

    def test_summary_and_metrics_match_inline_run(self):
        def counters(processes):
            db = make_db()
            batch = db.search_batch(QUERIES, processes=processes,
                                    use_cache=False, with_stats=True)
            snap = db.metrics.snapshot()
            stats = batch.summary
            return ({field: getattr(stats, field)
                     for field in ExecutionStats._COUNTER_FIELDS},
                    {k: v for k, v in snap["counters"].items()
                     if "queries_total" in k or "level_joins" in k
                     or "batch" in k},
                    snap["histograms"][
                        'repro_query_latency_ms{op="batch"}']["count"])

        inline_stats, inline_counters, inline_latencies = counters(None)
        proc_stats, proc_counters, proc_latencies = counters(2)
        # Cache attribution is topology-dependent: inline runs share
        # one postings LRU across all queries, worker processes each
        # warm their own, so the hit/miss *split* legitimately differs.
        # The total bytes routed through the cache is conserved.
        assert (proc_stats.pop("cache_bytes_saved")
                + proc_stats.pop("cache_bytes_paid")
                == inline_stats.pop("cache_bytes_saved")
                + inline_stats.pop("cache_bytes_paid"))
        assert proc_stats == inline_stats
        assert proc_counters == inline_counters
        assert proc_latencies == inline_latencies == len(QUERIES)

    def test_per_level_plan_merges(self):
        db = make_db()
        batch = db.search_batch(QUERIES, processes=2, use_cache=False,
                                with_stats=True)
        inline = db.search_batch(QUERIES, use_cache=False,
                                 with_stats=True)
        assert sorted(batch.summary.per_level_plan) == \
            sorted(inline.summary.per_level_plan)

    def test_parent_cache_warms_from_workers(self):
        db = make_db()
        db.search_batch(QUERIES, processes=2)
        followup = db.search_batch(QUERIES, with_stats=True)
        assert followup.summary.cache_hits == len(QUERIES)


class TestExecutorReuse:
    def test_thread_executor_reused_and_gauge_zero(self):
        db = make_db()
        gauge = db.metrics.gauge("repro_batch_queue_depth")
        pool = db.batch_executor(threads=2)
        try:
            a = db.search_batch(QUERIES, executor=pool)
            b = db.search_batch(QUERIES, executor=pool)
        finally:
            pool.shutdown()
        assert a.ok and b.ok
        assert gauge.value == 0

    def test_process_executor_reused_and_gauge_zero(self):
        db = make_db()
        gauge = db.metrics.gauge("repro_batch_queue_depth")
        inline = db.search_batch(QUERIES, use_cache=False)
        pool = db.batch_executor(processes=2)
        try:
            a = db.search_batch(QUERIES, executor=pool,
                                use_cache=False)
            b = db.search_batch(QUERIES, executor=pool,
                                use_cache=False)
        finally:
            pool.shutdown()
        assert fingerprint(a) == fingerprint(b) == fingerprint(inline)
        assert gauge.value == 0

    def test_foreign_process_executor_rejected(self):
        db = make_db()
        other = make_db()
        pool = other.batch_executor(processes=2)
        try:
            with pytest.raises(ValueError):
                db.search_batch(QUERIES, executor=pool)
        finally:
            pool.shutdown()
        assert db.metrics.gauge("repro_batch_queue_depth").value == 0

    def test_executor_and_width_are_exclusive(self):
        db = make_db()
        pool = db.batch_executor(threads=2)
        try:
            with pytest.raises(ValueError):
                db.search_batch(QUERIES, executor=pool, threads=2)
            with pytest.raises(ValueError):
                db.search_batch(QUERIES, threads=2, processes=2)
        finally:
            pool.shutdown()

    def test_batch_executor_requires_exactly_one_width(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.batch_executor()
        with pytest.raises(ValueError):
            db.batch_executor(threads=2, processes=2)


class TestErrorIsolation:
    def test_failing_query_is_isolated(self):
        db = make_db()
        queries = ["xml data", "qqqzzz absent term", "keyword search"]
        batch = db.search_batch(queries, processes=2, use_cache=False,
                                algorithm="join")
        assert batch.ok
        bad = db.search_batch(queries, processes=2, use_cache=False,
                              algorithm="no-such-algorithm")
        assert not bad.ok
        assert sorted(bad.errors) == [0, 1, 2]
        assert all(entry is None for entry in bad)
        assert db.metrics.gauge("repro_batch_queue_depth").value == 0

    def test_raise_on_error_propagates_and_gauge_recovers(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.search_batch(QUERIES, processes=2, use_cache=False,
                            algorithm="no-such-algorithm",
                            raise_on_error=True)
        assert db.metrics.gauge("repro_batch_queue_depth").value == 0


class TestWorkerCrashRecovery:
    """A worker death (`BrokenProcessPool`) must not fail the batch:
    the pool is rebuilt once and the doomed queries re-run one at a
    time, so only a query that *reliably* crashes a worker surfaces --
    as a typed `WorkerCrashError` entry, not a broken-executor blast.

    The crash is driven through ``api._BATCH_FAULT_HOOK``: installed in
    the parent before the pool forks, the hook is inherited by every
    worker (and by the rescue pool's workers) and SIGKILLs on a
    sentinel query.
    """

    CRASHER = "keyword crashme"

    def _hook(self, flag_path=None):
        """SIGKILL the worker on the sentinel query; with a flag path,
        only the first time (the flag file survives the fork)."""

        def hook(query):
            if query != self.CRASHER:
                return
            if flag_path is not None:
                if os.path.exists(flag_path):
                    return
                open(flag_path, "w").close()
            os.kill(os.getpid(), signal.SIGKILL)

        return hook

    def test_single_crash_recovers_and_batch_completes(self, tmp_path):
        db = make_db()
        queries = [QUERIES[0], self.CRASHER, QUERIES[1], QUERIES[2]]
        api_mod._BATCH_FAULT_HOOK = self._hook(str(tmp_path / "flag"))
        try:
            batch = db.search_batch(queries, processes=2,
                                    use_cache=False)
        finally:
            api_mod._BATCH_FAULT_HOOK = None
        assert batch.ok, batch.errors
        assert all(entry is not None for entry in batch)
        # the crasher's terms minus the sentinel still resolve: its
        # rerun on the fresh pool returned real results
        want = db.search_batch(queries, use_cache=False)
        assert fingerprint(batch) == fingerprint(want)
        assert db.metrics.counter(
            "repro_batch_pool_rebuilds_total").value == 1
        assert db.metrics.gauge("repro_batch_queue_depth").value == 0

    def test_persistent_crasher_gets_typed_error_only(self):
        db = make_db()
        queries = [QUERIES[0], self.CRASHER, QUERIES[1]]
        api_mod._BATCH_FAULT_HOOK = self._hook()   # crashes every time
        try:
            batch = db.search_batch(queries, processes=2,
                                    use_cache=False)
        finally:
            api_mod._BATCH_FAULT_HOOK = None
        assert not batch.ok
        assert all(isinstance(exc, WorkerCrashError)
                   for exc in batch.errors.values())
        assert 1 in batch.errors, "the crasher itself must be blamed"
        assert batch[1] is None
        # at most one rebuild even though the rescue pool died too
        assert db.metrics.counter(
            "repro_batch_pool_rebuilds_total").value == 1
        # queries that completed match an inline run
        inline = db.search_batch(queries, use_cache=False)
        for index in range(len(queries)):
            if index not in batch.errors:
                assert fingerprint(batch)[index] == \
                    fingerprint(inline)[index]
        assert db.metrics.gauge("repro_batch_queue_depth").value == 0

    def test_raise_on_error_surfaces_the_crash(self):
        db = make_db()
        api_mod._BATCH_FAULT_HOOK = self._hook()
        try:
            with pytest.raises(WorkerCrashError):
                db.search_batch([QUERIES[0], self.CRASHER],
                                processes=2, use_cache=False,
                                raise_on_error=True)
        finally:
            api_mod._BATCH_FAULT_HOOK = None
        assert db.metrics.gauge("repro_batch_queue_depth").value == 0

    def test_caller_owned_executor_is_left_to_its_owner(self):
        """Victims are rescued on a temporary pool; the caller's broken
        executor is not swapped out behind their back."""
        db = make_db()
        pool = db.batch_executor(processes=2)
        api_mod._BATCH_FAULT_HOOK = self._hook()
        try:
            batch = db.search_batch([QUERIES[0], self.CRASHER],
                                    executor=pool, use_cache=False)
        finally:
            api_mod._BATCH_FAULT_HOOK = None
            pool.shutdown()
        assert isinstance(batch.errors.get(1), WorkerCrashError)
        assert db.metrics.gauge("repro_batch_queue_depth").value == 0
