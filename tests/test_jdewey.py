"""Tests for the JDewey encoding (`repro.xmltree.jdewey`)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree.jdewey import (JDeweyEncoder, check_componentwise,
                                  encode_tree, jdewey_sort_key,
                                  lca_from_sequences)
from repro.xmltree.tree import Node, XMLTree, build_tree


def random_tree_strategy(max_children=4, max_depth=4):
    """Hypothesis strategy producing frozen XMLTrees."""
    spec = st.recursive(
        st.just(()),
        lambda children: st.lists(children, min_size=0,
                                  max_size=max_children),
        max_leaves=24,
    )

    def to_tree(s):
        def build(node_spec):
            node = Node("n")
            for child_spec in node_spec:
                node.add_child(build(child_spec))
            return node

        return XMLTree(build(s if isinstance(s, list) else [])).freeze()

    return spec.map(to_tree)


@pytest.fixture
def sample_tree():
    return build_tree(
        ("r", [
            ("a", [("a1", []), ("a2", [("a2x", [])])]),
            ("b", [("b1", [])]),
            ("c", []),
        ]))


class TestInitialEncoding:
    def test_root_sequence(self, sample_tree):
        encode_tree(sample_tree)
        assert sample_tree.root.jdewey == (1,)

    def test_sequences_extend_parent(self, sample_tree):
        encode_tree(sample_tree)
        for node in sample_tree.nodes:
            if node.parent is not None:
                assert node.jdewey[:-1] == node.parent.jdewey

    def test_unique_per_level(self, sample_tree):
        encoder = encode_tree(sample_tree)
        encoder.validate()  # raises on duplicates

    def test_document_order_matches_jdewey_order_initially(self, sample_tree):
        encode_tree(sample_tree)
        seqs = [n.jdewey for n in sample_tree.nodes]
        assert seqs == sorted(seqs, key=jdewey_sort_key)

    def test_gap_reserves_numbers(self):
        tree = build_tree(("r", [("a", [("x", [])]), ("b", [("y", [])])]))
        dense = encode_tree(tree)
        tree2 = build_tree(("r", [("a", [("x", [])]), ("b", [("y", [])])]))
        gapped = JDeweyEncoder(tree2, gap=3)
        assert gapped.level_width(3) > dense.level_width(3)

    def test_level_width_zero_beyond_depth(self, sample_tree):
        encoder = encode_tree(sample_tree)
        assert encoder.level_width(99) == 0

    def test_requires_frozen_tree(self):
        with pytest.raises(ValueError):
            JDeweyEncoder(XMLTree(Node("r")))

    @settings(max_examples=40, deadline=None)
    @given(random_tree_strategy())
    def test_invariants_hold_on_random_trees(self, tree):
        encoder = encode_tree(tree)
        encoder.validate()

    @settings(max_examples=40, deadline=None)
    @given(random_tree_strategy())
    def test_property_31_componentwise_order(self, tree):
        """Paper Property 3.1: ordered sequences compare component-wise."""
        encode_tree(tree)
        seqs = sorted((n.jdewey for n in tree.nodes), key=jdewey_sort_key)
        for s1, s2 in zip(seqs, seqs[1:]):
            assert check_componentwise(s1, s2)


class TestLCAFromSequences:
    def test_simple(self, sample_tree):
        encode_tree(sample_tree)
        a2x = sample_tree.node_by_dewey((1, 1, 2, 1))
        a1 = sample_tree.node_by_dewey((1, 1, 1))
        level, number = lca_from_sequences(a2x.jdewey, a1.jdewey)
        a = sample_tree.node_by_dewey((1, 1))
        assert (level, number) == (a.level, a.jdewey[-1])

    def test_ancestor_descendant(self, sample_tree):
        encode_tree(sample_tree)
        a = sample_tree.node_by_dewey((1, 1))
        a2x = sample_tree.node_by_dewey((1, 1, 2, 1))
        level, number = lca_from_sequences(a.jdewey, a2x.jdewey)
        assert (level, number) == (a.level, a.jdewey[-1])

    def test_no_common_component(self):
        assert lca_from_sequences((1, 2), (2, 5)) is None

    def test_matches_dewey_lca_on_random_pairs(self, sample_tree):
        from repro.xmltree.dewey import lca as dewey_lca

        encode_tree(sample_tree)
        nodes = sample_tree.nodes
        for v1 in nodes:
            for v2 in nodes:
                level, number = lca_from_sequences(v1.jdewey, v2.jdewey)
                expected = sample_tree.node_by_dewey(
                    dewey_lca(v1.dewey, v2.dewey))
                assert (level, number) == (expected.level,
                                           expected.jdewey[-1])


class TestMaintenance:
    def test_insert_with_gap_uses_reserved_slot(self, sample_tree):
        encoder = JDeweyEncoder(sample_tree, gap=2)
        a = sample_tree.node_by_dewey((1, 1))
        new = encoder.insert(a, Node("a3"))
        assert new.jdewey[:-1] == a.jdewey
        encoder.validate()
        assert encoder.reencode_count == 0

    def test_insert_without_gap_triggers_reencode(self, sample_tree):
        encoder = JDeweyEncoder(sample_tree, gap=0)
        a = sample_tree.node_by_dewey((1, 1))
        encoder.insert(a, Node("a3"))
        encoder.validate()
        assert encoder.reencode_count == 1

    def test_insert_at_position(self, sample_tree):
        encoder = JDeweyEncoder(sample_tree, gap=2)
        a = sample_tree.node_by_dewey((1, 1))
        new = encoder.insert(a, Node("first"), position=0)
        assert a.children[0] is new
        encoder.validate()

    def test_insert_subtree(self, sample_tree):
        encoder = JDeweyEncoder(sample_tree, gap=2)
        sub = Node("sub")
        sub.add_child(Node("leaf1"))
        sub.add_child(Node("leaf2"))
        c = sample_tree.node_by_dewey((1, 3))
        encoder.insert(c, sub)
        encoder.validate()
        assert all(ch.jdewey[:-1] == sub.jdewey for ch in sub.children)

    def test_insert_subtree_into_early_sibling(self, sample_tree):
        """Regression: a subtree inserted under a *low-numbered* parent
        must not hand its descendants end-of-level numbers while keeping
        a mid-block number itself (order violation against later
        parents' children)."""
        encoder = JDeweyEncoder(sample_tree, gap=2)
        sub = Node("sub")
        sub.add_child(Node("leaf"))
        a = sample_tree.node_by_dewey((1, 1))  # first child of the root
        encoder.insert(a, sub)
        encoder.validate()

    @settings(max_examples=25, deadline=None)
    @given(random_tree_strategy(), st.data())
    def test_random_subtree_insertions_keep_invariants(self, tree, data):
        encoder = JDeweyEncoder(tree, gap=1)
        nodes = list(tree.root.iter_subtree())
        for i in range(3):
            target = data.draw(st.sampled_from(nodes))
            sub = Node("sub")
            sub.add_child(Node("leaf")).add_child(Node("deeper"))
            encoder.insert(target, sub)
            nodes.extend(sub.iter_subtree())
            encoder.validate()

    def test_many_inserts_stay_valid(self, sample_tree):
        encoder = JDeweyEncoder(sample_tree, gap=1)
        b = sample_tree.node_by_dewey((1, 2))
        for i in range(10):
            encoder.insert(b, Node(f"x{i}"))
            encoder.validate()

    def test_delete_leaf(self, sample_tree):
        encoder = encode_tree(sample_tree)
        a1 = sample_tree.node_by_dewey((1, 1, 1))
        parent = a1.parent
        encoder.delete(a1)
        assert a1 not in parent.children
        encoder.validate()

    def test_delete_subtree(self, sample_tree):
        encoder = encode_tree(sample_tree)
        a = sample_tree.node_by_dewey((1, 1))
        encoder.delete(a)
        encoder.validate()
        assert all(n.tag != "a2x" for n in sample_tree.root.iter_subtree())

    def test_delete_root_raises(self, sample_tree):
        encoder = encode_tree(sample_tree)
        with pytest.raises(ValueError):
            encoder.delete(sample_tree.root)

    def test_insert_then_delete_roundtrip(self, sample_tree):
        encoder = JDeweyEncoder(sample_tree, gap=2)
        b = sample_tree.node_by_dewey((1, 2))
        new = encoder.insert(b, Node("temp"))
        encoder.delete(new)
        encoder.validate()

    @settings(max_examples=25, deadline=None)
    @given(random_tree_strategy(), st.data())
    def test_random_insertions_keep_invariants(self, tree, data):
        encoder = JDeweyEncoder(tree, gap=1)
        nodes = list(tree.root.iter_subtree())
        for _ in range(4):
            target = data.draw(st.sampled_from(nodes))
            new = encoder.insert(target, Node("new"))
            nodes.append(new)
            encoder.validate()


class TestCheckComponentwise:
    def test_violating_pair_detected(self):
        # (1, 2, 9) < (1, 3, 5) as tuples, but the third component
        # decreases -- such sequences cannot coexist in a valid encoding.
        assert not check_componentwise((1, 2, 9), (1, 3, 5))

    def test_prefix_pair_ok(self):
        assert check_componentwise((1, 2), (1, 2, 3))
