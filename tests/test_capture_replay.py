"""Tests for workload capture (`repro.serve.capture`) and replay
(`repro.bench.replay`).

The load-bearing property is the round trip: a workload captured from
an inline (``workers=0``) daemon replays against the same database
with every digest matched and zero resource deltas -- replay uses the
same facade calls the daemon's inline mode does, so any divergence is
a real behavior change, not harness noise.
"""

import asyncio
import json
import os

import pytest

from repro.bench.replay import (format_replay_report, result_digest,
                                run_replay)
from repro.serve.capture import (WORKLOAD_SCHEMA, WorkloadCapture,
                                 read_workload)
from repro.serve.daemon import ServeDaemon
from repro.serve.merge import ShardedDatabase


@pytest.fixture
def db_dir(tmp_path, small_db):
    from repro.diskdb import save_database

    path = str(tmp_path / "db")
    save_database(small_db, path, format_version=3)
    return path


def _drive_inline(db, capture_path, paths):
    """Run an inline daemon over `paths`, capturing to `capture_path`."""
    daemon = ServeDaemon(db, workers=0, capture_path=capture_path)

    async def go():
        await daemon.start()
        statuses = []
        for path in paths:
            status, _ctype, _body = await daemon._dispatch("GET", path)
            statuses.append(status)
        await daemon.stop()
        return statuses

    return asyncio.run(go())


QUERIES = [
    "/topk?q=xml+data&k=5",
    "/search?q=keyword+search",
    "/topk?q=xml&k=3",
    "/topk?q=xml+data&k=5",   # repeat: served from the result cache
]


class TestCapture:
    def test_header_then_entries(self, tmp_path, small_db):
        sharded = ShardedDatabase.from_database(small_db, 2)
        capture = str(tmp_path / "w.jsonl")
        statuses = _drive_inline(sharded, capture, QUERIES)
        assert statuses == [200] * len(QUERIES)
        header, entries = read_workload(capture)
        assert header["schema"] == WORKLOAD_SCHEMA
        assert header["meta"]["shards"] == 2
        assert len(entries) == len(QUERIES)
        first = entries[0]
        assert first["terms"] == ["xml", "data"]
        assert first["endpoint"] == "topk"
        assert first["k"] == 5
        assert first["digest"]
        assert first["offset_ms"] == 0.0
        assert entries[-1]["offset_ms"] >= 0.0

    def test_cached_entry_marked(self, tmp_path, small_db):
        sharded = ShardedDatabase.from_database(small_db, 2)
        capture = str(tmp_path / "w.jsonl")
        _drive_inline(sharded, capture, QUERIES)
        _header, entries = read_workload(capture)
        assert entries[3]["cached"] is True
        # the cache hit re-serves the same body: identical digest
        assert entries[3]["digest"] == entries[0]["digest"]

    def test_accounts_attached_to_evaluated_entries(self, tmp_path,
                                                    small_db):
        sharded = ShardedDatabase.from_database(small_db, 2)
        capture = str(tmp_path / "w.jsonl")
        _drive_inline(sharded, capture, QUERIES)
        _header, entries = read_workload(capture)
        assert all(e.get("account") is not None for e in entries[:3])

    def test_torn_tail_line_tolerated(self, tmp_path, small_db):
        sharded = ShardedDatabase.from_database(small_db, 2)
        capture = str(tmp_path / "w.jsonl")
        _drive_inline(sharded, capture, QUERIES)
        with open(capture, "a", encoding="utf-8") as handle:
            handle.write('{"offset_ms": 1.0, "terms": ["tru')
        _header, entries = read_workload(capture)
        assert len(entries) == len(QUERIES)

    def test_direct_writer_round_trip(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        capture = WorkloadCapture(path, meta={"note": "unit"})
        capture.record("topk", ["a", "b"], "elca", 5,
                       [{"dewey": [0, 1], "tag": "t", "level": 1,
                         "score": 1.0, "witnesses": [1.0, 0.5]}],
                       elapsed_ms=2.5)
        capture.close()
        header, entries = read_workload(path)
        assert header["meta"] == {"note": "unit"}
        assert entries[0]["result_count"] == 1
        assert entries[0]["digest"] == result_digest(
            [{"dewey": [0, 1], "tag": "t", "level": 1,
              "score": 1.0, "witnesses": [1.0, 0.5]}])

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "other/v9"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="schema"):
            read_workload(str(path))


class TestReplayRoundTrip:
    @pytest.fixture
    def sharded_dir(self, tmp_path, small_db):
        from repro.diskdb import save_database

        path = str(tmp_path / "db_sharded")
        save_database(small_db, path, format_version=3, shards=2)
        return path

    @pytest.fixture
    def captured(self, tmp_path, sharded_dir):
        """Capture from a freshly opened database, exactly as a real
        daemon would (lazy/mmap-backed, the `repro serve` default);
        replays open their own fresh instance the same way, so both
        sides start cache-cold and the resource diff is meaningful."""
        sharded = ShardedDatabase.open(sharded_dir, lazy=True,
                                       verify="lazy")
        capture = str(tmp_path / "w.jsonl")
        _drive_inline(sharded, capture, QUERIES)
        return capture

    def test_exact_round_trip(self, captured, sharded_dir):
        report = run_replay(captured, sharded_dir)
        assert report["digests"]["mismatched"] == 0
        assert report["digests"]["matched"] == len(QUERIES)
        assert report["resources"]["delta"] == {}
        assert report["ops"]["replay_query"]["n"] == len(QUERIES)
        assert report["config"]["scale"] == "replay"

    def test_against_prior_replay(self, captured, sharded_dir):
        first = run_replay(captured, sharded_dir)
        second = run_replay(captured, sharded_dir, against=first)
        assert second["baseline"]["source"] == "prior replay"
        assert second["digests"]["mismatched"] == 0
        assert second["resources"]["delta"] == {}

    def test_mismatch_detected_on_different_db(self, captured):
        """Replaying against a database with different content must
        flag digest mismatches -- the diff is not vacuous."""
        from repro.api import XMLDatabase

        other = XMLDatabase.from_xml_text(
            "<r><a>xml data here</a><b>keyword search xml</b></r>")
        report = run_replay(captured, "other", db=other)
        assert report["digests"]["mismatched"] > 0
        assert report["digests"]["mismatches"][0]["captured"] != \
            report["digests"]["mismatches"][0]["replayed"]

    def test_limit(self, captured, sharded_dir):
        report = run_replay(captured, sharded_dir, limit=2)
        assert report["queries"] == 2

    def test_open_mode_honors_offsets(self, captured, sharded_dir):
        report = run_replay(captured, sharded_dir, mode="open",
                            speed=1000.0)
        assert report["digests"]["mismatched"] == 0
        assert report["config"]["mode"] == "open"

    def test_partial_entries_skip_digest(self, tmp_path, db_dir,
                                         small_db):
        capture = WorkloadCapture(str(tmp_path / "w.jsonl"))
        capture.record("topk", ["xml"], "elca", 3, [], elapsed_ms=1.0,
                       partial=True)
        capture.close()
        report = run_replay(str(tmp_path / "w.jsonl"), db_dir,
                            db=small_db)
        assert report["digests"]["skipped_partial"] == 1
        assert report["digests"]["compared"] == 0

    def test_format_report_renders(self, captured, sharded_dir):
        report = run_replay(captured, sharded_dir)
        text = format_replay_report(report)
        assert "digests:" in text
        assert "no deltas" in text


class TestReplayCLI:
    @pytest.fixture
    def cli_setup(self, tmp_path, small_db):
        from repro.diskdb import save_database

        sharded_dir = str(tmp_path / "db_sharded")
        save_database(small_db, sharded_dir, format_version=3, shards=2)
        capture = str(tmp_path / "w.jsonl")
        _drive_inline(ShardedDatabase.open(sharded_dir, lazy=True,
                                           verify="lazy"),
                      capture, QUERIES)
        return capture, sharded_dir

    def test_repro_replay_round_trip(self, tmp_path, cli_setup, capsys):
        from repro.cli import main

        capture, sharded_dir = cli_setup
        out = str(tmp_path / "replay.json")
        assert main(["replay", capture, sharded_dir, "--out", out,
                     "--fail-on-mismatch"]) == 0
        assert "matched" in capsys.readouterr().out
        report = json.loads(open(out, encoding="utf-8").read())
        assert report["digests"]["mismatched"] == 0

    def test_append_writes_replay_scale_history(self, tmp_path,
                                                cli_setup, capsys):
        from repro.cli import main

        capture, sharded_dir = cli_setup
        history = str(tmp_path / "hist.jsonl")
        assert main(["replay", capture, sharded_dir, "--append",
                     "--history", history]) == 0
        entry = json.loads(open(history, encoding="utf-8").read())
        assert entry["scale"] == "replay"
        assert "replay_query" in entry["ops"]

    def test_missing_workload_exits_3(self, db_dir, capsys):
        from repro.cli import EXIT_MISSING, main

        assert main(["replay", "/nonexistent.jsonl", db_dir]) == \
            EXIT_MISSING
        assert "error" in capsys.readouterr().err


class TestAccessLogAccount:
    def test_fields_include_account(self):
        from repro.obs.distributed import AccessLog

        assert "account" in AccessLog.FIELDS

    def test_daemon_records_account_in_access_log(self, tmp_path,
                                                  small_db):
        sharded = ShardedDatabase.from_database(small_db, 2)
        log_path = str(tmp_path / "access.jsonl")
        daemon = ServeDaemon(sharded, workers=0,
                             access_log_path=log_path)

        async def go():
            await daemon.start()
            status, _, _ = await daemon._dispatch(
                "GET", "/topk?q=xml+data&k=5")
            assert status == 200
            await daemon.stop()

        asyncio.run(go())
        records = [json.loads(line)
                   for line in open(log_path, encoding="utf-8")]
        assert any("account" in r and r["account"] for r in records)
