"""Tests for query plan inspection (`repro.algorithms.explain`)."""

import pytest

from repro.algorithms.explain import explain
from repro.obs import Tracer, spans_per_level_plan
from repro.planner.plans import JoinPlanner


class TestQueryPlan:
    def test_levels_descend(self, small_db):
        plan = explain(small_db.columnar_index, ["xml", "data"])
        levels = [lp.level for lp in plan.levels]
        assert levels == sorted(levels, reverse=True)
        assert levels[-1] == 1

    def test_execution_order_shortest_first(self, corpus_db):
        plan = explain(corpus_db.columnar_index, ["gamma", "rare"])
        assert plan.execution_order[0] == "rare"  # df 4 < df 120

    def test_result_total_matches_search(self, small_db):
        plan = explain(small_db.columnar_index, ["xml", "data"])
        expected = small_db.search("xml data")
        assert plan.n_results == len(expected)
        assert sum(lp.emitted for lp in plan.levels) == len(expected)

    def test_column_sizes_reported(self, small_db):
        plan = explain(small_db.columnar_index, ["xml", "data"])
        for lp in plan.levels:
            assert len(lp.column_sizes) == 2
            assert all(d <= c for c, d in zip(lp.column_sizes,
                                              lp.distinct_sizes))

    def test_join_algorithms_per_level(self, small_db):
        plan = explain(small_db.columnar_index, ["xml", "data"])
        for lp in plan.levels:
            # k=2 keywords -> one pairwise join per processed level.
            assert len(lp.join_algorithms) <= 1
            assert all(a in ("merge", "index")
                       for a in lp.join_algorithms)

    def test_forced_planner_respected(self, small_db):
        plan = explain(small_db.columnar_index, ["xml", "data"],
                       planner=JoinPlanner("merge"))
        merges, probes = plan.join_mix
        assert probes == 0
        assert merges > 0

    def test_estimate_nonnegative(self, corpus_db):
        plan = explain(corpus_db.columnar_index, ["alpha", "beta"])
        assert all(lp.estimate >= 0 for lp in plan.levels)

    def test_format_is_readable(self, small_db):
        plan = explain(small_db.columnar_index, ["xml", "data"], "slca")
        text = plan.format()
        assert "query: xml data [slca]" in text
        assert "level" in text
        assert "totals:" in text

    def test_stats_attached(self, small_db):
        plan = explain(small_db.columnar_index, ["xml", "data"])
        assert plan.stats is not None
        assert plan.stats.levels_processed == len(plan.levels)

    def test_invalid_semantics(self, small_db):
        with pytest.raises(ValueError):
            explain(small_db.columnar_index, ["xml"], "nope")


class TestTracedPlan:
    def test_no_trace_by_default(self, small_db):
        plan = explain(small_db.columnar_index, ["xml", "data"])
        assert plan.trace is None
        assert "trace:" not in plan.format()

    def test_trace_attached_with_tracer(self, small_db):
        tracer = Tracer()
        plan = explain(small_db.columnar_index, ["xml", "data"],
                       tracer=tracer)
        assert plan.trace is not None
        assert plan.trace.name == "query"
        assert plan.trace.tags["op"] == "explain"
        text = plan.format()
        assert "trace:" in text
        assert "postings_fetch" in text

    def test_trace_plan_tags_match_stats(self, small_db):
        plan = explain(small_db.columnar_index, ["xml", "data"],
                       tracer=Tracer())
        assert plan.stats.per_level_plan
        assert spans_per_level_plan(plan.trace) == plan.stats.per_level_plan

    def test_trace_agrees_with_level_plans(self, small_db):
        """The span tags and the `LevelPlan.join_algorithms` rows are two
        views of the same decisions."""
        plan = explain(small_db.columnar_index, ["xml", "data"],
                       tracer=Tracer())
        from_spans = spans_per_level_plan(plan.trace)
        for lp in plan.levels:
            assert tuple(a for lvl, a in from_spans
                         if lvl == lp.level) == lp.join_algorithms


class TestAPIAndCLI:
    def test_database_explain(self, small_db):
        plan = small_db.explain("xml data")
        assert plan.terms == ("xml", "data")

    def test_database_explain_trace_flag(self, small_db):
        plan = small_db.explain("xml data", trace=True)
        assert plan.trace is not None
        assert spans_per_level_plan(plan.trace) == plan.stats.per_level_plan

    def test_cli_explain_trace(self, tmp_path, capsys):
        from repro.cli import main
        from tests.conftest import SMALL_XML

        path = tmp_path / "doc.xml"
        path.write_text(SMALL_XML, encoding="utf-8")
        assert main(["explain", str(path), "xml data", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out

    def test_cli_explain(self, tmp_path, capsys):
        from repro.cli import main
        from tests.conftest import SMALL_XML

        path = tmp_path / "doc.xml"
        path.write_text(SMALL_XML, encoding="utf-8")
        assert main(["explain", str(path), "xml data"]) == 0
        out = capsys.readouterr().out
        assert "execution order" in out

    def test_dynamic_plan_mixes_on_skewed_query(self, corpus_db):
        """A rare+frequent query should trigger index joins somewhere."""
        plan = corpus_db.explain(["rare", "gamma"])
        merges, probes = plan.join_mix
        assert probes >= 1
