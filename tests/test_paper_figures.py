"""Paper-fidelity tests: the worked examples from the paper's text.

Reconstructs the Figure 1 document from every claim the running text
makes about it and asserts those claims against our engines:

* nodes 1.1.2.2.1 (XML) and 1.1.2.3.2 (data) make 1.1.2 an ELCA;
* 1.1 is an LCA but not an ELCA: after excluding 1.1.2's occurrences its
  descendants only contain {data} (via 1.1.1.1);
* 1.1 is not an SLCA because its descendant 1.1.2 already covers both;
* Example 3.1: further XML occurrences at 1.2.3 and 1.3.5.6 make the
  root the last ELCA, and its two matched XML witnesses collapse to one
  output (set semantics, paper Figure 3(e));
* Example 4.1's arithmetic (damping 0.9, score 0.73 + 0.41 = 1.14).
"""

import pytest

from repro import XMLDatabase
from repro.algorithms.explain import explain
from repro.xmltree.tree import Node, XMLTree


def figure1_tree() -> XMLTree:
    """The Figure 1 document, rebuilt from the paper's text.

    Dewey ids match the paper's: children are padded with empty
    elements so that e.g. 1.2.3 really is the third child of 1.2.
    """
    root = Node("root")                              # 1
    n11 = root.add_child(Node("s11"))                # 1.1
    n111 = n11.add_child(Node("s111"))               # 1.1.1
    n111.add_child(Node("t", "data"))                # 1.1.1.1  {data}
    n112 = n11.add_child(Node("s112"))               # 1.1.2
    n112.add_child(Node("pad"))                      # 1.1.2.1
    n1122 = n112.add_child(Node("s1122"))            # 1.1.2.2
    n1122.add_child(Node("t", "XML"))                # 1.1.2.2.1 {XML}
    n1123 = n112.add_child(Node("s1123"))            # 1.1.2.3
    n1123.add_child(Node("pad"))                     # 1.1.2.3.1
    n1123.add_child(Node("t", "data"))               # 1.1.2.3.2 {data}
    n12 = root.add_child(Node("s12"))                # 1.2
    n12.add_child(Node("pad"))                       # 1.2.1
    n12.add_child(Node("pad"))                       # 1.2.2
    n12.add_child(Node("t", "XML"))                  # 1.2.3     {XML}
    n13 = root.add_child(Node("s13"))                # 1.3
    for _ in range(4):                               # 1.3.1 .. 1.3.4
        n13.add_child(Node("pad"))
    n135 = n13.add_child(Node("s135"))               # 1.3.5
    for _ in range(5):                               # 1.3.5.1 .. 1.3.5.5
        n135.add_child(Node("pad"))
    n135.add_child(Node("t", "XML"))                 # 1.3.5.6   {XML}
    # Example 3.1 ends with "eventually identifies the root as the last
    # ELCA": that requires a data occurrence whose path to the root
    # avoids every C-node (branches 1.1-1.3 cannot provide one once
    # 1.1.2 is consumed, and planting data under 1.2/1.3 would create a
    # deeper ELCA instead).  The figure's full content is an image; a
    # fourth branch realizes the claim.
    n14 = root.add_child(Node("s14"))                # 1.4
    n141 = n14.add_child(Node("s141"))               # 1.4.1
    n141.add_child(Node("t", "data"))                # 1.4.1.1   {data}
    return XMLTree(root).freeze()


@pytest.fixture(scope="module")
def fig1():
    return XMLDatabase.from_tree(figure1_tree())


class TestFigure1Claims:
    @pytest.mark.parametrize("algorithm", ["oracle", "join", "stack",
                                           "index"])
    def test_elca_set(self, fig1, algorithm):
        """ELCAs of {XML, data}: 1.1.2 (the motivating answer) and the
        root (Example 3.1's last ELCA).  1.1 is excluded."""
        results = fig1.search("xml data", algorithm=algorithm)
        assert [r.node.dewey for r in results] == [(1,), (1, 1, 2)]

    @pytest.mark.parametrize("algorithm", ["oracle", "join", "stack",
                                           "index"])
    def test_slca_set(self, fig1, algorithm):
        """The only SLCA is 1.1.2: both 1.1 and the root have it as a
        descendant C-node."""
        results = fig1.search("xml data", semantics="slca",
                              algorithm=algorithm)
        assert [r.node.dewey for r in results] == [(1, 1, 2)]

    def test_112_is_lca_of_the_motivating_pair(self, fig1):
        from repro.xmltree.dewey import lca

        assert lca((1, 1, 2, 2, 1), (1, 1, 2, 3, 2)) == (1, 1, 2)

    def test_11_is_an_lca_but_not_a_result(self, fig1):
        """1.1 appears in the naive LCA set yet in neither variant."""
        from repro.algorithms.oracle import SemanticsOracle

        oracle = SemanticsOracle(fig1.tree, fig1.inverted_index)
        lcas = oracle.all_lcas(["xml", "data"])
        assert (1, 1) in lcas
        for semantics in ("elca", "slca"):
            results = fig1.search("xml data", semantics=semantics)
            assert all(r.node.dewey != (1, 1) for r in results)

    def test_root_output_once_despite_two_xml_witnesses(self, fig1):
        """Figure 3(e): two leftover XML occurrences (1.2.3, 1.3.5.6)
        match the root's JDewey number twice; set semantics outputs the
        root once."""
        results = fig1.search("xml data")
        assert sum(1 for r in results if r.node.dewey == (1,)) == 1

    def test_bottom_up_emission_levels(self, fig1):
        """Example 3.1's sweep: the lowest ELCA appears at level 3, the
        root at level 1, and no other level emits."""
        plan = explain(fig1.columnar_index, ["xml", "data"])
        emitted = {lp.level: lp.emitted for lp in plan.levels}
        assert emitted.get(3) == 1
        assert emitted.get(1) == 1
        assert sum(emitted.values()) == 2

    def test_no_elca_below_min_max_length(self, fig1):
        """The sweep starts at min(l_m^1, l_m^2): no join below it."""
        plan = explain(fig1.columnar_index, ["xml", "data"])
        max_level = max(lp.level for lp in plan.levels)
        # L_xml reaches level 5 (1.1.2.2.1), L_data reaches level 5
        # (1.1.2.3.2): the sweep starts at level 5.
        assert max_level == 5

    def test_root_score_damped_below_1_1_2(self, fig1):
        """Compactness: 1.1.2's witnesses sit 2 levels below it, the
        root's free witnesses 2-3 levels below -- but the root's
        witnesses are weaker after damping, so 1.1.2 ranks first."""
        ranked = fig1.search_ranked("xml data")
        assert ranked[0].node.dewey == (1, 1, 2)


class TestExample41Arithmetic:
    def test_damping_and_sum(self, fig1):
        from repro.scoring.ranking import DampingFunction, RankingModel

        model = RankingModel(damping=DampingFunction(0.9))
        # "Its score is 0.73 + 0.41 = 1.14."
        assert model.score_result([0.73, 0.41]) == pytest.approx(1.14)
        # "The maximum scores from L_xml(2) and L_data(2) are
        # 0.7 * 0.9 = 0.63 and 0.5 * 0.9 = 0.45."
        assert 0.7 * model.damping(1) == pytest.approx(0.63)
        assert 0.5 * model.damping(1) == pytest.approx(0.45)
        # "The threshold of the unseen results in column 2 is 1.08."
        assert 0.63 + 0.45 == pytest.approx(1.08)
