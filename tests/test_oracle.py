"""Tests for the reference semantics oracle (`repro.algorithms.oracle`).

These pin the ELCA/SLCA definitions on hand-built trees; every optimized
algorithm is then validated against the oracle in the cross-validation
suite.
"""

import pytest

from repro import XMLDatabase
from repro.algorithms.oracle import SemanticsOracle
from tests.conftest import figure1_like_tree


@pytest.fixture
def fig1():
    db = XMLDatabase.from_tree(figure1_like_tree())
    oracle = SemanticsOracle(db.tree, db.inverted_index)
    return db, oracle


class TestELCASemantics:
    def test_nested_elcas(self, fig1):
        db, oracle = fig1
        results = oracle.evaluate(["xml", "data"], "elca")
        tags = [r.node.tag for r in results]
        # "paper" nests both keywords; the root keeps free occurrences
        # from branch b (xml) and c (data) after excluding paper's.
        assert tags == ["root", "paper"]

    def test_lca_but_not_elca(self, fig1):
        db, oracle = fig1
        results = oracle.evaluate(["xml", "data"], "elca")
        # Node "a" is the LCA of (x="data survey", paper's xml), but all
        # its xml occurrences sit under the C-node "paper": not an ELCA.
        assert all(r.node.tag != "a" for r in results)

    def test_single_keyword_elcas_are_direct_containers(self, fig1):
        db, oracle = fig1
        results = oracle.evaluate(["data"], "elca")
        assert sorted(r.node.tag for r in results) == ["t2", "x", "z"]

    def test_missing_keyword_gives_empty(self, fig1):
        _, oracle = fig1
        assert oracle.evaluate(["xml", "nothere"], "elca") == []

    def test_empty_query(self, fig1):
        _, oracle = fig1
        assert oracle.evaluate([], "elca") == []

    def test_results_in_document_order(self, fig1):
        _, oracle = fig1
        results = oracle.evaluate(["xml", "data"], "elca")
        deweys = [r.node.dewey for r in results]
        assert deweys == sorted(deweys)

    def test_three_keywords(self, fig1):
        _, oracle = fig1
        # Only "a" covers survey (x), xml (paper) and data; the root's
        # remaining occurrences after excluding "a" lack survey.
        results = oracle.evaluate(["xml", "data", "survey"], "elca")
        assert [r.node.tag for r in results] == ["a"]


class TestSLCASemantics:
    def test_slca_is_minimal(self, fig1):
        _, oracle = fig1
        results = oracle.evaluate(["xml", "data"], "slca")
        assert [r.node.tag for r in results] == ["paper"]

    def test_slca_subset_of_elca(self, fig1):
        _, oracle = fig1
        elca = {r.node.dewey for r in oracle.evaluate(["xml", "data"],
                                                      "elca")}
        slca = {r.node.dewey for r in oracle.evaluate(["xml", "data"],
                                                      "slca")}
        assert slca <= elca

    def test_no_slca_is_ancestor_of_another(self, fig1):
        _, oracle = fig1
        results = oracle.evaluate(["xml", "data"], "slca")
        deweys = [r.node.dewey for r in results]
        for d1 in deweys:
            for d2 in deweys:
                if d1 != d2:
                    assert d2[:len(d1)] != d1

    def test_unknown_semantics_raises(self, fig1):
        _, oracle = fig1
        with pytest.raises(ValueError):
            oracle.evaluate(["xml"], "vlca")


class TestScoring:
    def test_damping_prefers_compact_results(self, fig1):
        _, oracle = fig1
        results = oracle.evaluate(["xml", "data"], "elca")
        by_tag = {r.node.tag: r for r in results}
        # "paper" holds both keywords one hop away; the root is 2-3 hops
        # from its free witnesses, so damping must rank it below.
        assert by_tag["paper"].score > by_tag["root"].score

    def test_witness_scores_per_keyword(self, fig1):
        _, oracle = fig1
        results = oracle.evaluate(["xml", "data"], "elca")
        for r in results:
            assert len(r.witness_scores) == 2
            assert r.score == pytest.approx(sum(r.witness_scores))

    def test_elca_score_excludes_blocked_witnesses(self, fig1):
        db, oracle = fig1
        root_result = next(r for r in oracle.evaluate(["xml", "data"],
                                                      "elca")
                           if r.node.tag == "root")
        # The root's xml witness must be branch b's "y" (level 3), not
        # paper's t1 (blocked).  y is 2 hops below the root.
        y = db.tree.find_all(lambda n: n.tag == "y")[0]
        plist = db.inverted_index.term_list("xml")
        y_score = next(p.score for p in plist.postings if p.dewey == y.dewey)
        assert root_result.witness_scores[0] == pytest.approx(
            y_score * 0.9 ** 2)


class TestAllLCAs:
    def test_all_lcas_superset_of_elca(self, fig1):
        _, oracle = fig1
        lcas = oracle.all_lcas(["xml", "data"])
        elcas = {r.node.dewey for r in oracle.evaluate(["xml", "data"],
                                                       "elca")}
        assert elcas <= lcas

    def test_all_lcas_contains_non_elca_lca(self, fig1):
        db, oracle = fig1
        lcas = oracle.all_lcas(["xml", "data"])
        a = db.tree.find_all(lambda n: n.tag == "a")[0]
        assert a.dewey in lcas

    def test_combination_limit(self, fig1):
        _, oracle = fig1
        with pytest.raises(ValueError):
            oracle.all_lcas(["xml", "data"], limit=1)

    def test_empty_when_keyword_missing(self, fig1):
        _, oracle = fig1
        assert oracle.all_lcas(["xml", "missing"]) == set()
