"""Tests for the XML tree model (`repro.xmltree.tree`)."""

import pytest

from repro.xmltree.tree import Node, XMLTree, build_tree


@pytest.fixture
def simple_tree():
    root = Node("bib")
    book = root.add_child(Node("book"))
    book.add_child(Node("title", "XML basics"))
    chapter = book.add_child(Node("chapter"))
    chapter.add_child(Node("section", "intro"))
    chapter.add_child(Node("section", "details"))
    root.add_child(Node("article", "keyword search"))
    return XMLTree(root).freeze()


class TestNode:
    def test_add_child_sets_parent(self):
        parent = Node("a")
        child = parent.add_child(Node("b"))
        assert child.parent is parent
        assert parent.children == [child]

    def test_add_child_returns_child_for_chaining(self):
        parent = Node("a")
        grandchild = parent.add_child(Node("b")).add_child(Node("c"))
        assert grandchild.tag == "c"
        assert parent.children[0].children[0] is grandchild

    def test_level_equals_dewey_length(self, simple_tree):
        for node in simple_tree.nodes:
            assert node.level == len(node.dewey)

    def test_root_level_is_one(self, simple_tree):
        assert simple_tree.root.level == 1
        assert simple_tree.root.dewey == (1,)

    def test_iter_subtree_document_order(self, simple_tree):
        tags = [n.tag for n in simple_tree.root.iter_subtree()]
        assert tags == ["bib", "book", "title", "chapter", "section",
                        "section", "article"]

    def test_iter_subtree_from_inner_node(self, simple_tree):
        book = simple_tree.node_by_dewey((1, 1))
        tags = [n.tag for n in book.iter_subtree()]
        assert tags == ["book", "title", "chapter", "section", "section"]

    def test_subtree_text_concatenates_in_order(self, simple_tree):
        book = simple_tree.node_by_dewey((1, 1))
        assert book.subtree_text() == "XML basics intro details"

    def test_is_ancestor_of(self, simple_tree):
        root = simple_tree.root
        section = simple_tree.node_by_dewey((1, 1, 2, 1))
        assert root.is_ancestor_of(section)
        assert not section.is_ancestor_of(root)

    def test_is_ancestor_of_self_is_false(self, simple_tree):
        node = simple_tree.node_by_dewey((1, 1))
        assert not node.is_ancestor_of(node)

    def test_is_ancestor_of_sibling_is_false(self, simple_tree):
        book = simple_tree.node_by_dewey((1, 1))
        article = simple_tree.node_by_dewey((1, 2))
        assert not book.is_ancestor_of(article)
        assert not article.is_ancestor_of(book)

    def test_path_root_to_node(self, simple_tree):
        section = simple_tree.node_by_dewey((1, 1, 2, 2))
        assert [n.tag for n in section.path()] == ["bib", "book", "chapter",
                                                   "section"]

    def test_attributes_preserved(self):
        node = Node("item", attributes={"id": "i42"})
        assert node.attributes["id"] == "i42"


class TestXMLTree:
    def test_freeze_assigns_dewey_in_document_order(self, simple_tree):
        deweys = [n.dewey for n in simple_tree.nodes]
        assert deweys == sorted(deweys)
        assert deweys[0] == (1,)

    def test_freeze_is_idempotent(self, simple_tree):
        before = [n.dewey for n in simple_tree.nodes]
        simple_tree.freeze()
        assert [n.dewey for n in simple_tree.nodes] == before

    def test_len_counts_all_nodes(self, simple_tree):
        assert len(simple_tree) == 7

    def test_depth(self, simple_tree):
        assert simple_tree.depth == 4

    def test_node_by_dewey_lookup(self, simple_tree):
        assert simple_tree.node_by_dewey((1, 2)).tag == "article"

    def test_node_by_dewey_accepts_list(self, simple_tree):
        assert simple_tree.node_by_dewey([1, 2]).tag == "article"

    def test_node_by_dewey_missing_raises(self, simple_tree):
        with pytest.raises(KeyError):
            simple_tree.node_by_dewey((1, 9))

    def test_sibling_ordinals_start_at_one(self, simple_tree):
        chapter = simple_tree.node_by_dewey((1, 1, 2))
        assert [c.dewey[-1] for c in chapter.children] == [1, 2]

    def test_find_all(self, simple_tree):
        sections = simple_tree.find_all(lambda n: n.tag == "section")
        assert len(sections) == 2

    def test_frozen_flag(self):
        tree = XMLTree(Node("a"))
        assert not tree.frozen
        tree.freeze()
        assert tree.frozen


class TestSerialization:
    def test_to_xml_roundtrip_structure(self, simple_tree):
        from repro.xmltree.parser import parse_xml

        text = simple_tree.to_xml()
        reparsed = parse_xml(text)
        assert [n.tag for n in reparsed.nodes] == \
            [n.tag for n in simple_tree.nodes]
        assert [n.text for n in reparsed.nodes] == \
            [n.text for n in simple_tree.nodes]

    def test_to_xml_escapes_special_characters(self):
        root = Node("a", "x < y & z")
        text = XMLTree(root).freeze().to_xml()
        assert "&lt;" in text and "&amp;" in text

    def test_to_xml_indented_is_parseable(self, simple_tree):
        from repro.xmltree.parser import parse_xml

        reparsed = parse_xml(simple_tree.to_xml(indent=True))
        assert len(reparsed) == len(simple_tree)

    def test_empty_element_self_closes(self):
        root = Node("a")
        root.add_child(Node("b"))
        assert "<b/>" in XMLTree(root).freeze().to_xml()


class TestBuildTree:
    def test_spec_with_text_and_children(self):
        tree = build_tree(("bib", [("paper", "XML data", [])]))
        assert tree.root.tag == "bib"
        assert tree.root.children[0].text == "XML data"

    def test_spec_tag_only_string(self):
        tree = build_tree("solo")
        assert tree.root.tag == "solo"
        assert len(tree) == 1

    def test_spec_is_frozen(self):
        tree = build_tree(("a", [("b", [])]))
        assert tree.frozen
        assert tree.node_by_dewey((1, 1)).tag == "b"

    def test_nested_spec_depth(self):
        tree = build_tree(("a", [("b", [("c", [("d", "deep", [])])])]))
        assert tree.depth == 4
        assert tree.node_by_dewey((1, 1, 1, 1)).text == "deep"
