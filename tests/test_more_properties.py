"""Further property-based tests: prefix consistency, serialization over
random trees, parser fuzz, result fragments."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import XMLDatabase, parse_xml
from repro.index import storage
from repro.xmltree.parser import XMLParseError
from tests.test_properties import labelled_tree, query_terms


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(labelled_tree(), query_terms, st.integers(1, 4))
def test_topk_prefix_consistency(tree, terms, k):
    """search_topk(k) must be a prefix of search_topk(k+3) by score."""
    db = XMLDatabase.from_tree(tree)
    small = db.search_topk(terms, k)
    large = db.search_topk(terms, k + 3)
    assert [round(r.score, 9) for r in small] == \
        [round(r.score, 9) for r in large][: len(small)]


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(labelled_tree())
def test_columnar_serialization_roundtrip_random_trees(tree):
    """Every term of a random tree's index round-trips exactly."""
    db = XMLDatabase.from_tree(tree)
    index = db.columnar_index
    blob = storage.serialize_columnar_index(index,
                                            score_mode=storage.SCORES_EXACT)
    loaded = storage.deserialize_columnar_index(blob)
    assert set(loaded) == set(index.vocabulary)
    for term, postings in loaded.items():
        original = index.term_postings(term)
        assert postings.seqs == original.seqs
        assert list(postings.scores) == pytest.approx(
            list(original.scores))


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(labelled_tree(), query_terms)
def test_lazy_index_equals_eager_on_random_trees(tree, terms):
    from repro.algorithms.join_based import JoinBasedSearch
    from repro.index.lazydisk import LazyColumnarIndex

    db = XMLDatabase.from_tree(tree)
    blob = storage.serialize_columnar_index(
        db.columnar_index, score_mode=storage.SCORES_EXACT)
    lazy = LazyColumnarIndex(blob, db.tree, db.tokenizer, db.ranking)
    expected, _ = JoinBasedSearch(db.columnar_index).evaluate(terms, "elca")
    got, _ = JoinBasedSearch(lazy).evaluate(terms, "elca")
    assert [(r.node.dewey, round(r.score, 9)) for r in got] == \
        [(r.node.dewey, round(r.score, 9)) for r in expected]


@settings(max_examples=80, deadline=None)
@given(st.text(max_size=120))
def test_parser_totality(text):
    """The parser either succeeds or raises XMLParseError -- nothing
    else escapes, whatever the input."""
    try:
        tree = parse_xml(text)
    except XMLParseError:
        return
    assert tree.frozen


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(labelled_tree())
def test_document_roundtrip_through_serialization(tree):
    """to_xml -> parse_xml preserves structure and (normalized) text."""
    reparsed = parse_xml(tree.to_xml())
    assert [n.tag for n in reparsed.nodes] == [n.tag for n in tree.nodes]
    assert [" ".join(n.text.split()) for n in reparsed.nodes] == \
        [" ".join(n.text.split()) for n in tree.nodes]


class TestFragments:
    def test_fragment_contains_keywords(self, small_db):
        for r in small_db.search("xml data"):
            fragment = r.fragment()
            assert "<" + r.node.tag in fragment
            text = fragment.lower()
            assert "xml" in text and "data" in text

    def test_fragment_is_parseable(self, small_db):
        for r in small_db.search("xml data"):
            sub = parse_xml(r.fragment())
            assert sub.root.tag == r.node.tag

    def test_indented_fragment(self, small_db):
        r = small_db.search("xml data")[0]
        assert "\n" in r.fragment(indent=True)
