"""Tests for the ranking model (`repro.scoring.ranking`)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scoring.ranking import (ConstantScorer, DampingFunction,
                                   RankingModel, SumCombiner, TfIdfScorer)


class TestTfIdfScorer:
    def test_positive_for_positive_tf(self):
        assert TfIdfScorer().score(1, 10, 1000, 5) > 0

    def test_zero_for_zero_tf(self):
        assert TfIdfScorer().score(0, 10, 1000, 5) == 0.0

    def test_monotone_in_tf(self):
        s = TfIdfScorer()
        assert s.score(3, 10, 1000, 5) > s.score(1, 10, 1000, 5)

    def test_rarer_terms_score_higher(self):
        s = TfIdfScorer()
        assert s.score(1, 2, 1000, 5) > s.score(1, 500, 1000, 5)

    def test_longer_nodes_score_lower(self):
        s = TfIdfScorer()
        assert s.score(1, 10, 1000, 4) > s.score(1, 10, 1000, 100)

    @given(st.integers(1, 50), st.integers(1, 1000), st.integers(1, 200))
    def test_always_finite_and_nonnegative(self, tf, df, ntok):
        value = TfIdfScorer().score(tf, df, 1000, ntok)
        assert value >= 0 and math.isfinite(value)


class TestConstantScorer:
    def test_constant(self):
        assert ConstantScorer(2.5).score(3, 1, 10, 4) == 2.5

    def test_zero_tf_scores_zero(self):
        assert ConstantScorer(2.5).score(0, 1, 10, 4) == 0.0


class TestDamping:
    def test_paper_example_base(self):
        d = DampingFunction(0.9)
        assert d(0) == 1.0
        assert d(1) == pytest.approx(0.9)
        assert d(3) == pytest.approx(0.9 ** 3)

    def test_base_one_disables_damping(self):
        d = DampingFunction(1.0)
        assert d(5) == 1.0

    def test_decreasing(self):
        d = DampingFunction(0.8)
        values = [d(i) for i in range(6)]
        assert values == sorted(values, reverse=True)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_invalid_base_raises(self, bad):
        with pytest.raises(ValueError):
            DampingFunction(bad)

    def test_negative_distance_raises(self):
        with pytest.raises(ValueError):
            DampingFunction()(-1)


class TestSumCombiner:
    def test_combine(self):
        assert SumCombiner().combine([0.5, 0.3, 0.2]) == pytest.approx(1.0)

    @given(st.lists(st.floats(0, 10), min_size=1, max_size=5),
           st.lists(st.floats(0, 1), max_size=5))
    def test_monotonicity(self, scores, bumps):
        """The paper's Monotonicity property for F = sum."""
        c = SumCombiner()
        bumped = [s + b for s, b in zip(scores, bumps + [0.0] * len(scores))]
        assert c.combine(bumped) >= c.combine(scores)

    def test_upper_bound_equals_combine(self):
        c = SumCombiner()
        assert c.upper_bound([1.0, 2.0]) == c.combine([1.0, 2.0])


class TestRankingModel:
    def test_damped_applies_vertical_distance(self):
        model = RankingModel(damping=DampingFunction(0.9))
        assert model.damped(1.0, occurrence_level=5, result_level=3) == \
            pytest.approx(0.81)

    def test_damped_same_level_identity(self):
        model = RankingModel()
        assert model.damped(0.7, 4, 4) == pytest.approx(0.7)

    def test_damped_result_below_occurrence_raises(self):
        with pytest.raises(ValueError):
            RankingModel().damped(1.0, 3, 5)

    def test_score_result_sums(self):
        model = RankingModel()
        assert model.score_result([0.73, 0.41]) == pytest.approx(1.14)

    def test_paper_example_4_1(self):
        """Example 4.1: result score 0.73 + 0.41 = 1.14 at level 3 with
        d = 0.9 ** delta applied upstream."""
        model = RankingModel(damping=DampingFunction(0.9))
        xml_damped = model.damped(0.73, 3, 3)
        data_damped = model.damped(0.41, 3, 3)
        assert model.score_result([xml_damped, data_damped]) == \
            pytest.approx(1.14)

    def test_defaults(self):
        model = RankingModel()
        assert isinstance(model.scorer, TfIdfScorer)
        assert model.damping.base == pytest.approx(0.9)
