"""Format v4: the adaptive-codec columnar container.

The container keeps v3's aligned zero-copy layout; what changes is the
per-column codec byte, which now names whichever of {rle, delta, for,
varint} measured smallest at build time.  Claims under test:

* **Equivalence** -- a database saved as v1, v2, v3 and v4 answers
  every query byte-identically (results, scores, witnesses, plans)
  under eager and lazy loads, vectorized or scalar decoders, clean or
  fault-injected disks, flat or sharded layouts.
* **Size** -- the adaptive selector can only do better: the v4
  container is never larger than the v3 container for the same corpus.
* **Integrity** -- v3's corruption guarantees carry over: a flipped
  payload byte surfaces as `DatabaseCorruptError` naming the keyword,
  an unknown scheme id is a typed error, never a wrong answer.

The fault matrix honors ``REPRO_FAULT_SEED`` like `test_faults`.
"""

import os

import numpy as np
import pytest

from repro import XMLDatabase
from repro.diskdb import load_database, save_database
from repro.index import storage
from repro.index.compression import SCHEME_NAMES
from repro.reliability import (DatabaseCorruptError, DatabaseFormatError,
                               FaultInjector)
from tests.conftest import SMALL_XML

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

QUERIES = ["xml data", "keyword search", "data models", "xml",
           "relational data", "top data", "search processing",
           "keyword data xml", "title"]


def _build_db():
    return XMLDatabase.from_xml_text(SMALL_XML)


@pytest.fixture(scope="module")
def version_dirs(tmp_path_factory):
    """One directory per on-disk format (plus a sharded v4), same
    database."""
    root = tmp_path_factory.mktemp("formats-v4")
    db = _build_db()
    db.columnar_index
    db.inverted_index
    dirs = {}
    for version in (1, 2, 3, 4):
        path = str(root / f"db-v{version}")
        save_database(db, path, format_version=version)
        dirs[version] = path
    sharded = str(root / "db-v4-sharded")
    save_database(db, sharded, shards=2, format_version=4)
    dirs["v4-sharded"] = sharded
    return dirs


def _transcript(db):
    """Queries + top-K + plans, exact to the last bit."""
    out = []
    for query in QUERIES:
        results, stats = db.search(query, use_cache=False,
                                   with_stats=True)
        out.append(("search", query,
                    [(r.node.dewey, r.level, r.score, r.witness_scores)
                     for r in results],
                    list(stats.per_level_plan)))
        top = db.search_topk(query, k=3)
        out.append(("topk", query,
                    [(r.node.dewey, r.level, r.score, r.witness_scores)
                     for r in top],
                    list(top.stats.per_level_plan)))
    return out


def _results_only(db):
    """Result tuples without plans -- the sharded facade rebuilds plans
    per shard, so only the answers are comparable across layouts."""
    out = []
    for query in QUERIES:
        results = db.search(query, use_cache=False)
        out.append([(r.node.dewey, r.level, r.score) for r in results])
        top = db.search_topk(query, k=3)
        out.append([(r.node.dewey, r.level, r.score) for r in top])
    return out


class TestRoundTripMatrix:
    def test_v1_through_v4_answer_identically(self, version_dirs):
        reference = _transcript(_build_db())
        for version in (1, 2, 3, 4):
            path = version_dirs[version]
            for lazy in (False, True):
                db = load_database(path, lazy=lazy,
                                   verify="lazy" if lazy else "eager")
                assert _transcript(db) == reference, \
                    f"divergence at format v{version}, lazy={lazy}"

    def test_sharded_v4_answers_identically(self, version_dirs):
        reference = _results_only(_build_db())
        for lazy in (False, True):
            db = load_database(version_dirs["v4-sharded"], lazy=lazy,
                               verify="lazy" if lazy else "eager")
            assert _results_only(db) == reference

    def test_matrix_under_fault_injection(self, version_dirs):
        """A faulty disk may fail a load with a typed error, but a
        load that *succeeds* answers exactly like the clean one."""
        reference = _transcript(_build_db())
        for version in (1, 2, 3, 4):
            path = version_dirs[version]
            for lazy in (False, True):
                injector = FaultInjector(error_rate=0.05,
                                         short_read_rate=0.05,
                                         seed=SEED)
                try:
                    db = load_database(
                        path, lazy=lazy,
                        verify="lazy" if lazy else "eager",
                        injector=injector)
                except (DatabaseCorruptError, DatabaseFormatError):
                    continue  # typed failure is an allowed outcome
                assert _transcript(db) == reference, \
                    (f"fault-injected v{version} lazy={lazy} diverged "
                     f"(REPRO_FAULT_SEED={SEED})")

    def test_vectorized_off_matches(self, version_dirs):
        reference = _transcript(_build_db())
        for lazy in (False, True):
            db = load_database(version_dirs[4], lazy=lazy,
                               verify="lazy" if lazy else "eager",
                               vectorized=False)
            assert _transcript(db) == reference

    def test_repeat_queries_hit_decode_cache_identically(self,
                                                         version_dirs):
        """Warm decoded-column-cache hits serve the same answers as the
        cold decodes that populated them."""
        db = load_database(version_dirs[4], lazy=True, verify="lazy",
                           result_cache_size=0)
        first = _transcript(db)
        second = _transcript(db)
        assert first == second
        cache = db.columnar_index._decoded_cache
        assert cache is not None and cache.stats.hits > 0


class TestV4Container:
    def test_meta_records_version_4(self, version_dirs):
        import json

        meta = json.load(open(os.path.join(version_dirs[4],
                                           "meta.json")))
        assert meta["format_version"] == 4

    def test_v4_never_larger_than_v3(self, version_dirs):
        v3 = os.path.getsize(os.path.join(version_dirs[3],
                                          "columnar.bin"))
        v4 = os.path.getsize(os.path.join(version_dirs[4],
                                          "columnar.bin"))
        assert v4 <= v3

    def test_framing_is_aligned_and_schemes_valid(self, version_dirs):
        blob = open(os.path.join(version_dirs[4], "columnar.bin"),
                    "rb").read()
        assert blob[:4] == b"JDX4"
        _algorithm, refs = storage.scan_v4_container(blob)
        assert refs, "container has terms"
        seen = set()
        for ref in refs:
            assert ref.offset % 8 == 0
            lengths, scores, level_payloads = storage.parse_v4_payload(
                ref.term, blob[ref.offset: ref.offset + ref.length])
            assert len(lengths) == len(scores)
            assert len(level_payloads) == (int(lengths.max())
                                           if len(lengths) else 0)
            for scheme, _payload in level_payloads:
                assert scheme in SCHEME_NAMES.values()
                seen.add(scheme)
        assert seen, "at least one codec chosen"

    def test_flipped_payload_byte_names_the_term(self, version_dirs,
                                                 tmp_path):
        import shutil

        src = version_dirs[4]
        dst = str(tmp_path / "corrupt")
        shutil.copytree(src, dst)
        columnar = os.path.join(dst, "columnar.bin")
        blob = bytearray(open(columnar, "rb").read())
        _algo, refs = storage.scan_v4_container(bytes(blob))
        ref = refs[len(refs) // 2]
        blob[ref.offset + ref.length // 2] ^= 0x40
        open(columnar, "wb").write(bytes(blob))
        db = load_database(dst, lazy=True, verify="lazy")
        with pytest.raises(DatabaseCorruptError) as err:
            for query in QUERIES:
                db.search(query, use_cache=False)
            for term in db.columnar_index.vocabulary:
                db.columnar_index.term_postings(term).column(1)
        assert ref.term in str(err.value)

    def test_truncated_container_is_typed(self, version_dirs):
        blob = open(os.path.join(version_dirs[4], "columnar.bin"),
                    "rb").read()
        with pytest.raises(DatabaseCorruptError):
            storage.scan_v4_container(blob[: len(blob) // 2])

    def test_wrong_magic_is_format_error(self):
        with pytest.raises(DatabaseFormatError):
            storage.scan_v4_container(b"NOPE" + b"\x00" * 32)

    def test_v3_magic_rejected_by_v4_scan(self, version_dirs):
        blob = open(os.path.join(version_dirs[3], "columnar.bin"),
                    "rb").read()
        with pytest.raises(DatabaseFormatError):
            storage.scan_v4_container(blob)

    def test_eager_v4_deserializer_roundtrips(self):
        db = _build_db()
        index = db.columnar_index
        blob = storage.serialize_columnar_index_v4(
            index, score_mode=storage.SCORES_EXACT)
        loaded = storage.deserialize_columnar_index_v4(blob)
        assert sorted(loaded) == index.vocabulary
        for term, postings in loaded.items():
            original = index.term_postings(term)
            assert postings.seqs == original.seqs
            assert np.allclose(postings.scores, original.scores)

    def test_unknown_scheme_id_is_typed(self):
        """A v4 payload naming a scheme id outside the registry parses
        to a typed corruption error, not a crash or a wrong answer."""
        db = _build_db()
        index = db.columnar_index
        blob = bytearray(storage.serialize_columnar_index_v4(
            index, score_mode=storage.SCORES_EXACT))
        _algo, refs = storage.scan_v4_container(bytes(blob))
        corrupted = 0
        for ref in refs:
            payload = bytes(blob[ref.offset: ref.offset + ref.length])
            _l, _s, level_payloads = storage.parse_v4_payload(ref.term,
                                                              payload)
            if not level_payloads:
                continue
            # The scheme-id array sits after the fixed payload header
            # and the u64 level offset/length tables.
            n_levels = len(level_payloads)
            header = storage._V3_PAYLOAD_HEADER.size
            schemes_off = ref.offset + header + 16 * n_levels
            blob[schemes_off] = 250   # no such scheme id
            corrupted += 1
            with pytest.raises(DatabaseCorruptError):
                storage.parse_v4_payload(
                    ref.term,
                    bytes(blob[ref.offset: ref.offset + ref.length]))
            break
        assert corrupted == 1
