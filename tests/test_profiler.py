"""Tests for the always-on phase profiler (`repro.obs.profiler`).

Exclusive-time attribution, the thread-local no-op discipline, the
`repro_phase_time_ms` histograms, slow-log phase attachment, and the
SIGPROF statistical cross-check.
"""

import threading
import time

import pytest

from repro import XMLDatabase
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import (NULL_PROFILER, PHASES, NullPhaseProfiler,
                                PhaseProfiler, QueryProfile, SamplingProfiler,
                                active_profile, profile_phase)


def _fresh_db(source_db, **kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    return XMLDatabase.from_xml_text(source_db.tree.to_xml(), **kwargs)


def _spin(seconds):
    """Burn CPU (not sleep -- ITIMER_PROF counts CPU time)."""
    deadline = time.process_time() + seconds
    x = 0
    while time.process_time() < deadline:
        x += 1
    return x


# ---------------------------------------------------------------------------
# QueryProfile: exclusive attribution
# ---------------------------------------------------------------------------

class TestQueryProfile:
    def test_exclusive_time_sums_to_total(self):
        profile = QueryProfile()
        profile.enter("fetch")
        time.sleep(0.002)
        profile.enter("decompress")  # nested: fetch stops accruing
        time.sleep(0.002)
        profile.exit()
        profile.exit()
        time.sleep(0.001)
        profile.finish()
        phases = profile.phases
        assert set(phases) <= set(PHASES) | {"fetch", "decompress"}
        assert phases["fetch"] > 0.0
        assert phases["decompress"] > 0.0
        assert phases["other"] > 0.0
        assert sum(phases.values()) == pytest.approx(profile.total_ms,
                                                     rel=0.02)

    def test_nesting_charges_the_innermost_phase(self):
        profile = QueryProfile()
        profile.enter("join")
        profile.enter("erase")
        time.sleep(0.005)
        profile.exit()
        profile.exit()
        profile.finish()
        # Nearly all the time was inside erase; join only held the
        # stack during the boundary crossings.
        assert profile.phases["erase"] > profile.phases.get("join", 0.0)

    def test_current_phase_tracks_the_stack(self):
        profile = QueryProfile()
        assert profile.current_phase == "other"
        profile.enter("join")
        assert profile.current_phase == "join"
        profile.enter("erase")
        assert profile.current_phase == "erase"
        profile.exit()
        assert profile.current_phase == "join"
        profile.exit()
        assert profile.current_phase == "other"

    def test_as_dict(self):
        profile = QueryProfile()
        profile.enter("topk")
        profile.exit()
        profile.finish()
        payload = profile.as_dict()
        assert payload["total_ms"] == profile.total_ms
        assert payload["phases"] == profile.phases


# ---------------------------------------------------------------------------
# module-level plumbing
# ---------------------------------------------------------------------------

class TestProfilePhase:
    def test_noop_without_active_profile(self):
        assert active_profile() is None
        span = profile_phase("join")
        assert span is profile_phase("erase")  # the shared no-op object
        with span:
            pass  # must be harmless

    def test_scope_activates_and_restores(self):
        profiler = PhaseProfiler(metrics=MetricsRegistry())
        with profiler.profile() as prof:
            assert active_profile() is prof
            with profile_phase("fetch"):
                assert prof.current_phase == "fetch"
        assert active_profile() is None
        assert prof.total_ms > 0.0

    def test_scopes_nest_per_thread(self):
        profiler = PhaseProfiler(metrics=MetricsRegistry())
        with profiler.profile() as outer:
            with profiler.profile() as inner:
                assert active_profile() is inner
            assert active_profile() is outer

    def test_threads_have_independent_profiles(self):
        profiler = PhaseProfiler(metrics=MetricsRegistry())
        seen = {}

        def worker(name):
            with profiler.profile() as prof:
                with profile_phase("join"):
                    time.sleep(0.002)
                seen[name] = prof

        with profiler.profile() as main_prof:
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert active_profile() is main_prof
        profiles = list(seen.values())
        assert len({id(p) for p in profiles}) == 3
        for prof in profiles:
            assert prof.phases["join"] > 0.0
        # The workers' join time never leaked into the main profile.
        assert "join" not in main_prof.phases


class TestPhaseProfiler:
    def test_publishes_phase_histograms(self):
        registry = MetricsRegistry()
        profiler = PhaseProfiler(metrics=registry)
        with profiler.profile():
            with profile_phase("join"):
                time.sleep(0.001)
        snap = registry.snapshot()
        hist = snap["histograms"]['repro_phase_time_ms{phase="join"}']
        assert hist["count"] == 1
        assert hist["sum"] > 0.0
        assert 'repro_phase_time_ms{phase="other"}' in snap["histograms"]

    def test_null_profiler_records_nothing(self):
        assert NULL_PROFILER.enabled is False
        assert isinstance(NULL_PROFILER, NullPhaseProfiler)
        with NULL_PROFILER.profile() as prof:
            assert prof is None
            assert active_profile() is None
            with profile_phase("join"):
                pass


# ---------------------------------------------------------------------------
# database integration
# ---------------------------------------------------------------------------

class TestDatabaseIntegration:
    def test_search_populates_phase_histograms(self, small_db):
        db = _fresh_db(small_db)
        db.search("xml data", use_cache=False)
        snap = db.metrics.snapshot()
        phase_keys = [key for key in snap["histograms"]
                      if key.startswith("repro_phase_time_ms")]
        assert phase_keys
        phases = {key.split('"')[1] for key in phase_keys}
        assert "parse" in phases
        assert phases <= set(PHASES)

    def test_topk_attributes_rank_join_phases(self, dblp_db):
        db = _fresh_db(dblp_db)
        db.search_topk("alpha beta", k=3)
        snap = db.metrics.snapshot()
        phases = {key.split('"')[1] for key in snap["histograms"]
                  if key.startswith("repro_phase_time_ms")}
        assert "rank_join" in phases
        assert "topk" in phases

    def test_slow_log_carries_the_phase_breakdown(self, small_db):
        db = _fresh_db(small_db, slow_query_ms=0.0)  # record everything
        db.search("xml data", use_cache=False)
        records = db.slow_log.records()
        assert records
        phases = records[-1].phases
        assert phases is not None
        assert all(ms >= 0.0 for ms in phases.values())
        assert set(phases) <= set(PHASES)
        assert records[-1].as_dict()["phases"] == phases

    def test_null_profiler_keeps_slow_log_phase_free(self, small_db):
        db = _fresh_db(small_db, slow_query_ms=0.0,
                       profiler=NULL_PROFILER)
        db.search("xml data", use_cache=False)
        records = db.slow_log.records()
        assert records
        assert records[-1].phases is None
        snap = db.metrics.snapshot()
        assert not any(key.startswith("repro_phase_time_ms")
                       for key in snap["histograms"])


# ---------------------------------------------------------------------------
# SIGPROF sampler
# ---------------------------------------------------------------------------

class TestSamplingProfiler:
    def test_samples_land_in_the_active_phase(self):
        profiler = PhaseProfiler(metrics=MetricsRegistry())
        sampler = SamplingProfiler(interval=0.001)
        with sampler, profiler.profile():
            with profile_phase("join"):
                _spin(0.05)
        assert sampler.samples >= 1
        assert sampler.counts.get("join", 0) > 0
        dist = sampler.distribution()
        assert sum(dist.values()) == pytest.approx(1.0)
        # Nearly all CPU burned inside the join phase.
        assert dist["join"] > 0.5

    def test_stop_disarms_the_timer(self):
        sampler = SamplingProfiler(interval=0.001)
        sampler.start()
        sampler.stop()
        before = sampler.samples
        _spin(0.02)
        assert sampler.samples == before
        sampler.stop()  # idempotent

    def test_rejects_non_main_thread(self):
        errors = []

        def worker():
            try:
                SamplingProfiler().start()
            except RuntimeError as exc:
                errors.append(exc)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert len(errors) == 1
        assert "main thread" in str(errors[0])

    def test_empty_distribution_without_samples(self):
        assert SamplingProfiler().distribution() == {}
