"""The format-v4 codec generation: FOR, varint columns, the adaptive
selector, and the vectorization crossover knob.

Every decoder ships a scalar reference path (``vectorized=False``);
the vectorized kernels must match it bit-for-bit on every shape the
encoder can produce -- empty columns, width-0 blocks, ragged final
blocks, and values past 2^32.
"""

import os

import numpy as np
import pytest

from repro.index.compression import (DEFAULT_BLOCK_SIZE, SCHEME_IDS,
                                     SCHEME_NAMES, V4_CODECS,
                                     VECTORIZED_MIN_BYTES, choose_codec,
                                     decode_for, decode_varint_column,
                                     decompress_column, encode_for,
                                     encode_varint_column,
                                     vectorized_min_bytes)


def roundtrip_for(values, block_size=DEFAULT_BLOCK_SIZE):
    blob = encode_for(np.asarray(values, dtype=np.int64),
                      block_size=block_size)
    vec = decode_for(blob, vectorized=True)
    ref = decode_for(blob, vectorized=False)
    np.testing.assert_array_equal(vec, ref)
    np.testing.assert_array_equal(vec,
                                  np.asarray(values, dtype=np.int64))
    return blob


class TestForCodec:
    def test_empty_column(self):
        blob = encode_for(np.empty(0, dtype=np.int64))
        assert decode_for(blob, vectorized=True).size == 0
        assert decode_for(blob, vectorized=False).size == 0

    def test_single_value_is_width_zero(self):
        """One value per block means delta 0 everywhere: the block
        payload is empty and the value rides entirely in the base."""
        blob = roundtrip_for([42])
        # header (8) + one base (8) + one width byte (1), no payload
        assert len(blob) == 17

    def test_constant_column_is_width_zero(self):
        values = [7] * 1000
        blob = roundtrip_for(values)
        n_blocks = -(-1000 // DEFAULT_BLOCK_SIZE)
        assert len(blob) == 8 + 8 * n_blocks + n_blocks

    def test_values_past_2_to_32(self):
        roundtrip_for([2**32, 2**32 + 1, 2**40, 2**40 + 1000])
        roundtrip_for([2**62, 2**62 + (1 << 35), 2**62 + 1])

    def test_mixed_width_blocks(self):
        rng = np.random.default_rng(3)
        narrow = rng.integers(0, 16, size=300)
        wide = rng.integers(2**33, 2**34, size=300)
        roundtrip_for(np.concatenate([narrow, wide]))

    def test_ragged_final_block(self):
        for block_size in (1, 3, 7, 128, 129):
            rng = np.random.default_rng(block_size)
            values = rng.integers(0, 2**20, size=block_size * 2 + 1)
            roundtrip_for(values, block_size=block_size)

    @pytest.mark.parametrize("bits", [1, 8, 25, 26, 57, 58, 63])
    def test_width_tier_boundaries(self, bits):
        """Widths straddling the uint32/uint64/tail decode tiers."""
        rng = np.random.default_rng(bits)
        values = rng.integers(0, 2**bits, size=500, dtype=np.uint64)
        roundtrip_for(values.astype(np.int64) & np.int64(2**62))
        roundtrip_for((values >> np.uint64(1)).astype(np.int64))

    def test_truncated_blob_is_value_error(self):
        blob = encode_for(np.arange(1000, dtype=np.int64))
        for cut in (2, 7, len(blob) // 2, len(blob) - 1):
            with pytest.raises(ValueError):
                decode_for(blob[:cut], vectorized=True)
            with pytest.raises(ValueError):
                decode_for(blob[:cut], vectorized=False)

    def test_fuzz_parity(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            size = int(rng.integers(0, 3000))
            hi = int(rng.choice([2**8, 2**20, 2**34, 2**62]))
            values = rng.integers(0, hi, size=size)
            roundtrip_for(values)


class TestVarintColumn:
    def test_empty(self):
        blob = encode_varint_column(np.empty(0, dtype=np.int64))
        assert decode_varint_column(blob).size == 0

    def test_parity_and_large_values(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 2**40, size=2000)
        blob = encode_varint_column(values)
        vec = decode_varint_column(blob, vectorized=True)
        ref = decode_varint_column(blob, vectorized=False)
        np.testing.assert_array_equal(vec, ref)
        np.testing.assert_array_equal(vec, values)

    def test_truncated_is_value_error(self):
        blob = encode_varint_column(np.arange(100, dtype=np.int64))
        with pytest.raises(ValueError):
            decode_varint_column(blob[: len(blob) // 2])


class TestChooseCodec:
    def test_registry_is_bijective(self):
        assert set(SCHEME_IDS.values()) == set(SCHEME_NAMES.keys())
        for name, scheme_id in SCHEME_IDS.items():
            assert SCHEME_NAMES[scheme_id] == name
        assert set(V4_CODECS) == set(SCHEME_IDS)

    def test_picks_smallest(self):
        rng = np.random.default_rng(9)
        for values in (np.zeros(500, dtype=np.int64),
                       np.sort(rng.integers(0, 10**6, size=500)),
                       rng.integers(2**40, 2**40 + 100, size=500),
                       np.arange(5, dtype=np.int64)):
            scheme, payload = choose_codec(values)
            for candidate in V4_CODECS:
                try:
                    _s, other = choose_codec(values, codecs=(candidate,))
                except ValueError:
                    continue   # candidate cannot encode this column
                assert len(payload) <= len(other)
            decoded = decompress_column(scheme, payload)
            np.testing.assert_array_equal(decoded, values)

    def test_constant_column_prefers_rle(self):
        scheme, _ = choose_codec(np.full(10_000, 123, dtype=np.int64))
        assert scheme == "rle"

    def test_unknown_codec_is_value_error(self):
        with pytest.raises(ValueError):
            choose_codec(np.arange(4, dtype=np.int64),
                         codecs=("snappy",))

    def test_every_choice_decodes_scalar_and_vectorized(self):
        rng = np.random.default_rng(21)
        values = np.sort(rng.integers(0, 2**34, size=777))
        scheme, payload = choose_codec(values)
        np.testing.assert_array_equal(
            decompress_column(scheme, payload, vectorized=True),
            decompress_column(scheme, payload, vectorized=False))


class TestVectorizedCrossover:
    def test_default_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTORIZED_MIN_BYTES", raising=False)
        assert vectorized_min_bytes() == VECTORIZED_MIN_BYTES

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZED_MIN_BYTES", "7")
        assert vectorized_min_bytes() == 7

    def test_malformed_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZED_MIN_BYTES", "lots")
        with pytest.raises(ValueError):
            vectorized_min_bytes()

    def test_crossover_controls_dispatch(self, monkeypatch):
        """Below the threshold the scalar decoder runs even with
        vectorized=True; identical output either way, so the knob is
        purely a performance trade."""
        values = np.arange(64, dtype=np.int64)
        scheme, payload = choose_codec(values)
        assert len(payload) < 256

        calls = {}
        import repro.index.compression as comp

        real = comp._DECODERS[scheme]

        def spy(data, vectorized=True):
            calls["vectorized"] = vectorized
            return real(data, vectorized=vectorized)

        monkeypatch.setitem(comp._DECODERS, scheme, spy)
        monkeypatch.setenv("REPRO_VECTORIZED_MIN_BYTES",
                           str(len(payload) + 1))
        out_small = decompress_column(scheme, payload, vectorized=True)
        assert calls["vectorized"] is False
        monkeypatch.setenv("REPRO_VECTORIZED_MIN_BYTES", "0")
        out_vec = decompress_column(scheme, payload, vectorized=True)
        assert calls["vectorized"] is True
        np.testing.assert_array_equal(out_small, out_vec)

    def test_min_bytes_keyword_beats_env(self, monkeypatch):
        values = np.arange(64, dtype=np.int64)
        scheme, payload = choose_codec(values)

        calls = {}
        import repro.index.compression as comp

        real = comp._DECODERS[scheme]

        def spy(data, vectorized=True):
            calls["vectorized"] = vectorized
            return real(data, vectorized=vectorized)

        monkeypatch.setitem(comp._DECODERS, scheme, spy)
        monkeypatch.setenv("REPRO_VECTORIZED_MIN_BYTES", "1000000")
        decompress_column(scheme, payload, vectorized=True, min_bytes=0)
        assert calls["vectorized"] is True
