"""Tests for the RDIL baseline and the hybrid plan (sections II-C, V-D)."""

import pytest

from repro.algorithms.base import sort_by_score
from repro.algorithms.hybrid import HybridTopKSearch
from repro.algorithms.oracle import SemanticsOracle
from repro.algorithms.rdil import RDILSearch


def reference_topk(db, terms, k, semantics="elca"):
    oracle = SemanticsOracle(db.tree, db.inverted_index)
    return sort_by_score(oracle.evaluate(terms, semantics))[:k]


class TestRDILCorrectness:
    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    @pytest.mark.parametrize("terms", [
        ["alpha", "beta"], ["cx", "cy"], ["alpha", "beta", "gamma"],
        ["rare", "gamma"],
    ])
    def test_matches_reference(self, corpus_db, semantics, terms):
        expected = reference_topk(corpus_db, terms, 10, semantics)
        got = RDILSearch(corpus_db.inverted_index).search(terms, 10,
                                                          semantics)
        assert [round(r.score, 9) for r in got] == \
            [round(r.score, 9) for r in expected]

    def test_small_document(self, small_db):
        expected = reference_topk(small_db, ["xml", "data"], 3)
        got = RDILSearch(small_db.inverted_index).search(["xml", "data"], 3)
        assert [round(r.score, 9) for r in got] == \
            [round(r.score, 9) for r in expected]

    def test_k_zero(self, small_db):
        assert len(RDILSearch(small_db.inverted_index).search(["xml"],
                                                              0)) == 0

    def test_unknown_keyword(self, small_db):
        got = RDILSearch(small_db.inverted_index).search(["xml", "zzz"], 5)
        assert len(got) == 0

    def test_invalid_semantics(self, small_db):
        with pytest.raises(ValueError):
            RDILSearch(small_db.inverted_index).search(["xml"], 5, "nope")


class TestRDILCharacteristics:
    def test_scan_bounded_by_shortest_list(self, corpus_db):
        """RDIL stops once any list dries (paper section V-C)."""
        inv = corpus_db.inverted_index
        result = RDILSearch(inv).search(["rare", "gamma"], 1000)
        k = 2
        shortest = inv.document_frequency("rare")
        assert result.stats.tuples_scanned <= k * shortest + k

    def test_verification_lookups_counted(self, corpus_db):
        result = RDILSearch(corpus_db.inverted_index).search(
            ["alpha", "beta"], 5)
        assert result.stats.lookups > 0
        assert result.stats.candidates_checked > 0


class TestHybridCorrectness:
    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    @pytest.mark.parametrize("terms", [
        ["alpha", "beta"], ["cx", "cy"], ["c3a", "c3b", "c3c"],
        ["rare", "gamma"],
    ])
    def test_matches_reference(self, corpus_db, semantics, terms):
        expected = reference_topk(corpus_db, terms, 10, semantics)
        got = HybridTopKSearch(corpus_db.columnar_index).search(
            terms, 10, semantics)
        assert [round(r.score, 9) for r in got] == \
            [round(r.score, 9) for r in expected]

    def test_plan_trace_recorded(self, corpus_db):
        engine = HybridTopKSearch(corpus_db.columnar_index)
        engine.search(["alpha", "beta"], 5)
        assert engine.plan_trace
        assert set(engine.plan_trace) <= {"topk", "eager"}

    def test_low_cardinality_prefers_eager(self, corpus_db):
        """Scarce results -> the estimator should avoid the rank-join."""
        engine = HybridTopKSearch(corpus_db.columnar_index,
                                  switch_factor=4.0)
        engine.search(["rare", "gamma"], 10)
        assert "eager" in engine.plan_trace

    def test_switch_factor_extremes(self, corpus_db):
        always_eager = HybridTopKSearch(corpus_db.columnar_index,
                                        switch_factor=float("inf"))
        always_topk = HybridTopKSearch(corpus_db.columnar_index,
                                       switch_factor=0.0)
        expected = reference_topk(corpus_db, ["cx", "cy"], 5)
        for engine in (always_eager, always_topk):
            got = engine.search(["cx", "cy"], 5)
            assert [round(r.score, 9) for r in got] == \
                [round(r.score, 9) for r in expected]
        assert set(always_eager.plan_trace) == {"eager"}
        assert set(always_topk.plan_trace) == {"topk"}

    def test_k_zero(self, small_db):
        engine = HybridTopKSearch(small_db.columnar_index)
        assert len(engine.search(["xml"], 0)) == 0
