"""Tests for directory persistence (`repro.diskdb`)."""

import json
import os

import pytest

from repro import XMLDatabase
from repro.diskdb import (DatabaseFormatError, load_database,
                          save_database)
from repro.scoring.ranking import DampingFunction, RankingModel


@pytest.fixture
def saved(tmp_path, small_db):
    path = str(tmp_path / "db")
    small_db.save(path)
    return path, small_db


class TestRoundtrip:
    def test_files_written(self, saved):
        path, _ = saved
        for name in ("document.xml", "meta.json", "columnar.bin",
                     "dewey.bin"):
            assert os.path.exists(os.path.join(path, name))

    def test_search_results_identical(self, saved):
        path, original = saved
        loaded = XMLDatabase.open(path)
        for semantics in ("elca", "slca"):
            for algorithm in ("join", "stack", "index"):
                a = original.search("xml data", semantics=semantics,
                                    algorithm=algorithm)
                b = loaded.search("xml data", semantics=semantics,
                                  algorithm=algorithm)
                assert [(r.node.dewey, round(r.score, 12)) for r in a] == \
                    [(r.node.dewey, round(r.score, 12)) for r in b]

    def test_topk_identical(self, saved):
        path, original = saved
        loaded = load_database(path)
        for algorithm in ("topk-join", "rdil", "hybrid"):
            a = original.search_topk("xml data", 3, algorithm=algorithm)
            b = loaded.search_topk("xml data", 3, algorithm=algorithm)
            assert [round(r.score, 12) for r in a] == \
                [round(r.score, 12) for r in b]

    def test_no_retokenization_on_open(self, saved, monkeypatch):
        path, _ = saved
        from repro.index.tokenizer import Tokenizer

        def boom(self, text):
            raise AssertionError("tokenizer ran during load")

        monkeypatch.setattr(Tokenizer, "term_frequencies", boom)
        loaded = load_database(path)
        assert loaded.document_frequency("xml") > 0

    def test_document_frequency_preserved(self, saved):
        path, original = saved
        loaded = load_database(path)
        for term in ("xml", "data", "keyword"):
            assert loaded.document_frequency(term) == \
                original.document_frequency(term)

    def test_metadata_contents(self, saved):
        path, original = saved
        with open(os.path.join(path, "meta.json")) as f:
            meta = json.load(f)
        assert meta["format_version"] == 1
        assert meta["n_nodes"] == len(original.tree)
        assert meta["damping_base"] == pytest.approx(0.9)

    def test_custom_damping_restored(self, tmp_path):
        db = XMLDatabase.from_xml_text(
            "<a><b>xml data</b><c>xml</c></a>",
            ranking=RankingModel(damping=DampingFunction(0.5)))
        path = str(tmp_path / "db")
        db.save(path)
        loaded = load_database(path)
        assert loaded.ranking.damping.base == pytest.approx(0.5)

    def test_explicit_ranking_wins(self, saved):
        path, _ = saved
        custom = RankingModel(damping=DampingFunction(0.5))
        loaded = load_database(path, ranking=custom)
        assert loaded.ranking is custom

    def test_generated_corpus_roundtrip(self, tmp_path, dblp_db):
        path = str(tmp_path / "dblp")
        save_database(dblp_db, path)
        loaded = load_database(path)
        a = dblp_db.search(["alpha", "beta"])
        b = loaded.search(["alpha", "beta"])
        assert [(r.node.dewey, round(r.score, 12)) for r in a] == \
            [(r.node.dewey, round(r.score, 12)) for r in b]

    def test_save_overwrites(self, saved):
        path, original = saved
        original.save(path)  # no error, still loadable
        assert load_database(path).document_frequency("xml") > 0


class TestFailureModes:
    def test_missing_meta(self, tmp_path):
        with pytest.raises(DatabaseFormatError):
            load_database(str(tmp_path))

    def test_version_mismatch(self, saved):
        path, _ = saved
        meta_path = os.path.join(path, "meta.json")
        with open(meta_path) as f:
            meta = json.load(f)
        meta["format_version"] = 99
        with open(meta_path, "w") as f:
            json.dump(meta, f)
        with pytest.raises(DatabaseFormatError):
            load_database(path)

    def test_edited_document_detected(self, saved):
        path, _ = saved
        doc_path = os.path.join(path, "document.xml")
        with open(doc_path) as f:
            text = f.read()
        # Remove an element: node counts diverge from the metadata.
        text = text.replace("<title>XML basics</title>", "")
        with open(doc_path, "w") as f:
            f.write(text)
        with pytest.raises(DatabaseFormatError):
            load_database(path)

    def test_truncated_columnar_blob(self, saved):
        path, _ = saved
        blob_path = os.path.join(path, "columnar.bin")
        with open(blob_path, "rb") as f:
            blob = f.read()
        with open(blob_path, "wb") as f:
            f.write(blob[: len(blob) // 2])
        with pytest.raises(Exception):
            load_database(path)

    def test_corrupt_magic(self, saved):
        path, _ = saved
        blob_path = os.path.join(path, "dewey.bin")
        with open(blob_path, "r+b") as f:
            f.write(b"XXXX")
        with pytest.raises(ValueError):
            load_database(path)
