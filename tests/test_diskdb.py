"""Tests for directory persistence (`repro.diskdb`)."""

import json
import os

import pytest

from repro import XMLDatabase
from repro.diskdb import (DatabaseFormatError, load_database,
                          save_database)
from repro.scoring.ranking import DampingFunction, RankingModel


@pytest.fixture
def saved(tmp_path, small_db):
    path = str(tmp_path / "db")
    small_db.save(path)
    return path, small_db


class TestRoundtrip:
    def test_files_written(self, saved):
        path, _ = saved
        for name in ("document.xml", "meta.json", "columnar.bin",
                     "dewey.bin"):
            assert os.path.exists(os.path.join(path, name))

    def test_search_results_identical(self, saved):
        path, original = saved
        loaded = XMLDatabase.open(path)
        for semantics in ("elca", "slca"):
            for algorithm in ("join", "stack", "index"):
                a = original.search("xml data", semantics=semantics,
                                    algorithm=algorithm)
                b = loaded.search("xml data", semantics=semantics,
                                  algorithm=algorithm)
                assert [(r.node.dewey, round(r.score, 12)) for r in a] == \
                    [(r.node.dewey, round(r.score, 12)) for r in b]

    def test_topk_identical(self, saved):
        path, original = saved
        loaded = load_database(path)
        for algorithm in ("topk-join", "rdil", "hybrid"):
            a = original.search_topk("xml data", 3, algorithm=algorithm)
            b = loaded.search_topk("xml data", 3, algorithm=algorithm)
            assert [round(r.score, 12) for r in a] == \
                [round(r.score, 12) for r in b]

    def test_no_retokenization_on_open(self, saved, monkeypatch):
        path, _ = saved
        from repro.index.tokenizer import Tokenizer

        def boom(self, text):
            raise AssertionError("tokenizer ran during load")

        monkeypatch.setattr(Tokenizer, "term_frequencies", boom)
        loaded = load_database(path)
        assert loaded.document_frequency("xml") > 0

    def test_document_frequency_preserved(self, saved):
        path, original = saved
        loaded = load_database(path)
        for term in ("xml", "data", "keyword"):
            assert loaded.document_frequency(term) == \
                original.document_frequency(term)

    def test_metadata_contents(self, saved):
        path, original = saved
        with open(os.path.join(path, "meta.json")) as f:
            meta = json.load(f)
        assert meta["format_version"] == 2
        assert meta["n_nodes"] == len(original.tree)
        assert meta["damping_base"] == pytest.approx(0.9)
        manifest = meta["checksum"]
        assert manifest["algorithm"] in ("crc32", "crc32c")
        for name in ("document.xml", "columnar.bin", "dewey.bin"):
            blob = open(os.path.join(path, name), "rb").read()
            from repro.reliability.checksum import hex_digest
            assert manifest["files"][name] == hex_digest(
                blob, manifest["algorithm"])

    def test_custom_damping_restored(self, tmp_path):
        db = XMLDatabase.from_xml_text(
            "<a><b>xml data</b><c>xml</c></a>",
            ranking=RankingModel(damping=DampingFunction(0.5)))
        path = str(tmp_path / "db")
        db.save(path)
        loaded = load_database(path)
        assert loaded.ranking.damping.base == pytest.approx(0.5)

    def test_explicit_ranking_wins(self, saved):
        path, _ = saved
        custom = RankingModel(damping=DampingFunction(0.5))
        loaded = load_database(path, ranking=custom)
        assert loaded.ranking is custom

    def test_generated_corpus_roundtrip(self, tmp_path, dblp_db):
        path = str(tmp_path / "dblp")
        save_database(dblp_db, path)
        loaded = load_database(path)
        a = dblp_db.search(["alpha", "beta"])
        b = loaded.search(["alpha", "beta"])
        assert [(r.node.dewey, round(r.score, 12)) for r in a] == \
            [(r.node.dewey, round(r.score, 12)) for r in b]

    def test_save_overwrites(self, saved):
        path, original = saved
        original.save(path)  # no error, still loadable
        assert load_database(path).document_frequency("xml") > 0


class TestFailureModes:
    def test_missing_meta(self, tmp_path):
        with pytest.raises(DatabaseFormatError):
            load_database(str(tmp_path))

    def test_version_mismatch(self, saved):
        path, _ = saved
        meta_path = os.path.join(path, "meta.json")
        with open(meta_path) as f:
            meta = json.load(f)
        meta["format_version"] = 99
        with open(meta_path, "w") as f:
            json.dump(meta, f)
        with pytest.raises(DatabaseFormatError):
            load_database(path)

    def test_edited_document_detected(self, saved):
        path, _ = saved
        doc_path = os.path.join(path, "document.xml")
        with open(doc_path) as f:
            text = f.read()
        # Remove an element: node counts diverge from the metadata.
        text = text.replace("<title>XML basics</title>", "")
        with open(doc_path, "w") as f:
            f.write(text)
        with pytest.raises(DatabaseFormatError):
            load_database(path)

    def test_truncated_columnar_blob(self, saved):
        path, _ = saved
        blob_path = os.path.join(path, "columnar.bin")
        with open(blob_path, "rb") as f:
            blob = f.read()
        with open(blob_path, "wb") as f:
            f.write(blob[: len(blob) // 2])
        with pytest.raises(Exception):
            load_database(path)

    def test_corrupt_magic(self, saved):
        path, _ = saved
        blob_path = os.path.join(path, "dewey.bin")
        with open(blob_path, "r+b") as f:
            f.write(b"XXXX")
        with pytest.raises(ValueError):
            load_database(path)


class _Crash(RuntimeError):
    """Stands in for the process dying mid-save."""


def _crash_at(stage):
    def hook(s):
        if s == stage:
            raise _Crash(stage)
    return hook


class TestAtomicSave:
    """Kill the save at each commit stage; the directory must either
    still load as the old database or fail loudly with a typed error --
    never load as a silent mixture."""

    NEW_XML = "<lib><entry>freshly saved corpus</entry></lib>"

    @pytest.mark.parametrize("stage", ["tmp-written", "data-replaced"])
    def test_fresh_dir_crash_before_manifest(self, tmp_path, small_db,
                                             monkeypatch, stage):
        import repro.diskdb as diskdb

        monkeypatch.setattr(diskdb, "_fault_hook", _crash_at(stage))
        path = str(tmp_path / "db")
        with pytest.raises(_Crash):
            save_database(small_db, path)
        # No manifest landed, so the directory is not (yet) a database.
        with pytest.raises(DatabaseFormatError):
            load_database(path)
        # The staging directory never survives, even on a crash.
        assert not [name for name in os.listdir(tmp_path)
                    if ".tmp-" in name]

    def test_fresh_dir_crash_after_manifest(self, tmp_path, small_db,
                                            monkeypatch):
        import repro.diskdb as diskdb

        monkeypatch.setattr(diskdb, "_fault_hook",
                            _crash_at("meta-replaced"))
        path = str(tmp_path / "db")
        with pytest.raises(_Crash):
            save_database(small_db, path)
        # The manifest's arrival is the commit point: the save took.
        assert load_database(path).document_frequency("xml") > 0

    def test_overwrite_crash_keeps_old_database(self, tmp_path, small_db,
                                                monkeypatch):
        import repro.diskdb as diskdb

        path = str(tmp_path / "db")
        small_db.save(path)
        new_db = XMLDatabase.from_xml_text(self.NEW_XML)
        monkeypatch.setattr(diskdb, "_fault_hook",
                            _crash_at("tmp-written"))
        with pytest.raises(_Crash):
            save_database(new_db, path)
        loaded = load_database(path)
        assert loaded.document_frequency("xml") == \
            small_db.document_frequency("xml")
        assert loaded.document_frequency("freshly") == 0

    def test_overwrite_crash_between_data_and_manifest_is_detected(
            self, tmp_path, small_db, monkeypatch):
        import repro.diskdb as diskdb
        from repro.reliability import DatabaseCorruptError

        path = str(tmp_path / "db")
        small_db.save(path)
        new_db = XMLDatabase.from_xml_text(self.NEW_XML)
        monkeypatch.setattr(diskdb, "_fault_hook",
                            _crash_at("data-replaced"))
        with pytest.raises(_Crash):
            save_database(new_db, path)
        # New data files under the old manifest: the stale digests
        # disagree, so the mixture is rejected, not absorbed.
        with pytest.raises(DatabaseCorruptError):
            load_database(path)

    def test_overwrite_crash_after_manifest_is_new_database(
            self, tmp_path, small_db, monkeypatch):
        import repro.diskdb as diskdb

        path = str(tmp_path / "db")
        small_db.save(path)
        new_db = XMLDatabase.from_xml_text(self.NEW_XML)
        monkeypatch.setattr(diskdb, "_fault_hook",
                            _crash_at("meta-replaced"))
        with pytest.raises(_Crash):
            save_database(new_db, path)
        assert load_database(path).document_frequency("freshly") > 0


class TestLazyAndVerifyModes:
    def test_lazy_load_matches_eager(self, saved):
        path, original = saved
        lazy = load_database(path, lazy=True, verify="lazy")
        a = original.search("xml data")
        b = lazy.search("xml data")
        assert [(r.node.dewey, round(r.score, 12)) for r in a] == \
            [(r.node.dewey, round(r.score, 12)) for r in b]

    def test_verify_off_loads(self, saved):
        path, _ = saved
        assert load_database(path, verify="off").search("xml data")

    def test_unknown_verify_mode_rejected(self, saved):
        path, _ = saved
        with pytest.raises(ValueError, match="verify"):
            load_database(path, verify="paranoid")


class TestLegacyV1:
    def _write_v1(self, db, path):
        from repro.index import storage

        os.makedirs(path, exist_ok=True)
        blobs = {
            "document.xml": db.tree.to_xml().encode("utf-8"),
            "columnar.bin": storage.serialize_columnar_index(
                db.columnar_index, score_mode=storage.SCORES_EXACT),
            "dewey.bin": storage.serialize_inverted_index(
                db.inverted_index, score_mode=storage.SCORES_EXACT),
        }
        meta = {
            "format_version": 1,
            "jdewey_gap": db.encoder.gap,
            "n_docs": db.inverted_index.n_docs,
            "damping_base": db.ranking.damping.base,
            "tokenizer": {
                "stopwords": sorted(db.tokenizer.stopwords),
                "min_length": db.tokenizer.min_length,
            },
            "n_nodes": len(db.tree),
        }
        for name, blob in blobs.items():
            with open(os.path.join(path, name), "wb") as fh:
                fh.write(blob)
        with open(os.path.join(path, "meta.json"), "w") as fh:
            json.dump(meta, fh)

    def test_v1_directory_still_loads(self, tmp_path, small_db):
        path = str(tmp_path / "v1db")
        self._write_v1(small_db, path)
        loaded = load_database(path)
        a = small_db.search("xml data")
        b = loaded.search("xml data")
        assert [(r.node.dewey, round(r.score, 12)) for r in a] == \
            [(r.node.dewey, round(r.score, 12)) for r in b]

    def test_v1_corruption_still_typed(self, tmp_path, small_db):
        from repro.reliability import DatabaseCorruptError

        path = str(tmp_path / "v1db")
        self._write_v1(small_db, path)
        blob_path = os.path.join(path, "columnar.bin")
        with open(blob_path, "rb") as fh:
            blob = fh.read()
        with open(blob_path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        # No digests in v1 -- the guarded parser is the only net.
        with pytest.raises(DatabaseFormatError):
            load_database(path)
