"""Fault-injected disk I/O: injector determinism, retry healing, and
the end-to-end guarantee that a database loaded through a faulty disk
either answers *identically* to a clean load or fails with a typed
error -- never in between.

The suite honors ``REPRO_FAULT_SEED`` (the CI reliability job runs it
under two seeds) so the probabilistic paths get fresh coverage without
giving up reproducibility: a failure always reports the seed to replay.
"""

import io
import os

import pytest

from repro import XMLDatabase
from repro.diskdb import load_database, save_database
from repro.obs import MetricsRegistry
from repro.reliability import (DatabaseCorruptError, DatabaseFormatError,
                               FaultInjector,
                               InjectedFault, RetryExhaustedError,
                               RetryPolicy)
from repro.reliability.faults import (BIT_FLIP, IO_ERROR, LATENCY,
                                      SHORT_READ)
from repro.reliability.io import read_bytes
from tests.conftest import SMALL_XML

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

QUERIES = ["xml data", "keyword search", "data models", "xml",
           "relational data", "top data", "search processing",
           "keyword data xml", "title", "abstract"]


@pytest.fixture(scope="module")
def db_dir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("faults") / "db")
    db = XMLDatabase.from_xml_text(SMALL_XML)
    db.columnar_index
    db.inverted_index
    save_database(db, path)
    return path


def _answers(db):
    """A comparable transcript of 50 queries (5 passes over 10)."""
    out = []
    for _pass in range(5):
        for query in QUERIES:
            results = db.search(query, use_cache=False)
            out.append([(r.node.dewey, round(r.score, 12))
                        for r in results])
    return out


# ---------------------------------------------------------------------------
# FaultInjector unit behavior
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_same_seed_same_fault_sequence(self):
        a = FaultInjector(error_rate=0.3, short_read_rate=0.1, seed=SEED)
        b = FaultInjector(error_rate=0.3, short_read_rate=0.1, seed=SEED)
        assert [a.next_fault() for _ in range(200)] == \
            [b.next_fault() for _ in range(200)]

    def test_reset_rewinds(self):
        inj = FaultInjector(error_rate=0.5, seed=SEED)
        first = [inj.next_fault() for _ in range(50)]
        inj.reset()
        assert [inj.next_fault() for _ in range(50)] == first
        assert sum(inj.injected.values()) == first.count(IO_ERROR)

    def test_script_overrides_rates(self):
        inj = FaultInjector(error_rate=1.0,
                            script=[None, IO_ERROR, SHORT_READ])
        assert inj.next_fault() is None
        assert inj.next_fault() == IO_ERROR
        assert inj.next_fault() == SHORT_READ
        assert inj.next_fault() is None  # exhausted-then-clean
        assert inj.injected[IO_ERROR] == 1
        assert inj.injected[SHORT_READ] == 1

    def test_unknown_scripted_fault_rejected(self):
        inj = FaultInjector(script=["disk-on-fire"])
        with pytest.raises(ValueError, match="disk-on-fire"):
            inj.next_fault()

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="error_rate"):
            FaultInjector(error_rate=1.5)

    def test_wrapped_file_io_error(self):
        inj = FaultInjector(script=[IO_ERROR])
        with inj.wrap(io.BytesIO(b"hello"), "x.bin") as fh:
            with pytest.raises(InjectedFault) as err:
                fh.read()
        assert err.value.kind == IO_ERROR
        assert err.value.path == "x.bin"
        assert isinstance(err.value, IOError)

    def test_wrapped_file_short_read_forces_eof(self):
        inj = FaultInjector(script=[SHORT_READ])
        fh = inj.wrap(io.BytesIO(b"0123456789"), "x.bin")
        chunk = fh.read(10)
        assert 0 < len(chunk) < 10
        assert fh.read(10) == b""  # premature EOF, not a resync

    def test_wrapped_file_bit_flip(self):
        inj = FaultInjector(script=[BIT_FLIP], seed=SEED)
        fh = inj.wrap(io.BytesIO(b"\x00" * 32), "x.bin")
        data = fh.read()
        assert len(data) == 32
        assert sum(bin(b).count("1") for b in data) == 1

    def test_latency_uses_injected_sleep(self):
        sleeps = []
        inj = FaultInjector(script=[LATENCY], latency_ms=25.0,
                            sleep=sleeps.append)
        fh = inj.wrap(io.BytesIO(b"abc"), "x.bin")
        assert fh.read() == b"abc"
        assert sleeps == [0.025]

    def test_metrics_published(self):
        registry = MetricsRegistry()
        inj = FaultInjector(script=[IO_ERROR, BIT_FLIP], metrics=registry)
        fh = inj.wrap(io.BytesIO(b"abc"), "x.bin")
        with pytest.raises(InjectedFault):
            fh.read()
        assert registry.counter("repro_injected_faults_total",
                                {"kind": IO_ERROR}).value == 1


# ---------------------------------------------------------------------------
# RetryPolicy unit behavior
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_transient_fault_heals(self):
        registry = MetricsRegistry()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise InjectedFault("boom", kind=IO_ERROR, path="x")
            return "ok"

        policy = RetryPolicy(max_attempts=3, sleep=lambda _s: None)
        assert policy.call(flaky, metrics=registry, op="test") == "ok"
        assert registry.counter("repro_io_attempts_total",
                                {"op": "test"}).value == 3
        assert registry.counter("repro_io_retries_total",
                                {"op": "test"}).value == 2
        assert registry.counter("repro_io_recovered_total",
                                {"op": "test"}).value == 1

    def test_exhaustion_raises_typed_with_cause(self):
        registry = MetricsRegistry()

        def always():
            raise InjectedFault("boom", kind=IO_ERROR, path="x")

        policy = RetryPolicy(max_attempts=2, sleep=lambda _s: None)
        with pytest.raises(RetryExhaustedError) as err:
            policy.call(always, metrics=registry, op="test")
        assert err.value.attempts == 2
        assert isinstance(err.value.__cause__, InjectedFault)
        assert registry.counter("repro_io_retry_exhausted_total",
                                {"op": "test"}).value == 1

    def test_missing_file_is_permanent(self):
        calls = {"n": 0}

        def missing():
            calls["n"] += 1
            raise FileNotFoundError("gone")

        policy = RetryPolicy(max_attempts=5, sleep=lambda _s: None)
        with pytest.raises(FileNotFoundError):
            policy.call(missing)
        assert calls["n"] == 1

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_ms=10.0, multiplier=2.0, jitter=0.0)
        assert policy.delay_ms(1) == 10.0
        assert policy.delay_ms(2) == 20.0
        assert policy.delay_ms(3) == 40.0

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


# ---------------------------------------------------------------------------
# read_bytes through faults
# ---------------------------------------------------------------------------


class TestFaultyReadBytes:
    def test_transient_error_heals(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"payload" * 100)
        inj = FaultInjector(script=[IO_ERROR])
        policy = RetryPolicy(sleep=lambda _s: None)
        assert read_bytes(str(path), injector=inj,
                          retry=policy) == b"payload" * 100

    def test_unretried_injector_surfaces_raw_fault(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"payload")
        inj = FaultInjector(script=[IO_ERROR])
        with pytest.raises(InjectedFault):
            read_bytes(str(path), injector=inj)


# ---------------------------------------------------------------------------
# End-to-end: load_database through a faulty disk
# ---------------------------------------------------------------------------


class TestFaultyLoads:
    def test_transient_faults_yield_identical_answers(self, db_dir):
        clean = load_database(db_dir)
        expected = _answers(clean)
        inj = FaultInjector(error_rate=0.2, latency_rate=0.1,
                            latency_ms=0.0, seed=SEED)
        policy = RetryPolicy(max_attempts=6, sleep=lambda _s: None,
                             seed=SEED)
        faulty = load_database(db_dir, injector=inj, retry=policy)
        assert _answers(faulty) == expected, (
            f"faulty-disk load diverged from clean load "
            f"(REPRO_FAULT_SEED={SEED})")

    def test_default_policy_installed_with_injector(self, db_dir):
        # retry=None + injector set must not surface transient faults.
        inj = FaultInjector(script=[IO_ERROR], sleep=lambda _s: None)
        db = load_database(db_dir, injector=inj)
        assert db.search("xml data")
        assert inj.injected[IO_ERROR] == 1

    def test_permanent_fault_is_typed(self, db_dir):
        inj = FaultInjector(error_rate=1.0, seed=SEED)
        policy = RetryPolicy(max_attempts=3, sleep=lambda _s: None)
        with pytest.raises(DatabaseCorruptError) as err:
            load_database(db_dir, injector=inj, retry=policy)
        assert isinstance(err.value.__cause__, RetryExhaustedError)

    def test_short_reads_are_typed(self, db_dir):
        # A truncated meta.json raises the parent DatabaseFormatError;
        # a truncated data file fails its digest (DatabaseCorruptError,
        # the subclass).  Either way: typed, never silent.
        inj = FaultInjector(short_read_rate=1.0, seed=SEED)
        policy = RetryPolicy(max_attempts=2, sleep=lambda _s: None)
        with pytest.raises(DatabaseFormatError):
            load_database(db_dir, injector=inj, retry=policy)

    def test_bit_flips_are_typed(self, db_dir):
        inj = FaultInjector(bit_flip_rate=1.0, seed=SEED)
        policy = RetryPolicy(max_attempts=2, sleep=lambda _s: None)
        with pytest.raises(DatabaseFormatError):
            load_database(db_dir, injector=inj, retry=policy)
