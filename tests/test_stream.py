"""Tests for the progressive (streaming) top-K API."""

import itertools

import pytest

from repro.algorithms.base import ExecutionStats, sort_by_score
from repro.algorithms.topk_keyword import TopKKeywordSearch


class TestStreamCorrectness:
    def test_full_stream_equals_ranked_complete_set(self, corpus_db):
        for terms in (["alpha", "beta"], ["cx", "cy"], ["rare", "gamma"]):
            streamed = list(corpus_db.search_stream(terms))
            ranked = corpus_db.search_ranked(terms)
            assert [round(r.score, 9) for r in streamed] == \
                [round(r.score, 9) for r in ranked]

    def test_stream_descends_by_score(self, corpus_db):
        scores = [r.score for r in corpus_db.search_stream(["cx", "cy"])]
        assert scores == sorted(scores, reverse=True)

    def test_islice_matches_search_topk(self, corpus_db):
        for k in (1, 3, 7):
            sliced = list(itertools.islice(
                corpus_db.search_stream(["cx", "cy"]), k))
            topk = corpus_db.search_topk(["cx", "cy"], k)
            assert [round(r.score, 9) for r in sliced] == \
                [round(r.score, 9) for r in topk]

    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    def test_semantics_respected(self, small_db, semantics):
        streamed = list(small_db.search_stream("xml data", semantics))
        expected = sort_by_score(
            small_db.search("xml data", semantics=semantics,
                            algorithm="oracle"))
        assert [round(r.score, 9) for r in streamed] == \
            [round(r.score, 9) for r in expected]

    def test_empty_query(self, small_db):
        assert list(small_db.search_stream("")) == []

    def test_unknown_keyword(self, small_db):
        assert list(small_db.search_stream("xml zzz")) == []

    def test_invalid_semantics(self, small_db):
        with pytest.raises(ValueError):
            list(small_db.search_stream("xml", semantics="nope"))


class TestStreamLaziness:
    def test_abandoning_saves_work(self, corpus_db):
        """Consuming 2 of many results must scan fewer tuples than
        draining the stream."""
        engine = TopKKeywordSearch(corpus_db.columnar_index)
        partial_stats = ExecutionStats()
        gen = engine.stream(["cx", "cy"], stats=partial_stats)
        next(gen)
        next(gen)
        gen.close()
        full_stats = ExecutionStats()
        list(engine.stream(["cx", "cy"], stats=full_stats))
        assert partial_stats.tuples_scanned < full_stats.tuples_scanned

    def test_no_work_before_first_next(self, corpus_db):
        engine = TopKKeywordSearch(corpus_db.columnar_index)
        stats = ExecutionStats()
        engine.stream(["cx", "cy"], stats=stats)  # not consumed
        assert stats.tuples_scanned == 0

    def test_search_early_termination_flag_consistent(self, corpus_db):
        # Plenty of results: stopping at 3 is early.
        assert corpus_db.search_topk(["cx", "cy"], 3).terminated_early
        # Asking for more than exist forces a full drain.
        total = len(corpus_db.search(["cx", "cy"]))
        assert not corpus_db.search_topk(["cx", "cy"],
                                         total + 10).terminated_early
