"""Tests for the public facade (`repro.api`)."""

import pytest

from repro import Query, XMLDatabase
from repro.planner.plans import JoinPlanner


class TestQuery:
    def test_from_string(self):
        assert Query("XML data xml").terms == ["xml", "data"]

    def test_from_sequence(self):
        assert Query(["XML", "Data", "xml"]).terms == ["xml", "data"]

    def test_len_and_iter(self):
        q = Query("a b c")
        assert len(q) == 3
        assert list(q) == ["a", "b", "c"]


class TestConstruction:
    def test_from_xml_text(self):
        db = XMLDatabase.from_xml_text("<a><b>xml data</b></a>")
        assert len(db) == 2

    def test_from_tree_freezes(self):
        from repro.xmltree.tree import Node, XMLTree

        tree = XMLTree(Node("a"))
        db = XMLDatabase.from_tree(tree)
        assert db.tree.frozen

    def test_generate_dblp(self):
        db = XMLDatabase.generate_dblp(seed=1, n_papers=25)
        assert db.tree.root.tag == "dblp"

    def test_generate_xmark(self):
        db = XMLDatabase.generate_xmark(seed=1, scale=0.002)
        assert db.tree.root.tag == "site"

    def test_indexes_lazy_and_cached(self, small_db):
        assert small_db._columnar is None
        idx = small_db.columnar_index
        assert small_db.columnar_index is idx
        inv = small_db.inverted_index
        assert small_db.inverted_index is inv

    def test_jdewey_assigned_on_construction(self, small_db):
        assert small_db.tree.root.jdewey == (1,)


class TestSearch:
    def test_default_algorithm_is_join(self, small_db):
        default = small_db.search("xml data")
        join = small_db.search("xml data", algorithm="join")
        assert [r.node.dewey for r in default] == \
            [r.node.dewey for r in join]

    @pytest.mark.parametrize("algorithm", ["join", "stack", "index",
                                           "oracle"])
    def test_all_algorithms_available(self, small_db, algorithm):
        results = small_db.search("xml data", algorithm=algorithm)
        assert results

    def test_query_object_accepted(self, small_db):
        q = Query("xml data")
        assert small_db.search(q) == small_db.search(q)

    def test_term_list_accepted(self, small_db):
        by_list = small_db.search(["XML", "data"])
        by_text = small_db.search("xml data")
        assert [r.node.dewey for r in by_list] == \
            [r.node.dewey for r in by_text]

    def test_unknown_algorithm_raises(self, small_db):
        with pytest.raises(ValueError):
            small_db.search("xml", algorithm="nope")

    def test_unknown_semantics_raises(self, small_db):
        with pytest.raises(ValueError):
            small_db.search("xml", semantics="nope")

    def test_custom_planner_forwarded(self, small_db):
        results = small_db.search("xml data", planner=JoinPlanner("merge"))
        assert results

    def test_search_ranked_descending(self, small_db):
        ranked = small_db.search_ranked("xml data")
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)


class TestSearchTopK:
    @pytest.mark.parametrize("algorithm", ["topk-join", "rdil", "hybrid",
                                           "join"])
    def test_all_topk_algorithms_agree(self, small_db, algorithm):
        expected = small_db.search_ranked("xml data")[:2]
        got = small_db.search_topk("xml data", 2, algorithm=algorithm)
        assert [round(r.score, 9) for r in got] == \
            [round(r.score, 9) for r in expected]

    def test_unknown_algorithm_raises(self, small_db):
        with pytest.raises(ValueError):
            small_db.search_topk("xml", 3, algorithm="nope")

    def test_result_len(self, small_db):
        assert len(small_db.search_topk("xml data", 1)) == 1

    def test_topk_result_iterable(self, small_db):
        result = small_db.search_topk("xml data", 2)
        assert [r.node.tag for r in result]

    def test_stats_attached(self, small_db):
        result = small_db.search_topk("xml data", 2)
        assert result.stats.tuples_scanned >= 0


class TestIntrospection:
    def test_document_frequency_case_insensitive(self, small_db):
        assert small_db.document_frequency("XML") == \
            small_db.document_frequency("xml") > 0

    def test_len(self, small_db):
        assert len(small_db) == len(small_db.tree)
