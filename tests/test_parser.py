"""Tests for the XML parser (`repro.xmltree.parser`)."""

import pytest

from repro.xmltree.parser import XMLParseError, parse_xml, parse_xml_file


class TestBasicParsing:
    def test_single_element(self):
        tree = parse_xml("<a/>")
        assert tree.root.tag == "a"
        assert len(tree) == 1

    def test_element_with_text(self):
        tree = parse_xml("<a>hello world</a>")
        assert tree.root.text == "hello world"

    def test_nested_elements(self):
        tree = parse_xml("<a><b><c/></b></a>")
        assert tree.node_by_dewey((1, 1, 1)).tag == "c"

    def test_siblings_in_document_order(self):
        tree = parse_xml("<a><x/><y/><z/></a>")
        assert [c.tag for c in tree.root.children] == ["x", "y", "z"]

    def test_mixed_content_concatenated(self):
        tree = parse_xml("<a>one <b/> two</a>")
        assert tree.root.text == "one two"

    def test_whitespace_normalized(self):
        tree = parse_xml("<a>  spaced \n  out  </a>")
        assert tree.root.text == "spaced out"

    def test_result_is_frozen_with_dewey(self):
        tree = parse_xml("<a><b/></a>")
        assert tree.frozen
        assert tree.root.children[0].dewey == (1, 1)


class TestAttributes:
    def test_double_quoted(self):
        tree = parse_xml('<a id="42"/>')
        assert tree.root.attributes["id"] == "42"

    def test_single_quoted(self):
        tree = parse_xml("<a id='42'/>")
        assert tree.root.attributes["id"] == "42"

    def test_multiple_attributes(self):
        tree = parse_xml('<a x="1" y="2" z="3"/>')
        assert tree.root.attributes == {"x": "1", "y": "2", "z": "3"}

    def test_attribute_entities_decoded(self):
        tree = parse_xml('<a title="a &amp; b"/>')
        assert tree.root.attributes["title"] == "a & b"

    def test_attributes_on_open_close_element(self):
        tree = parse_xml('<a k="v">text</a>')
        assert tree.root.attributes["k"] == "v"
        assert tree.root.text == "text"


class TestEntitiesAndSections:
    def test_predefined_entities(self):
        tree = parse_xml("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;s&apos;</a>")
        assert tree.root.text == "<tag> & \"q\" 's'"

    def test_decimal_character_reference(self):
        assert parse_xml("<a>&#65;</a>").root.text == "A"

    def test_hex_character_reference(self):
        assert parse_xml("<a>&#x41;</a>").root.text == "A"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a>&nope;</a>")

    @pytest.mark.parametrize("bad", [
        "<a>&#;</a>", "<a>&#xZZ;</a>", "<a>&#99999999999999;</a>",
        "<a>&#x110000;</a>",
    ])
    def test_invalid_character_reference_raises(self, bad):
        with pytest.raises(XMLParseError):
            parse_xml(bad)

    def test_cdata_taken_verbatim(self):
        tree = parse_xml("<a><![CDATA[x < y & z]]></a>")
        assert tree.root.text == "x < y & z"

    def test_comments_skipped(self):
        tree = parse_xml("<a><!-- note --><b/><!-- more --></a>")
        assert [c.tag for c in tree.root.children] == ["b"]

    def test_processing_instruction_inside_element(self):
        tree = parse_xml("<a><?php echo ?><b/></a>")
        assert [c.tag for c in tree.root.children] == ["b"]


class TestProlog:
    def test_xml_declaration(self):
        tree = parse_xml('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert tree.root.tag == "a"

    def test_doctype_skipped(self):
        tree = parse_xml('<!DOCTYPE a SYSTEM "a.dtd"><a/>')
        assert tree.root.tag == "a"

    def test_doctype_with_internal_subset(self):
        tree = parse_xml("<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a/>")
        assert tree.root.tag == "a"

    def test_leading_comment(self):
        tree = parse_xml("<!-- header --><a/>")
        assert tree.root.tag == "a"

    def test_trailing_comment_allowed(self):
        tree = parse_xml("<a/><!-- trailer -->")
        assert tree.root.tag == "a"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "just text",
        "<a>",
        "<a></b>",
        "<a><b></a></b>",
        "<a/><b/>",
        "<a attr></a>",
        '<a attr="unterminated></a>',
        "<a>&unterminated",
        "<a><!-- unterminated</a>",
        "<a><![CDATA[unterminated</a>",
    ])
    def test_malformed_raises(self, bad):
        with pytest.raises(XMLParseError):
            parse_xml(bad)

    def test_error_carries_offset(self):
        with pytest.raises(XMLParseError) as exc:
            parse_xml("<a></b>")
        assert exc.value.pos >= 0
        assert "offset" in str(exc.value)


class TestFile:
    def test_parse_xml_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<r><c>hi</c></r>", encoding="utf-8")
        tree = parse_xml_file(str(path))
        assert tree.node_by_dewey((1, 1)).text == "hi"


class TestRealisticDocument:
    DOC = """<?xml version="1.0"?>
    <!DOCTYPE dblp>
    <dblp>
      <conference><name>ICDE</name>
        <year>2010
          <paper id="p1"><title>Top-K keyword search &amp; XML</title>
            <authors><author>Chen</author><author>Papakonstantinou</author></authors>
          </paper>
        </year>
      </conference>
    </dblp>
    """

    def test_structure(self):
        tree = parse_xml(self.DOC)
        papers = tree.find_all(lambda n: n.tag == "paper")
        assert len(papers) == 1
        assert papers[0].attributes["id"] == "p1"

    def test_title_entity(self):
        tree = parse_xml(self.DOC)
        title = tree.find_all(lambda n: n.tag == "title")[0]
        assert title.text == "Top-K keyword search & XML"

    def test_mixed_year_text(self):
        tree = parse_xml(self.DOC)
        year = tree.find_all(lambda n: n.tag == "year")[0]
        assert year.text == "2010"
