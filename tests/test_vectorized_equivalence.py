"""Differential tests: vectorized vs scalar join-based evaluation.

The vectorized level loop must be *bit-identical* to the per-candidate
scalar reference -- same nodes, same levels, same float scores and
witness tuples, same work counters -- on randomized DBLP/XMark corpora,
for both semantics and both eraser modes.  Any divergence is a bug in
the bulk erasure / segment-max machinery, not a tolerance question.
"""

import random

import pytest

from repro.algorithms.join_based import JoinBasedSearch


def fingerprint(results):
    """Everything observable about a result list, exactly."""
    return [(r.node.dewey, r.level, r.score, r.witness_scores)
            for r in results]


def run_pair(db, terms, semantics, eraser_mode, with_scores=True):
    scalar_engine = JoinBasedSearch(db.columnar_index,
                                    eraser_mode=eraser_mode,
                                    vectorized=False)
    vector_engine = JoinBasedSearch(db.columnar_index,
                                    eraser_mode=eraser_mode,
                                    vectorized=True)
    scalar, s_stats = scalar_engine.evaluate(terms, semantics,
                                             with_scores=with_scores)
    vector, v_stats = vector_engine.evaluate(terms, semantics,
                                             with_scores=with_scores)
    return scalar, s_stats, vector, v_stats


def random_queries(db, seed, n_queries=12, max_terms=3):
    """Seeded random keyword combinations over the corpus vocabulary,
    biased toward frequent terms so the joins actually produce work."""
    index = db.columnar_index
    vocab = sorted(index.vocabulary,
                   key=lambda t: -index.document_frequency(t))
    frequent = vocab[:40] or vocab
    rng = random.Random(seed)
    queries = []
    for _ in range(n_queries):
        n = rng.randint(1, max_terms)
        queries.append(rng.sample(frequent, min(n, len(frequent))))
    return queries


@pytest.mark.parametrize("semantics", ["elca", "slca"])
@pytest.mark.parametrize("eraser_mode", ["bitmap", "interval"])
class TestRandomizedCorpora:
    def test_planted_queries_identical(self, corpus_db, semantics,
                                       eraser_mode):
        for terms in (["alpha", "beta"], ["cx", "cy"],
                      ["alpha", "beta", "gamma"], ["rare", "gamma"],
                      ["gamma"]):
            scalar, s_stats, vector, v_stats = run_pair(
                corpus_db, terms, semantics, eraser_mode)
            assert fingerprint(scalar) == fingerprint(vector)
            assert s_stats.as_dict() == v_stats.as_dict()

    def test_random_queries_identical(self, corpus_db, semantics,
                                      eraser_mode):
        for terms in random_queries(corpus_db, seed=1234):
            scalar, s_stats, vector, v_stats = run_pair(
                corpus_db, terms, semantics, eraser_mode)
            assert fingerprint(scalar) == fingerprint(vector), terms
            assert s_stats.as_dict() == v_stats.as_dict(), terms

    def test_without_scores_identical(self, corpus_db, semantics,
                                      eraser_mode):
        scalar, _, vector, _ = run_pair(corpus_db, ["alpha", "beta"],
                                        semantics, eraser_mode,
                                        with_scores=False)
        assert fingerprint(scalar) == fingerprint(vector)
        assert all(r.score == 0.0 for r in vector)


@pytest.mark.parametrize("semantics", ["elca", "slca"])
class TestSmallDocuments:
    def test_small_db(self, small_db, semantics):
        scalar, s_stats, vector, v_stats = run_pair(
            small_db, ["xml", "data"], semantics, "bitmap")
        assert fingerprint(scalar) == fingerprint(vector)
        assert s_stats.as_dict() == v_stats.as_dict()

    def test_fig1(self, fig1_db, semantics):
        scalar, _, vector, _ = run_pair(fig1_db, ["xml", "data"],
                                        semantics, "interval")
        assert fingerprint(scalar) == fingerprint(vector)

    def test_repeated_keyword(self, small_db, semantics):
        scalar, _, vector, _ = run_pair(small_db, ["xml", "xml"],
                                        semantics, "bitmap")
        assert fingerprint(scalar) == fingerprint(vector)
