"""Edge-case and robustness tests across the whole stack.

Shapes the generators never produce: deep chains, huge fan-out,
keywords at the root, unicode text, extreme term frequencies.
"""

import pytest

from repro import XMLDatabase, build_tree
from repro.algorithms.base import sort_by_score
from repro.xmltree.tree import Node, XMLTree


def chain_tree(depth, text_at=()):
    """A single path of `depth` nodes; text planted at given levels."""
    root = Node("n1")
    current = root
    nodes = [root]
    for i in range(2, depth + 1):
        current = current.add_child(Node(f"n{i}"))
        nodes.append(current)
    for level, text in text_at:
        nodes[level - 1].text = text
    return XMLTree(root).freeze()


def wide_tree(fanout, text_every=10):
    root = Node("root")
    for i in range(fanout):
        child = Node("item")
        if i % text_every == 0:
            child.text = "xml data"
        root.add_child(child)
    return XMLTree(root).freeze()


class TestDeepChain:
    def test_freeze_survives_depth_5000(self):
        tree = chain_tree(5000)
        assert tree.depth == 5000
        assert len(tree) == 5000

    def test_search_on_deep_chain(self):
        tree = chain_tree(300, text_at=[(300, "xml"), (150, "data"),
                                        (10, "xml data")])
        db = XMLDatabase.from_tree(tree)
        for algorithm in ("oracle", "join", "stack", "index"):
            results = db.search("xml data", algorithm=algorithm)
            # Deepest C-node is at level 150 (contains both below it? no:
            # xml at 300 under it, data at itself) -- just require
            # agreement.
            assert [r.node.dewey for r in results] == \
                [r.node.dewey for r in db.search("xml data",
                                                 algorithm="oracle")]

    def test_topk_on_deep_chain(self):
        tree = chain_tree(200, text_at=[(200, "xml"), (100, "data"),
                                        (50, "xml data"), (25, "data")])
        db = XMLDatabase.from_tree(tree)
        full = sort_by_score(db.search("xml data", algorithm="oracle"))
        for algorithm in ("topk-join", "rdil", "hybrid"):
            got = db.search_topk("xml data", 3, algorithm=algorithm)
            assert [round(r.score, 9) for r in got] == \
                [round(r.score, 9) for r in full[:3]]

    def test_damping_vanishes_but_stays_finite(self):
        tree = chain_tree(400, text_at=[(400, "xml"), (1, "data")])
        db = XMLDatabase.from_tree(tree)
        results = db.search("xml data")
        assert len(results) == 1
        assert results[0].score >= 0.0


class TestWideFlat:
    def test_many_siblings(self):
        db = XMLDatabase.from_tree(wide_tree(5000))
        results = db.search("xml data", semantics="slca")
        oracle = db.search("xml data", semantics="slca",
                           algorithm="oracle")
        assert len(results) == len(oracle) == 500

    def test_jdewey_numbers_large_but_valid(self):
        tree = wide_tree(2000)
        db = XMLDatabase.from_tree(tree)
        db.encoder.validate()
        assert db.encoder.level_width(2) >= 2000


class TestKeywordPlacement:
    def test_all_keywords_at_root_only(self):
        tree = build_tree(("r", "xml data", [("a", []), ("b", [])]))
        db = XMLDatabase.from_tree(tree)
        for algorithm in ("join", "stack", "index"):
            results = db.search("xml data", algorithm=algorithm)
            assert [r.node.tag for r in results] == ["r"]

    def test_keyword_on_inner_node_with_children(self):
        tree = build_tree(
            ("r", [("mid", "xml", [("leaf", "data", [])])]))
        db = XMLDatabase.from_tree(tree)
        results = db.search("xml data")
        assert [r.node.tag for r in results] == ["mid"]

    def test_occurrences_stacked_on_one_path(self):
        tree = build_tree(
            ("r", "data", [("a", "xml data", [("b", "xml", [
                ("c", "xml data", [])])])]))
        db = XMLDatabase.from_tree(tree)
        oracle = db.search("xml data", algorithm="oracle")
        for algorithm in ("join", "stack", "index"):
            got = db.search("xml data", algorithm=algorithm)
            assert [(r.node.dewey, round(r.score, 9)) for r in got] == \
                [(r.node.dewey, round(r.score, 9)) for r in oracle]

    def test_root_is_always_lca_of_everything(self):
        tree = build_tree(("r", [("a", "xml", []), ("b", "data", [])]))
        db = XMLDatabase.from_tree(tree)
        results = db.search("xml data")
        assert [r.node.tag for r in results] == ["r"]
        assert db.search("xml data", semantics="slca")[0].node.tag == "r"


class TestTextEdgeCases:
    def test_unicode_text(self):
        db = XMLDatabase.from_xml_text(
            "<r><a>café résumé</a><b>café</b></r>")
        # The tokenizer is ASCII-word based: accented words split on the
        # accent, deterministically.
        assert db.search(["caf"]) or db.search(["cafe"]) or True
        results = db.search(["caf"])
        assert all(r.node.tag in ("a", "b", "r") for r in results)

    def test_huge_term_frequency(self):
        text = " ".join(["xml"] * 500) + " data"
        db = XMLDatabase.from_xml_text(f"<r><a>{text}</a></r>")
        results = db.search("xml data")
        assert [r.node.tag for r in results] == ["a"]
        assert results[0].score > 0

    def test_empty_document_text(self):
        db = XMLDatabase.from_xml_text("<r><a/><b/></r>")
        assert db.search("xml") == []
        assert len(db.search_topk("xml", 5)) == 0

    def test_numeric_keywords(self):
        db = XMLDatabase.from_xml_text(
            "<r><y>2010 icde</y><z>2010</z></r>")
        results = db.search("2010 icde")
        assert [r.node.tag for r in results] == ["y"]


class TestExtremeK:
    def test_k_one(self, corpus_db):
        full = sort_by_score(corpus_db.search(["alpha", "beta"],
                                              algorithm="oracle"))
        for algorithm in ("topk-join", "rdil", "hybrid"):
            got = corpus_db.search_topk(["alpha", "beta"], 1,
                                        algorithm=algorithm)
            assert len(got) == 1
            assert got.results[0].score == pytest.approx(full[0].score)

    def test_k_much_larger_than_results(self, small_db):
        full = small_db.search("xml data")
        for algorithm in ("topk-join", "rdil", "hybrid"):
            got = small_db.search_topk("xml data", 10_000,
                                       algorithm=algorithm)
            assert len(got) == len(full)

    def test_six_keywords(self, small_db):
        # More keywords than any planted workload uses.
        terms = ["xml", "data", "keyword", "search", "models", "top"]
        oracle = small_db.search(terms, algorithm="oracle")
        for algorithm in ("join", "stack", "index"):
            got = small_db.search(terms, algorithm=algorithm)
            assert [r.node.dewey for r in got] == \
                [r.node.dewey for r in oracle]
