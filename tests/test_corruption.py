"""Corruption fuzzing for the persistence layer (`repro.diskdb`).

Seed-fixed random truncations and single-byte flips of every file in a
saved database directory must surface as the typed
`DatabaseFormatError` / `DatabaseCorruptError` (or load fine, for
mutations that do not change meaning) -- never as a raw
IndexError/KeyError/struct/numpy exception, and never as silently
wrong results.
"""

import json
import os
import random

import pytest

from repro import XMLDatabase
from repro.diskdb import load_database, save_database
from repro.index import storage
from repro.reliability import DatabaseCorruptError, DatabaseFormatError
from tests.conftest import SMALL_XML

SEED = 0xC0FFEE

_DOCUMENT = "document.xml"
_META = "meta.json"
_COLUMNAR = "columnar.bin"
_DEWEY = "dewey.bin"
DATA_FILES = (_DOCUMENT, _COLUMNAR, _DEWEY)


@pytest.fixture(scope="module")
def clean_dir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("corruption") / "db")
    db = XMLDatabase.from_xml_text(SMALL_XML)
    db.columnar_index
    db.inverted_index
    save_database(db, path)
    return path


class _Mutant:
    """Temporarily replace one file's bytes; always restores."""

    def __init__(self, directory: str, name: str):
        self.path = os.path.join(directory, name)
        with open(self.path, "rb") as fh:
            self.original = fh.read()

    def write(self, blob: bytes) -> None:
        with open(self.path, "wb") as fh:
            fh.write(blob)

    def restore(self) -> None:
        self.write(self.original)

    def __enter__(self) -> "_Mutant":
        return self

    def __exit__(self, *exc) -> None:
        self.restore()


def _flip(blob: bytes, rng: random.Random) -> bytes:
    mutated = bytearray(blob)
    pos = rng.randrange(len(mutated))
    mutated[pos] ^= 1 << rng.randrange(8)
    return bytes(mutated)


class TestEagerVerification:
    """verify="eager" (the default): every damaged byte is fatal."""

    @pytest.mark.parametrize("name", DATA_FILES)
    def test_byte_flips_raise_typed_and_name_the_file(self, clean_dir, name):
        rng = random.Random(SEED)
        with _Mutant(clean_dir, name) as mutant:
            for _ in range(12):
                mutant.write(_flip(mutant.original, rng))
                with pytest.raises(DatabaseCorruptError) as err:
                    load_database(clean_dir)
                assert err.value.file == name

    @pytest.mark.parametrize("name", DATA_FILES)
    def test_truncations_raise_typed(self, clean_dir, name):
        rng = random.Random(SEED + 1)
        with _Mutant(clean_dir, name) as mutant:
            for _ in range(8):
                cut = rng.randrange(len(mutant.original))
                mutant.write(mutant.original[:cut])
                with pytest.raises(DatabaseCorruptError):
                    load_database(clean_dir)

    def test_missing_meta_is_format_error(self, clean_dir):
        with _Mutant(clean_dir, _META) as mutant:
            os.remove(mutant.path)
            with pytest.raises(DatabaseFormatError):
                load_database(clean_dir)

    def test_unknown_manifest_algorithm(self, clean_dir):
        with _Mutant(clean_dir, _META) as mutant:
            meta = json.loads(mutant.original)
            meta["checksum"]["algorithm"] = "md5"
            mutant.write(json.dumps(meta).encode("utf-8"))
            with pytest.raises(DatabaseFormatError, match="algorithm"):
                load_database(clean_dir)


class TestMetaFuzz:
    """meta.json is not self-checksummed (it is the root of trust), so
    a mutated manifest may still *load* -- but it must never escape as
    an untyped exception."""

    def test_byte_flips_are_typed_or_clean(self, clean_dir):
        rng = random.Random(SEED + 2)
        with _Mutant(clean_dir, _META) as mutant:
            for _ in range(40):
                mutant.write(_flip(mutant.original, rng))
                try:
                    load_database(clean_dir)
                except DatabaseFormatError:
                    pass  # typed (DatabaseCorruptError is a subclass)

    def test_truncations_are_typed(self, clean_dir):
        rng = random.Random(SEED + 3)
        with _Mutant(clean_dir, _META) as mutant:
            for _ in range(8):
                cut = rng.randrange(len(mutant.original))
                mutant.write(mutant.original[:cut])
                with pytest.raises(DatabaseFormatError):
                    load_database(clean_dir)


class TestLazyPerBlock:
    """verify="lazy": the columnar file's whole-file pass is skipped;
    per-block CRCs catch the damage on first touch and name the term."""

    def _refs(self, clean_dir):
        with open(os.path.join(clean_dir, _COLUMNAR), "rb") as fh:
            blob = fh.read()
        _algo, refs = storage.scan_blocked_container(
            blob, storage._MAGIC_COLUMNAR_BLOCKED)
        return blob, refs

    def test_payload_flip_names_the_term(self, clean_dir):
        blob, refs = self._refs(clean_dir)
        rng = random.Random(SEED + 4)
        victims = [r for r in refs if r.length > 0]
        assert victims
        with _Mutant(clean_dir, _COLUMNAR) as mutant:
            for victim in rng.sample(victims, min(5, len(victims))):
                mutated = bytearray(blob)
                pos = victim.offset + rng.randrange(victim.length)
                mutated[pos] ^= 1 << rng.randrange(8)
                mutant.write(bytes(mutated))
                db = load_database(clean_dir, lazy=True, verify="lazy")
                with pytest.raises(DatabaseCorruptError) as err:
                    db.columnar_index.term_postings(victim.term)
                assert err.value.term == victim.term
                assert err.value.file == _COLUMNAR

    def test_undamaged_blocks_still_serve(self, clean_dir):
        blob, refs = self._refs(clean_dir)
        victims = [r for r in refs if r.length > 0]
        victim = victims[0]
        intact = [r.term for r in victims[1:]]
        assert intact
        mutated = bytearray(blob)
        mutated[victim.offset] ^= 0x01
        with _Mutant(clean_dir, _COLUMNAR) as mutant:
            mutant.write(bytes(mutated))
            db = load_database(clean_dir, lazy=True, verify="lazy")
            for term in intact:
                assert db.columnar_index.term_postings(term) is not None
            with pytest.raises(DatabaseCorruptError):
                db.columnar_index.term_postings(victim.term)

    def test_framing_flips_are_typed_when_touched(self, clean_dir):
        # Flips in the container framing (varints, CRCs, magic) land
        # before any payload parse; they must also stay typed.
        blob, refs = self._refs(clean_dir)
        rng = random.Random(SEED + 5)
        payload_bytes = set()
        for ref in refs:
            payload_bytes.update(range(ref.offset, ref.offset + ref.length))
        framing = [i for i in range(len(blob)) if i not in payload_bytes]
        with _Mutant(clean_dir, _COLUMNAR) as mutant:
            for _ in range(10):
                mutated = bytearray(blob)
                pos = rng.choice(framing)
                mutated[pos] ^= 1 << rng.randrange(8)
                mutant.write(bytes(mutated))
                try:
                    db = load_database(clean_dir, lazy=True, verify="lazy")
                    for term in db.columnar_index.vocabulary:
                        db.columnar_index.term_postings(term)
                except DatabaseFormatError:
                    pass  # typed; a term-name flip may instead rename a
                    # block (lazy mode trusts the framing -- documented)


class TestVerifyOff:
    """verify="off" waives the digests, not the typed-error guarantee:
    parse failures still surface as `DatabaseCorruptError`."""

    @pytest.mark.parametrize("name", (_COLUMNAR, _DEWEY))
    def test_garbage_after_magic_is_typed(self, clean_dir, name):
        rng = random.Random(SEED + 6)
        with _Mutant(clean_dir, name) as mutant:
            garbage = mutant.original[:5] + bytes(
                rng.randrange(256) for _ in range(64))
            mutant.write(garbage)
            with pytest.raises(DatabaseFormatError):
                load_database(clean_dir, verify="off")

    @pytest.mark.parametrize("name", (_COLUMNAR, _DEWEY))
    def test_flips_never_escape_untyped(self, clean_dir, name):
        rng = random.Random(SEED + 7)
        with _Mutant(clean_dir, name) as mutant:
            for _ in range(12):
                mutant.write(_flip(mutant.original, rng))
                try:
                    load_database(clean_dir, verify="off")
                except DatabaseFormatError:
                    pass
