"""Tests for the stack-based and index-based baselines."""

import pytest

from repro.algorithms.index_based import IndexBasedSearch
from repro.algorithms.oracle import SemanticsOracle
from repro.algorithms.stack_based import StackBasedSearch


@pytest.fixture(params=["stack", "index"])
def baseline_cls(request):
    return {"stack": StackBasedSearch, "index": IndexBasedSearch}[
        request.param]


class TestAgainstOracle:
    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    def test_small_document(self, small_db, baseline_cls, semantics):
        expected = small_db.search("xml data", semantics=semantics,
                                   algorithm="oracle")
        results, _ = baseline_cls(small_db.inverted_index).evaluate(
            ["xml", "data"], semantics)
        assert [(r.node.dewey, round(r.score, 9)) for r in results] == \
            [(r.node.dewey, round(r.score, 9)) for r in expected]

    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    def test_figure1_tree(self, fig1_db, baseline_cls, semantics):
        expected = fig1_db.search(["xml", "data"], semantics=semantics,
                                  algorithm="oracle")
        results, _ = baseline_cls(fig1_db.inverted_index).evaluate(
            ["xml", "data"], semantics)
        assert [(r.node.dewey, round(r.score, 9)) for r in results] == \
            [(r.node.dewey, round(r.score, 9)) for r in expected]

    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    def test_three_keywords_on_corpus(self, corpus_db, baseline_cls,
                                      semantics):
        oracle = SemanticsOracle(corpus_db.tree, corpus_db.inverted_index)
        terms = ["alpha", "beta", "gamma"]
        expected = oracle.evaluate(terms, semantics)
        results, _ = baseline_cls(corpus_db.inverted_index).evaluate(
            terms, semantics)
        assert [(r.node.dewey, round(r.score, 9)) for r in results] == \
            [(r.node.dewey, round(r.score, 9)) for r in expected]

    def test_single_keyword(self, fig1_db, baseline_cls):
        expected = fig1_db.search(["data"], algorithm="oracle")
        results, _ = baseline_cls(fig1_db.inverted_index).evaluate(
            ["data"], "elca")
        assert [r.node.dewey for r in results] == \
            [r.node.dewey for r in expected]


class TestEdgeCases:
    def test_empty_query(self, small_db, baseline_cls):
        results, _ = baseline_cls(small_db.inverted_index).evaluate(
            [], "elca")
        assert results == []

    def test_unknown_keyword(self, small_db, baseline_cls):
        results, _ = baseline_cls(small_db.inverted_index).evaluate(
            ["xml", "zzz"], "elca")
        assert results == []

    def test_invalid_semantics(self, small_db, baseline_cls):
        with pytest.raises(ValueError):
            baseline_cls(small_db.inverted_index).evaluate(["xml"], "nope")


class TestStackCharacteristics:
    def test_scans_every_posting(self, corpus_db):
        """The paper's observation: the stack sweep always reads every
        list completely, so work tracks the *highest* frequency."""
        inv = corpus_db.inverted_index
        _, stats = StackBasedSearch(inv).evaluate(["rare", "gamma"], "elca")
        total = (inv.document_frequency("rare")
                 + inv.document_frequency("gamma"))
        assert stats.tuples_scanned == total

    def test_without_scores(self, small_db):
        results, _ = StackBasedSearch(small_db.inverted_index).evaluate(
            ["xml", "data"], "elca", with_scores=False)
        assert all(r.score == 0.0 for r in results)


class TestIndexCharacteristics:
    def test_work_tracks_shortest_list(self, corpus_db):
        """The index-based driver scans only the shortest list."""
        inv = corpus_db.inverted_index
        _, stats = IndexBasedSearch(inv).evaluate(["rare", "gamma"], "elca")
        assert stats.tuples_scanned == inv.document_frequency("rare")

    def test_lookup_counter_positive(self, corpus_db):
        _, stats = IndexBasedSearch(corpus_db.inverted_index).evaluate(
            ["alpha", "beta"], "elca")
        assert stats.lookups > 0
