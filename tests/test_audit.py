"""Tests for the plan-quality auditor (`repro.obs.audit`).

EXPLAIN ANALYZE for the section III-C optimizer: per-level predicted
vs. actual cardinality, q-error, plan regret, shadow execution, and
the deliberate-misprediction scenarios (correlated keywords under the
pure containment estimate; forced join policies) the auditor must
flag.
"""

import json

import numpy as np
import pytest

from repro import XMLDatabase
from repro.obs.audit import (AuditingJoinPlanner, PlanAudit, PlanAuditor,
                             audit_query, q_error)
from repro.obs.metrics import MetricsRegistry
from repro.planner.cardinality import CardinalityEstimator
from repro.planner.plans import (INDEX, MERGE, JoinPlanner, alternative_of,
                                 index_cost, merge_cost, modeled_cost)


def _fresh_db(source_db, **kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    return XMLDatabase.from_xml_text(source_db.tree.to_xml(), **kwargs)


# ---------------------------------------------------------------------------
# the shared cost model
# ---------------------------------------------------------------------------

class TestCostModel:
    def test_modeled_cost_matches_components(self):
        assert modeled_cost(MERGE, 10, 100) == merge_cost(10, 100) == 110.0
        assert modeled_cost(INDEX, 10, 100) == index_cost(10, 100)
        assert index_cost(10, 100) == pytest.approx(10 * np.log2(100))

    def test_choose_agrees_with_the_cost_model(self):
        planner = JoinPlanner()
        for probe, target in ((1, 10), (5, 100), (50, 100), (100, 100),
                              (3, 1_000_000), (1000, 1024)):
            chosen = planner.choose(probe, target)
            assert modeled_cost(chosen, probe, target) <= modeled_cost(
                alternative_of(chosen), probe, target)

    def test_alternative_is_an_involution(self):
        assert alternative_of(MERGE) == INDEX
        assert alternative_of(INDEX) == MERGE
        with pytest.raises(ValueError):
            alternative_of("dynamic")
        with pytest.raises(ValueError):
            modeled_cost("dynamic", 1, 1)

    def test_q_error_floors_and_symmetry(self):
        assert q_error(10.0, 10) == 1.0
        assert q_error(5.0, 50) == pytest.approx(10.0)
        assert q_error(50.0, 5) == pytest.approx(10.0)
        # Sub-1 values floor at 1: a 0.4 estimate of an empty level is
        # perfect, not a division blow-up.
        assert q_error(0.4, 0) == 1.0
        assert q_error(0.0, 3) == 3.0


class TestCardinalityDetail:
    def test_estimate_equals_combined(self):
        est = CardinalityEstimator(seed=1)
        columns = [np.arange(0, 400, 2, dtype=np.int64),
                   np.arange(0, 400, 3, dtype=np.int64)]
        detail = est.estimate_detail(columns)
        assert est.estimate(columns) >= 0
        assert detail.combined == max(detail.containment, detail.sampled) \
            if detail.sampled > 0 else detail.containment

    def test_sample_size_zero_disables_refinement(self):
        est = CardinalityEstimator(sample_size=0)
        columns = [np.arange(100, dtype=np.int64),
                   np.arange(100, dtype=np.int64)]
        detail = est.estimate_detail(columns)
        assert detail.sampled == 0.0
        assert detail.combined == detail.containment
        # Identical columns: containment underestimates 100 badly.
        assert detail.containment < 100


# ---------------------------------------------------------------------------
# AuditingJoinPlanner: measured decisions, unchanged results
# ---------------------------------------------------------------------------

class TestAuditingPlanner:
    def test_results_identical_to_plain_planner(self, small_db):
        plain = small_db.search("xml data", use_cache=False)
        audited, stats = small_db.search("xml data", with_stats=True,
                                         audit=True)
        assert [r.node.dewey for r in audited] == \
            [r.node.dewey for r in plain]
        assert isinstance(stats.audit, PlanAudit)

    def test_records_every_pairwise_join(self):
        planner = AuditingJoinPlanner()
        a = np.arange(0, 100, 2, dtype=np.int64)
        b = np.arange(0, 100, 3, dtype=np.int64)
        c = np.arange(0, 100, 5, dtype=np.int64)
        result = planner.intersect_all([a, b, c], level=4)
        assert len(planner.records) == 2  # k columns -> k-1 joins
        for obs in planner.records:
            assert obs.level == 4
            assert obs.algorithm in (MERGE, INDEX)
            assert obs.actual_ms >= 0.0
            assert obs.predicted_merge_cost > 0
            assert obs.predicted_index_cost > 0
        assert set(result) == set(a) & set(b) & set(c)

    def test_wraps_forced_policies(self):
        forced = AuditingJoinPlanner(JoinPlanner("merge"))
        assert forced.policy == "merge"
        a = np.arange(3, dtype=np.int64)
        b = np.arange(10_000, dtype=np.int64)
        forced.intersect(a, b)
        assert forced.records[-1].algorithm == MERGE
        # The dynamic model would have probed here -- that is the
        # "plan" misprediction the audit flags.
        obs = forced.records[-1]
        assert obs.chosen_cost > obs.alternative_cost

    def test_shadow_all_times_the_alternative(self):
        planner = AuditingJoinPlanner(shadow="all")
        a = np.arange(0, 1000, 2, dtype=np.int64)
        b = np.arange(0, 1000, 3, dtype=np.int64)
        planner.intersect_all([a, b], level=1)
        assert all(obs.shadow_ms is not None and obs.shadow_ms >= 0.0
                   for obs in planner.records)

    def test_shadow_off_never_runs_the_alternative(self):
        planner = AuditingJoinPlanner()
        a = np.arange(10, dtype=np.int64)
        b = np.arange(20, dtype=np.int64)
        planner.intersect_all([a, b], level=1)
        assert all(obs.shadow_ms is None for obs in planner.records)

    def test_shadow_sampled_is_seeded_deterministic(self):
        def run(seed):
            planner = AuditingJoinPlanner(shadow="sampled",
                                          shadow_rate=0.5, seed=seed)
            a = np.arange(50, dtype=np.int64)
            b = np.arange(50, dtype=np.int64)
            for level in range(8, 0, -1):
                planner.intersect_all([a, b], level=level)
            return [obs.shadow_ms is not None for obs in planner.records]

        assert run(3) == run(3)
        # Rate 0.5 over 8 levels: both outcomes should appear.
        assert len(set(run(3))) == 2

    def test_rejects_unknown_shadow_mode(self):
        with pytest.raises(ValueError):
            AuditingJoinPlanner(shadow="sometimes")

    def test_shadow_work_does_not_touch_stats(self, small_db):
        _, plain_stats = small_db.search("xml data", use_cache=False,
                                         with_stats=True)
        _, audited_stats = small_db.search("xml data", with_stats=True,
                                           audit=True, shadow="all")
        for field in ("joins", "merge_joins", "index_joins",
                      "tuples_scanned", "lookups"):
            assert getattr(audited_stats, field) == \
                getattr(plain_stats, field), field


# ---------------------------------------------------------------------------
# PlanAudit assembly
# ---------------------------------------------------------------------------

class TestPlanAudit:
    def test_audit_query_levels_match_execution(self, dblp_db):
        audit = audit_query(dblp_db.columnar_index, ["alpha", "beta"])
        assert audit.levels, "expected at least one joined level"
        for level in audit.levels:
            assert level.predicted >= 0.0
            assert level.actual >= 0
            assert level.q_error >= 1.0
            assert level.level_ms >= 0.0
            assert level.join_ms >= 0.0
            assert level.plan  # at least one pairwise join per level
        # On the planted DBLP corpus the sampled estimator is accurate.
        assert audit.max_q_error < 4.0
        assert not audit.mispredicted_levels
        assert "plan OK" in audit.verdict()

    def test_plan_matches_execution_stats(self, dblp_db):
        auditor = PlanAuditor()
        from repro.algorithms.join_based import JoinBasedSearch

        engine = JoinBasedSearch(dblp_db.columnar_index, auditor.planner)
        _, stats = engine.evaluate(["alpha", "beta"], "elca",
                                   with_scores=False,
                                   observer=auditor.observer)
        audit = auditor.finish(["alpha", "beta"], "elca")
        recorded = [(lvl.level, alg) for lvl in audit.levels
                    for alg in lvl.plan]
        assert recorded == stats.per_level_plan

    def test_as_dict_round_trips_through_json(self, dblp_db):
        audit = audit_query(dblp_db.columnar_index, ["alpha", "beta"],
                            shadow="all")
        payload = json.loads(audit.to_json())
        assert payload["terms"] == ["alpha", "beta"]
        assert payload["verdict"] == audit.verdict()
        assert len(payload["levels"]) == len(audit.levels)
        for row, level in zip(payload["levels"], audit.levels):
            assert row["actual"] == level.actual
            assert row["plan"] == level.plan
            assert len(row["joins"]) == len(level.joins)

    def test_format_is_printable(self, dblp_db):
        audit = audit_query(dblp_db.columnar_index, ["alpha", "beta"])
        text = audit.format()
        assert "q_err" in text and "regret" in text
        assert text.count("level ") == len(audit.levels)


# ---------------------------------------------------------------------------
# deliberate mispredictions the auditor must flag
# ---------------------------------------------------------------------------

class TestMispredictionFlags:
    def test_correlated_terms_break_the_containment_estimate(
            self, corpus_db):
        """The acceptance scenario: 'cx' and 'cy' co-occur in 90% of
        their entities, so the independence assumption underestimates
        the intersection wildly once the sampled probe is disabled --
        the auditor must flag at least one level for cardinality."""
        audit = audit_query(
            corpus_db.columnar_index, ["cx", "cy"],
            estimator=CardinalityEstimator(sample_size=0))
        flagged = [lvl for lvl in audit.mispredicted_levels
                   if "cardinality" in lvl.flags]
        assert flagged, audit.format()
        worst = max(flagged, key=lambda lvl: lvl.q_error)
        assert worst.q_error > 4.0
        assert worst.containment < worst.actual  # underestimate
        assert "cardinality" in audit.verdict()

    def test_sampling_repairs_the_correlated_estimate(self, corpus_db):
        """Same query with the probe refinement on: no cardinality
        flag -- the paper's sampled estimator earns its keep."""
        audit = audit_query(corpus_db.columnar_index, ["cx", "cy"])
        assert not any("cardinality" in lvl.flags
                       for lvl in audit.levels), audit.format()

    def test_forced_policy_is_flagged_as_plan_misprediction(
            self, corpus_db):
        """Forcing index joins where merge is model-optimal must show
        up as 'plan' flags; the dynamic policy on the same query is
        model-optimal by construction and never flags."""
        forced = audit_query(corpus_db.columnar_index, ["gamma", "beta"],
                             planner=JoinPlanner("index"))
        dynamic = audit_query(corpus_db.columnar_index, ["gamma", "beta"])
        assert any("plan" in lvl.flags for lvl in forced.levels), \
            forced.format()
        assert not any("plan" in lvl.flags for lvl in dynamic.levels)

    def test_search_audit_flags_ride_on_stats(self, corpus_db):
        db = _fresh_db(corpus_db)
        _, stats = db.search("cx cy", with_stats=True, audit=True)
        assert isinstance(stats.audit, PlanAudit)
        assert stats.audit.terms == ("cx", "cy")

    def test_audit_requires_the_join_algorithm(self, small_db):
        with pytest.raises(ValueError, match="join"):
            small_db.search("xml data", algorithm="stack", audit=True)


# ---------------------------------------------------------------------------
# explain(analyze=True)
# ---------------------------------------------------------------------------

class TestExplainAnalyze:
    def test_plan_carries_the_audit(self, dblp_db):
        plan = dblp_db.explain("alpha beta", analyze=True)
        assert isinstance(plan.audit, PlanAudit)
        assert plan.stats.audit is plan.audit
        assert len(plan.audit.levels) == len(plan.levels)
        for level_plan, level_audit in zip(plan.levels, plan.audit.levels):
            assert level_plan.level == level_audit.level
            assert level_plan.joined == level_audit.actual
            assert list(level_plan.join_algorithms) == level_audit.plan

    def test_analyze_off_leaves_audit_none(self, dblp_db):
        plan = dblp_db.explain("alpha beta")
        assert plan.audit is None

    def test_format_includes_the_verdict(self, dblp_db):
        plan = dblp_db.explain("alpha beta", analyze=True)
        text = plan.format()
        assert "analyze:" in text
        assert plan.audit.verdict() in text

    def test_xmark_workload_audits_cleanly(self, xmark_db):
        plan = xmark_db.explain("alpha beta", analyze=True, shadow="all")
        assert plan.audit.levels
        assert all(lvl.shadow_ms is not None for lvl in plan.audit.levels
                   if lvl.joins)

    def test_estimator_override_reaches_the_audit(self, corpus_db):
        plan = corpus_db.explain(
            "cx cy", analyze=True,
            estimator=CardinalityEstimator(sample_size=0))
        assert any("cardinality" in lvl.flags
                   for lvl in plan.audit.levels)
