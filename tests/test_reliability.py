"""Tests for the reliability layer: deadlines, partial results, and
batch error isolation (`repro.reliability`, `docs/RELIABILITY.md`).

The partial-result tests are the load-bearing ones: they prove the
contract that a budget-truncated run is *degraded, never wrong* -- a
subset of the unbounded complete evaluation, and a prefix of the
unbounded top-K emission order, on both the vectorized and scalar join
paths.  All deadline expiry is driven by an injected step clock, so
nothing here sleeps or depends on machine speed.
"""

import pytest

from repro import XMLDatabase
from repro.algorithms.base import ELCA, SLCA
from repro.algorithms.join_based import JoinBasedSearch
from repro.algorithms.topk_keyword import TopKKeywordSearch
from repro.reliability import Deadline, DeadlineExceeded, QueryBudget
from repro.reliability.deadline import (active_deadline, check_active,
                                        deadline_scope)


class StepClock:
    """A fake clock advancing a fixed amount per call.

    `Deadline` calls the clock once at construction and once per
    `expired()` poll, so a budget of N (step) units expires after
    exactly N polls -- deterministic mid-run expiry without sleeping.
    """

    def __init__(self, step_s: float = 0.001):
        self.now = 0.0
        self.step = step_s

    def __call__(self) -> float:
        current = self.now
        self.now += self.step
        return current


# ---------------------------------------------------------------------------
# Deadline semantics
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_no_budget_never_expires(self):
        d = Deadline(timeout_ms=None)
        assert not d.expired()
        assert d.remaining_ms() == float("inf")
        d.check()  # never raises

    def test_expires_on_injected_clock(self):
        d = Deadline(timeout_ms=2.0, clock=StepClock(0.001))
        assert not d.expired()  # 1 ms elapsed
        assert d.expired()      # 2 ms elapsed
        assert d.expired()      # stays expired

    def test_raise_expired_carries_budget_and_elapsed(self):
        d = Deadline(timeout_ms=1.0, clock=StepClock(0.001))
        with pytest.raises(DeadlineExceeded) as err:
            d.check()
        assert err.value.budget_ms == 1.0
        assert err.value.elapsed_ms >= 1.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            Deadline(timeout_ms=1.0, on_deadline="retry")

    def test_partial_ok(self):
        assert Deadline(1.0, on_deadline="partial").partial_ok
        assert not Deadline(1.0).partial_ok

    def test_query_budget_is_deadline(self):
        assert QueryBudget is Deadline

    def test_coerce_passthrough_and_sugar(self):
        d = Deadline(5.0)
        assert Deadline.coerce(d) is d
        assert Deadline.coerce(None, None) is None
        built = Deadline.coerce(7.5)
        assert built.budget_ms == 7.5
        built = Deadline.coerce(None, timeout_ms=3.0, on_deadline="partial")
        assert built.budget_ms == 3.0 and built.partial_ok

    def test_scope_nesting_shadows_and_restores(self):
        outer = Deadline(1000.0)
        inner = Deadline(2000.0)
        assert active_deadline() is None
        with deadline_scope(outer):
            assert active_deadline() is outer
            with deadline_scope(inner):
                assert active_deadline() is inner
            # None shadows: an unbudgeted query inside a budgeted batch
            # must stay unbudgeted.
            with deadline_scope(None):
                assert active_deadline() is None
            assert active_deadline() is outer
        assert active_deadline() is None

    def test_check_active_polls_the_scope(self):
        check_active()  # no scope installed: a no-op
        expired = Deadline(1.0, clock=StepClock(0.001))
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceeded):
                check_active()
        check_active()  # scope gone again


# ---------------------------------------------------------------------------
# Partial results: subset / prefix proofs
# ---------------------------------------------------------------------------


def _result_map(results):
    return {r.node.dewey: r.score for r in results}


class TestPartialCompleteSearch:
    @pytest.mark.parametrize("vectorized", [True, False],
                             ids=["vectorized", "scalar"])
    @pytest.mark.parametrize("semantics", [ELCA, SLCA])
    def test_partial_is_subset_of_full(self, dblp_db, vectorized, semantics):
        engine = JoinBasedSearch(dblp_db.columnar_index,
                                 vectorized=vectorized)
        full, full_stats = engine.evaluate(["gamma", "beta"], semantics)
        assert not full_stats.partial
        full_map = _result_map(full)

        # One expired() poll per level: a budget of B steps processes
        # exactly B - 1 levels before the engine stops.
        for budget_polls in (1, 2, 3):
            deadline = Deadline(timeout_ms=budget_polls - 0.5,
                                on_deadline="partial",
                                clock=StepClock(0.001))
            partial, stats = engine.evaluate(["gamma", "beta"], semantics,
                                             deadline=deadline)
            assert stats.partial
            assert stats.levels_skipped > 0
            partial_map = _result_map(partial)
            # Subset with identical scores: same-level candidates never
            # interact, so stopping early loses results, never alters them.
            for dewey, score in partial_map.items():
                assert dewey in full_map
                assert score == full_map[dewey]
            assert len(partial_map) <= len(full_map)

    def test_partial_grows_monotonically_to_full(self, dblp_db):
        engine = JoinBasedSearch(dblp_db.columnar_index)
        full, _ = engine.evaluate(["gamma", "beta"], ELCA)
        seen = -1
        for budget_polls in range(1, 16):
            deadline = Deadline(timeout_ms=budget_polls - 0.5,
                                on_deadline="partial",
                                clock=StepClock(0.001))
            partial, stats = engine.evaluate(["gamma", "beta"], ELCA,
                                             deadline=deadline)
            assert len(partial) >= seen
            seen = len(partial)
            if not stats.partial:
                assert _result_map(partial) == _result_map(full)
                break
        else:
            pytest.fail("budget of 15 level-polls never covered the tree")

    def test_raise_policy_raises(self, dblp_db):
        engine = JoinBasedSearch(dblp_db.columnar_index)
        deadline = Deadline(timeout_ms=0.5, clock=StepClock(0.001))
        with pytest.raises(DeadlineExceeded):
            engine.evaluate(["gamma", "beta"], ELCA, deadline=deadline)


class TestPartialTopK:
    def _full_order(self, db, terms):
        engine = TopKKeywordSearch(db.columnar_index)
        return [(r.node.dewey, r.score) for r in engine.stream(terms)]

    def test_partial_is_prefix_of_unbounded_emission(self, dblp_db):
        terms = ["gamma", "beta"]
        full = self._full_order(dblp_db, terms)
        assert full  # the corpus plants these terms together
        engine = TopKKeywordSearch(dblp_db.columnar_index)
        saw_nontrivial_partial = False
        budget = 1.5
        while True:
            deadline = Deadline(timeout_ms=budget, on_deadline="partial",
                                clock=StepClock(0.001))
            result = engine.search(terms, k=len(full) + 1,
                                   deadline=deadline)
            got = [(r.node.dewey, r.score) for r in result]
            # Prefix, not just subset: emission only happens once a
            # result provably beats the live bound, so the order is
            # the unbounded run's order.
            assert got == full[: len(got)]
            if result.partial:
                assert result.stats.partial
                if result.bound is not None:
                    # The guarantee gap: nothing unreturned outscores it.
                    for _dewey, score in full[len(got):]:
                        assert score <= result.bound + 1e-9
                if got:
                    saw_nontrivial_partial = True
                budget *= 2
                if budget > 1e6:  # pragma: no cover - safety valve
                    pytest.fail("budget never covered the full stream")
            else:
                assert got == full
                break
        assert saw_nontrivial_partial, (
            "no budget produced a non-empty strict prefix; the test "
            "lost its power to detect ordering bugs")

    def test_raise_policy_raises(self, dblp_db):
        engine = TopKKeywordSearch(dblp_db.columnar_index)
        deadline = Deadline(timeout_ms=0.5, clock=StepClock(0.001))
        with pytest.raises(DeadlineExceeded):
            engine.search(["gamma", "beta"], k=5, deadline=deadline)


# ---------------------------------------------------------------------------
# API surface: XMLDatabase.search / search_topk / search_stream
# ---------------------------------------------------------------------------


class TestDatabaseDeadlines:
    def test_search_partial_stats_and_metrics(self, small_db):
        hits = small_db.metrics.counter("repro_deadline_hits_total",
                                        {"outcome": "partial"})
        before = hits.value
        results, stats = small_db.search("xml data", timeout_ms=0,
                                         on_deadline="partial",
                                         with_stats=True)
        assert stats.partial
        assert results == []
        assert hits.value == before + 1

    def test_search_raise_policy(self, small_db):
        errors = small_db.metrics.counter("repro_deadline_hits_total",
                                          {"outcome": "error"})
        before = errors.value
        with pytest.raises(DeadlineExceeded):
            small_db.search("xml data", timeout_ms=0)
        assert errors.value == before + 1

    def test_partial_results_never_cached(self, small_db):
        empty, stats = small_db.search("xml data", timeout_ms=0,
                                       on_deadline="partial",
                                       with_stats=True)
        assert stats.partial and empty == []
        # If the degraded answer had been cached, this would be a hit
        # returning [] -- instead the unbudgeted query computes fully.
        full = small_db.search("xml data")
        assert full

    def test_search_accepts_deadline_object_and_ms_number(self, small_db):
        full = small_db.search("xml data", use_cache=False)
        assert small_db.search("xml data", deadline=Deadline(60_000.0),
                               use_cache=False) == full
        assert small_db.search("xml data", deadline=60_000,
                               use_cache=False) == full

    def test_topk_partial_flag(self, small_db):
        result = small_db.search_topk("xml data", 3, timeout_ms=0,
                                      on_deadline="partial")
        assert result.partial
        assert list(result) == []

    def test_topk_join_fallback_partial(self, small_db):
        # The "join" top-K route (evaluate everything, truncate) also
        # honors the budget; its gap is unknown (bound is None).
        result = small_db.search_topk("xml data", 3, algorithm="join",
                                      timeout_ms=0, on_deadline="partial")
        assert result.partial
        assert result.bound is None

    def test_topk_raise_policy(self, small_db):
        with pytest.raises(DeadlineExceeded):
            small_db.search_topk("xml data", 3, timeout_ms=0)

    def test_stream_partial_ends_cleanly(self, small_db):
        stream = small_db.search_stream("xml data", timeout_ms=0,
                                        on_deadline="partial")
        assert list(stream) == []

    def test_stream_raise_policy(self, small_db):
        stream = small_db.search_stream("xml data", timeout_ms=0)
        with pytest.raises(DeadlineExceeded):
            list(stream)

    def test_stream_installs_no_thread_local_scope(self, small_db):
        # A scope left set across a yield would leak into the
        # consumer's unrelated queries between next() calls.
        stream = small_db.search_stream("xml data", timeout_ms=60_000)
        next(stream, None)
        assert active_deadline() is None

    @pytest.mark.parametrize("algorithm", ["stack", "index", "oracle"])
    def test_in_memory_baselines_ignore_budgets(self, small_db, algorithm):
        # Documented: budgets are enforced on the join paths only.
        results = small_db.search("xml data", algorithm=algorithm,
                                  timeout_ms=0, on_deadline="partial",
                                  use_cache=False)
        assert results


# ---------------------------------------------------------------------------
# Batch error isolation
# ---------------------------------------------------------------------------


class _Unparseable:
    """A query object `_terms` cannot coerce -- fails inside the slot."""


class TestBatchIsolation:
    def test_failing_query_lands_in_errors(self, small_db):
        errors_total = small_db.metrics.counter(
            "repro_batch_query_errors_total")
        before = errors_total.value
        batch = small_db.search_batch(["xml data", _Unparseable(), "data"])
        assert len(batch) == 3
        assert batch[0] and batch[2]
        assert batch[1] is None
        assert set(batch.errors) == {1}
        assert isinstance(batch.errors[1], Exception)
        assert not batch.ok
        assert errors_total.value == before + 1

    def test_clean_batch_is_ok(self, small_db):
        batch = small_db.search_batch(["xml data", "data"])
        assert batch.ok
        assert batch.errors == {}

    def test_summary_skips_failed_slots(self, small_db):
        clean = small_db.search_batch(["xml data", "data"],
                                      use_cache=False)
        mixed = small_db.search_batch(["xml data", _Unparseable(), "data"],
                                      use_cache=False)
        # The failed slot contributes nothing, so the summaries agree.
        assert mixed.summary.levels_processed == \
            clean.summary.levels_processed
        assert mixed.summary.tuples_scanned == clean.summary.tuples_scanned

    def test_raise_on_error_fails_fast(self, small_db):
        with pytest.raises(Exception):
            small_db.search_batch(["xml data", _Unparseable(), "data"],
                                  raise_on_error=True)

    @pytest.mark.parametrize("threads", [None, 3])
    def test_queue_depth_returns_to_rest(self, small_db, threads):
        gauge = small_db.metrics.gauge("repro_batch_queue_depth")
        rest = gauge.value
        small_db.search_batch(["xml data", _Unparseable(), "data"],
                              threads=threads)
        assert gauge.value == rest

    def test_queue_depth_survives_fail_fast(self, small_db):
        gauge = small_db.metrics.gauge("repro_batch_queue_depth")
        rest = gauge.value
        with pytest.raises(Exception):
            small_db.search_batch(["xml data", _Unparseable(), "data"],
                                  raise_on_error=True)
        assert gauge.value == rest

    def test_shared_deadline_partial_batch(self, small_db):
        batch = small_db.search_batch(["xml data", "data"], timeout_ms=0,
                                      on_deadline="partial",
                                      with_stats=True)
        assert batch.ok  # partial is a policy outcome, not an error
        for results, stats in batch:
            assert results == []
            assert stats.partial
        assert batch.summary.partial

    def test_shared_deadline_raise_isolated(self, small_db):
        batch = small_db.search_batch(["xml data", "data"], timeout_ms=0)
        assert set(batch.errors) == {0, 1}
        for exc in batch.errors.values():
            assert isinstance(exc, DeadlineExceeded)

    def test_topk_batch_errors(self, small_db):
        batch = small_db.search_batch(["xml data", _Unparseable()], k=2)
        assert batch[0] is not None
        assert batch[1] is None
        assert set(batch.errors) == {1}
