"""Tests for erasure bookkeeping (`repro.algorithms.erasure`)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.erasure import (BitmapEraser, IntervalEraser,
                                      make_eraser)


@pytest.fixture(params=["bitmap", "interval"])
def eraser(request):
    return make_eraser(request.param, 100)


class TestCommonBehaviour:
    def test_initially_clean(self, eraser):
        assert eraser.total_erased == 0
        assert eraser.erased_count(0, 100) == 0
        assert not eraser.is_erased(50)

    def test_mark_and_count(self, eraser):
        eraser.mark(10, 20)
        assert eraser.total_erased == 10
        assert eraser.erased_count(0, 100) == 10
        assert eraser.erased_count(12, 15) == 3
        assert eraser.erased_count(20, 30) == 0

    def test_is_erased_boundaries(self, eraser):
        eraser.mark(10, 20)
        assert eraser.is_erased(10)
        assert eraser.is_erased(19)
        assert not eraser.is_erased(9)
        assert not eraser.is_erased(20)

    def test_empty_mark_noop(self, eraser):
        eraser.mark(5, 5)
        assert eraser.total_erased == 0

    def test_out_of_range_raises(self, eraser):
        with pytest.raises(ValueError):
            eraser.mark(-1, 5)
        with pytest.raises(ValueError):
            eraser.mark(90, 120)

    def test_free_mask(self, eraser):
        eraser.mark(3, 6)
        ordinals = np.asarray([2, 3, 4, 6, 7])
        assert list(eraser.free_mask(ordinals)) == [True, False, False,
                                                    True, True]

    def test_disjoint_marks_accumulate(self, eraser):
        eraser.mark(0, 5)
        eraser.mark(10, 15)
        assert eraser.total_erased == 10
        assert eraser.erased_count(0, 20) == 10

    def test_containing_mark_swallows(self, eraser):
        # The contained-or-disjoint geometry: deep ranges first, then an
        # enclosing range at a higher level.
        eraser.mark(10, 12)
        eraser.mark(14, 16)
        eraser.mark(8, 20)
        assert eraser.total_erased == 12
        assert eraser.erased_count(8, 20) == 12


class TestIntervalSpecific:
    def test_partial_overlap_rejected(self):
        eraser = IntervalEraser(100)
        eraser.mark(10, 20)
        with pytest.raises(ValueError):
            eraser.mark(15, 25)

    def test_intervals_view(self):
        eraser = IntervalEraser(100)
        eraser.mark(30, 40)
        eraser.mark(10, 20)
        assert eraser.intervals == [(10, 20), (30, 40)]

    def test_swallow_merges_intervals(self):
        eraser = IntervalEraser(100)
        eraser.mark(10, 12)
        eraser.mark(20, 22)
        eraser.mark(5, 50)
        assert eraser.intervals == [(5, 50)]

    def test_binary_search_count(self):
        eraser = IntervalEraser(1000)
        for i in range(0, 1000, 100):
            eraser.mark(i, i + 10)
        assert eraser.erased_count(0, 1000) == 100
        # (100,110) fully inside, (200,210) clipped to 5 overlapping rows.
        assert eraser.erased_count(95, 205) == 15


class TestFactory:
    def test_modes(self):
        assert isinstance(make_eraser("bitmap", 10), BitmapEraser)
        assert isinstance(make_eraser("interval", 10), IntervalEraser)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            make_eraser("nope", 10)


# Contained-or-disjoint interval batches: draw disjoint level-0 ranges,
# then enclose random consecutive groups -- mirrors the join geometry.
@st.composite
def nested_marks(draw):
    size = draw(st.integers(40, 200))
    n = draw(st.integers(0, min(8, size // 6)))
    points = sorted(draw(st.lists(st.integers(0, size), min_size=2 * n,
                                  max_size=2 * n, unique=True)))
    base = [(points[2 * i], points[2 * i + 1]) for i in range(n)]
    marks = list(base)
    if n >= 2 and draw(st.booleans()):
        i = draw(st.integers(0, n - 2))
        j = draw(st.integers(i + 1, n - 1))
        marks.append((base[i][0], base[j][1]))
    return size, marks


class TestEquivalence:
    @given(nested_marks())
    def test_bitmap_and_interval_agree(self, case):
        size, marks = case
        bitmap = BitmapEraser(size)
        interval = IntervalEraser(size)
        for lo, hi in marks:
            bitmap.mark(lo, hi)
            interval.mark(lo, hi)
        assert bitmap.total_erased == interval.total_erased
        for lo in range(0, size, max(1, size // 7)):
            for hi in range(lo, size, max(1, size // 7)):
                assert bitmap.erased_count(lo, hi) == \
                    interval.erased_count(lo, hi)
        for i in range(size):
            assert bitmap.is_erased(i) == interval.is_erased(i)
