"""Tests for erasure bookkeeping (`repro.algorithms.erasure`)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.erasure import (_ARRAY_MAX, _CHUNK, BitmapEraser,
                                      IntervalEraser, RoaringEraser,
                                      make_eraser)


@pytest.fixture(params=["bitmap", "interval", "roaring"])
def eraser(request):
    return make_eraser(request.param, 100)


class TestCommonBehaviour:
    def test_initially_clean(self, eraser):
        assert eraser.total_erased == 0
        assert eraser.erased_count(0, 100) == 0
        assert not eraser.is_erased(50)

    def test_mark_and_count(self, eraser):
        eraser.mark(10, 20)
        assert eraser.total_erased == 10
        assert eraser.erased_count(0, 100) == 10
        assert eraser.erased_count(12, 15) == 3
        assert eraser.erased_count(20, 30) == 0

    def test_is_erased_boundaries(self, eraser):
        eraser.mark(10, 20)
        assert eraser.is_erased(10)
        assert eraser.is_erased(19)
        assert not eraser.is_erased(9)
        assert not eraser.is_erased(20)

    def test_empty_mark_noop(self, eraser):
        eraser.mark(5, 5)
        assert eraser.total_erased == 0

    def test_out_of_range_raises(self, eraser):
        with pytest.raises(ValueError):
            eraser.mark(-1, 5)
        with pytest.raises(ValueError):
            eraser.mark(90, 120)

    def test_free_mask(self, eraser):
        eraser.mark(3, 6)
        ordinals = np.asarray([2, 3, 4, 6, 7])
        assert list(eraser.free_mask(ordinals)) == [True, False, False,
                                                    True, True]

    def test_disjoint_marks_accumulate(self, eraser):
        eraser.mark(0, 5)
        eraser.mark(10, 15)
        assert eraser.total_erased == 10
        assert eraser.erased_count(0, 20) == 10

    def test_containing_mark_swallows(self, eraser):
        # The contained-or-disjoint geometry: deep ranges first, then an
        # enclosing range at a higher level.
        eraser.mark(10, 12)
        eraser.mark(14, 16)
        eraser.mark(8, 20)
        assert eraser.total_erased == 12
        assert eraser.erased_count(8, 20) == 12


class TestIntervalSpecific:
    def test_partial_overlap_rejected(self):
        eraser = IntervalEraser(100)
        eraser.mark(10, 20)
        with pytest.raises(ValueError):
            eraser.mark(15, 25)

    def test_intervals_view(self):
        eraser = IntervalEraser(100)
        eraser.mark(30, 40)
        eraser.mark(10, 20)
        assert eraser.intervals == [(10, 20), (30, 40)]

    def test_swallow_merges_intervals(self):
        eraser = IntervalEraser(100)
        eraser.mark(10, 12)
        eraser.mark(20, 22)
        eraser.mark(5, 50)
        assert eraser.intervals == [(5, 50)]

    def test_binary_search_count(self):
        eraser = IntervalEraser(1000)
        for i in range(0, 1000, 100):
            eraser.mark(i, i + 10)
        assert eraser.erased_count(0, 1000) == 100
        # (100,110) fully inside, (200,210) clipped to 5 overlapping rows.
        assert eraser.erased_count(95, 205) == 15


class TestRoaringSpecific:
    def test_overlapping_marks_union(self):
        # Unlike the interval eraser, roaring accepts arbitrary overlap.
        eraser = RoaringEraser(100)
        eraser.mark(10, 30)
        eraser.mark(20, 50)
        assert eraser.total_erased == 40
        assert eraser.runs == [(10, 50)]

    def test_single_points_use_array_container(self):
        eraser = RoaringEraser(1000)
        for i in (3, 99, 7):
            eraser.mark(i, i + 1)
        assert eraser.container_kinds == {"array": 1, "run": 0,
                                          "bitset": 0}
        assert eraser.runs == [(3, 4), (7, 8), (99, 100)]

    def test_range_marks_use_run_container(self):
        eraser = RoaringEraser(1000)
        eraser.mark(10, 40)
        eraser.mark(100, 200)
        assert eraser.container_kinds["run"] == 1

    def test_array_promotes_to_bitset(self):
        eraser = RoaringEraser(2 * _CHUNK)
        for i in range(0, 2 * (_ARRAY_MAX + 1), 2):
            eraser.mark(i, i + 1)
        assert eraser.container_kinds["bitset"] == 1
        assert eraser.total_erased == _ARRAY_MAX + 1
        assert eraser.is_erased(2 * _ARRAY_MAX)
        assert not eraser.is_erased(2 * _ARRAY_MAX + 1)

    def test_mark_spanning_chunks(self):
        eraser = RoaringEraser(3 * _CHUNK)
        lo, hi = _CHUNK - 10, 2 * _CHUNK + 10
        eraser.mark(lo, hi)
        assert eraser.total_erased == hi - lo
        assert len(eraser.container_kinds) == 3
        assert eraser.erased_count(0, 3 * _CHUNK) == hi - lo
        assert eraser.is_erased(_CHUNK)
        assert eraser.is_erased(2 * _CHUNK + 9)
        assert not eraser.is_erased(2 * _CHUNK + 10)

    def test_mark_many_spanning_chunks_matches_scalar(self):
        rng = np.random.default_rng(17)
        size = 4 * _CHUNK
        lows = rng.integers(0, size - 500, size=200)
        highs = lows + rng.integers(0, 500, size=200)
        bulk = RoaringEraser(size)
        bulk.mark_many(lows, highs)
        slow = RoaringEraser(size)
        for lo, hi in zip(lows.tolist(), highs.tolist()):
            slow.mark(lo, hi)
        assert bulk.total_erased == slow.total_erased
        assert bulk.runs == slow.runs


class TestFactory:
    def test_modes(self):
        assert isinstance(make_eraser("bitmap", 10), BitmapEraser)
        assert isinstance(make_eraser("interval", 10), IntervalEraser)
        assert isinstance(make_eraser("roaring", 10), RoaringEraser)

    def test_auto_picks_by_size(self):
        # One chunk or less: the dense bitmap is cheapest; above that
        # the chunked containers win.
        assert isinstance(make_eraser("auto", _CHUNK), BitmapEraser)
        assert isinstance(make_eraser("auto", _CHUNK + 1), RoaringEraser)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            make_eraser("nope", 10)


# Contained-or-disjoint interval batches: draw disjoint level-0 ranges,
# then enclose random consecutive groups -- mirrors the join geometry.
@st.composite
def nested_marks(draw):
    size = draw(st.integers(40, 200))
    n = draw(st.integers(0, min(8, size // 6)))
    points = sorted(draw(st.lists(st.integers(0, size), min_size=2 * n,
                                  max_size=2 * n, unique=True)))
    base = [(points[2 * i], points[2 * i + 1]) for i in range(n)]
    marks = list(base)
    if n >= 2 and draw(st.booleans()):
        i = draw(st.integers(0, n - 2))
        j = draw(st.integers(i + 1, n - 1))
        marks.append((base[i][0], base[j][1]))
    return size, marks


@st.composite
def bulk_queries(draw, size):
    """Random (lows, highs) range arrays within [0, size]."""
    n = draw(st.integers(0, 12))
    lows, highs = [], []
    for _ in range(n):
        lo = draw(st.integers(0, size))
        hi = draw(st.integers(lo, size))
        lows.append(lo)
        highs.append(hi)
    return (np.asarray(lows, dtype=np.int64),
            np.asarray(highs, dtype=np.int64))


class TestBulkAPIs:
    """Property-based equivalence: bulk vs scalar on random sequences."""

    @pytest.mark.parametrize("mode", ["bitmap", "interval", "roaring"])
    @given(case=nested_marks(), data=st.data())
    def test_erased_counts_matches_scalar(self, mode, case, data):
        size, marks = case
        eraser = make_eraser(mode, size)
        for lo, hi in marks:
            eraser.mark(lo, hi)
        lows, highs = data.draw(bulk_queries(size))
        bulk = eraser.erased_counts(lows, highs)
        scalar = [eraser.erased_count(int(lo), int(hi))
                  for lo, hi in zip(lows, highs)]
        assert list(bulk) == scalar

    @pytest.mark.parametrize("mode", ["bitmap", "interval", "roaring"])
    @given(case=nested_marks())
    def test_mark_many_matches_mark_sequence(self, mode, case):
        size, marks = case
        one_by_one = make_eraser(mode, size)
        for lo, hi in marks:
            one_by_one.mark(lo, hi)
        bulk = make_eraser(mode, size)
        bulk.mark_many(np.asarray([m[0] for m in marks], dtype=np.int64),
                       np.asarray([m[1] for m in marks], dtype=np.int64))
        assert bulk.total_erased == one_by_one.total_erased
        for i in range(size):
            assert bulk.is_erased(i) == one_by_one.is_erased(i)

    @given(case=nested_marks(), data=st.data())
    def test_interleaved_marks_and_counts(self, case, data):
        """Counts stay correct as marks arrive between bulk queries
        (the cached prefix/array views must invalidate)."""
        size, marks = case
        bitmap = BitmapEraser(size)
        interval = IntervalEraser(size)
        roaring = RoaringEraser(size)
        for lo, hi in marks:
            bitmap.mark(lo, hi)
            interval.mark(lo, hi)
            roaring.mark(lo, hi)
            lows, highs = data.draw(bulk_queries(size))
            assert list(bitmap.erased_counts(lows, highs)) == \
                list(interval.erased_counts(lows, highs)) == \
                list(roaring.erased_counts(lows, highs)) == \
                [bitmap.erased_count(int(a), int(b))
                 for a, b in zip(lows, highs)]

    def test_bitmap_mark_many_overlapping_ranges(self):
        # The bitmap has no geometry restriction: arbitrary overlaps.
        eraser = BitmapEraser(50)
        eraser.mark_many(np.asarray([0, 5, 3]), np.asarray([10, 20, 7]))
        assert eraser.total_erased == 20
        assert eraser.erased_count(0, 50) == 20

    @pytest.mark.parametrize("mode", ["bitmap", "interval", "roaring"])
    def test_bulk_validation(self, mode):
        eraser = make_eraser(mode, 10)
        with pytest.raises(ValueError):
            eraser.mark_many(np.asarray([-1]), np.asarray([5]))
        with pytest.raises(ValueError):
            eraser.erased_counts(np.asarray([0]), np.asarray([11]))
        with pytest.raises(ValueError):
            eraser.erased_counts(np.asarray([5]), np.asarray([2]))
        with pytest.raises(ValueError):
            eraser.mark_many(np.asarray([0, 1]), np.asarray([5]))

    @pytest.mark.parametrize("mode", ["bitmap", "interval", "roaring"])
    def test_bulk_empty_inputs(self, mode):
        eraser = make_eraser(mode, 10)
        eraser.mark_many(np.empty(0, dtype=np.int64),
                         np.empty(0, dtype=np.int64))
        assert eraser.total_erased == 0
        counts = eraser.erased_counts(np.empty(0, dtype=np.int64),
                                      np.empty(0, dtype=np.int64))
        assert len(counts) == 0

    @pytest.mark.parametrize("mode", ["bitmap", "interval", "roaring"])
    @given(case=nested_marks(), data=st.data())
    def test_free_mask_matches_is_erased(self, mode, case, data):
        size, marks = case
        eraser = make_eraser(mode, size)
        for lo, hi in marks:
            eraser.mark(lo, hi)
        n = data.draw(st.integers(0, 20))
        ordinals = np.asarray(
            data.draw(st.lists(st.integers(0, size - 1), min_size=n,
                               max_size=n)), dtype=np.int64)
        mask = eraser.free_mask(ordinals)
        assert list(mask) == [not eraser.is_erased(int(o))
                              for o in ordinals]


class TestEquivalence:
    @given(nested_marks())
    def test_bitmap_and_interval_agree(self, case):
        size, marks = case
        bitmap = BitmapEraser(size)
        interval = IntervalEraser(size)
        for lo, hi in marks:
            bitmap.mark(lo, hi)
            interval.mark(lo, hi)
        assert bitmap.total_erased == interval.total_erased
        for lo in range(0, size, max(1, size // 7)):
            for hi in range(lo, size, max(1, size // 7)):
                assert bitmap.erased_count(lo, hi) == \
                    interval.erased_count(lo, hi)
        for i in range(size):
            assert bitmap.is_erased(i) == interval.is_erased(i)

    @given(nested_marks())
    def test_roaring_agrees_with_bitmap(self, case):
        size, marks = case
        bitmap = BitmapEraser(size)
        roaring = RoaringEraser(size)
        for lo, hi in marks:
            bitmap.mark(lo, hi)
            roaring.mark(lo, hi)
        assert bitmap.total_erased == roaring.total_erased
        ordinals = np.arange(size, dtype=np.int64)
        assert list(bitmap.free_mask(ordinals)) == \
            list(roaring.free_mask(ordinals))
        lows = np.arange(0, size, 7, dtype=np.int64)
        highs = np.minimum(lows + 11, size)
        assert list(bitmap.erased_counts(lows, highs)) == \
            list(roaring.erased_counts(lows, highs))
