"""Tests for the observability subsystem (`repro.obs`).

Covers the span tracer (unit + integration with the query pipeline),
the metrics registry, the slow-query log, `ExecutionStats` merging,
the `search_batch` summary, and the NullTracer overhead guard.
"""

import json

import pytest

from repro import XMLDatabase
from repro.algorithms.base import ExecutionStats
from repro.algorithms.join_based import JoinBasedSearch
from repro.algorithms.topk_keyword import TopKKeywordSearch
from repro.obs import (Counter, Gauge, Histogram, MetricsRegistry,
                       NullTracer, SlowQueryLog, Tracer, get_registry,
                       render_trace, spans_per_level_plan, trace_to_jsonl)
from repro.obs.tracing import NULL_SPAN


# ---------------------------------------------------------------------------
# tracer unit tests
# ---------------------------------------------------------------------------

class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("query", op="t") as root:
            with tracer.span("parse"):
                pass
            with tracer.span("join", level=2) as join:
                with tracer.span("probe"):
                    pass
        assert tracer.last_root() is root
        assert [s.name for s in root.walk()] == [
            "query", "parse", "join", "probe"]
        assert root.children[1] is join
        assert join.tags == {"level": 2}

    def test_tag_is_chainable_and_overwrites(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            span.tag(a=2).tag(b=3)
        assert span.tags == {"a": 2, "b": 3}

    def test_durations_and_find(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        root = tracer.last_root()
        assert root.end is not None
        assert root.duration_ms >= 0
        assert len(root.find("inner")) == 2
        assert all(s.duration_ms <= root.duration_ms + 1e-6
                   for s in root.walk())

    def test_capacity_bounds_roots(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span("q", i=i):
                pass
        roots = tracer.roots()
        assert len(roots) == 3
        assert [r.tags["i"] for r in roots] == [2, 3, 4]

    def test_reset_clears_roots(self):
        tracer = Tracer()
        with tracer.span("q"):
            pass
        tracer.reset()
        assert tracer.roots() == []
        assert tracer.last_root() is None

    def test_dangling_children_are_closed(self):
        """An abandoned generator leaves its span open; finishing an
        ancestor must close the dangling descendants."""
        tracer = Tracer()
        root = tracer.span("root")
        tracer.span("dangling")  # never exited
        root.__exit__(None, None, None)
        tree = tracer.last_root()
        assert tree is root
        assert tree.children[0].name == "dangling"
        assert tree.children[0].end is not None

    def test_render_trace(self):
        tracer = Tracer()
        with tracer.span("query", op="search"):
            with tracer.span("join", level=3, plan=["merge"]):
                pass
        text = render_trace(tracer.last_root())
        assert "query" in text
        assert "join" in text
        assert "level=3" in text
        assert "100.0%" in text
        # min_ms hides fast children but never the root.
        assert "join" not in render_trace(tracer.last_root(),
                                          min_ms=10_000.0)

    def test_jsonl_export_round_trips(self):
        tracer = Tracer()
        with tracer.span("query", terms=["xml", "data"], obj=object()):
            with tracer.span("parse"):
                pass
        lines = trace_to_jsonl(tracer.roots()).strip().splitlines()
        spans = [json.loads(line) for line in lines]
        assert [s["name"] for s in spans] == ["query", "parse"]
        assert spans[0]["parent_id"] is None
        assert spans[1]["parent_id"] == spans[0]["id"]
        assert spans[0]["tags"]["terms"] == ["xml", "data"]
        # Non-JSON tag values are stringified, never a crash.
        assert isinstance(spans[0]["tags"]["obj"], str)
        assert all(s["duration_ms"] >= 0 for s in spans)

    def test_to_dict_nested(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        tree = tracer.last_root().to_dict()
        assert tree["name"] == "a"
        assert tree["children"][0]["name"] == "b"
        assert tree["start_ms"] == 0.0


class TestNullTracer:
    def test_is_disabled_and_shared(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.span("anything", level=1) is NULL_SPAN
        with tracer.span("x") as span:
            assert span.tag(a=1) is span
        assert tracer.roots() == []
        assert tracer.last_root() is None
        tracer.reset()  # no-op, no crash


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec_and_fn(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6.0
        gauge.set_fn(lambda: 0.75)
        assert gauge.value == 0.75

    def test_histogram_percentiles(self):
        hist = Histogram()
        for value in range(1, 101):  # 1..100 ms
            hist.observe(float(value))
        data = hist.as_dict()
        assert data["count"] == 100
        assert data["sum"] == pytest.approx(5050.0)
        assert data["mean"] == pytest.approx(50.5)
        assert abs(data["p50"] - 50) <= 2
        assert abs(data["p95"] - 95) <= 2
        assert abs(data["p99"] - 99) <= 2
        # Cumulative buckets: everything <= 100 is inside the 100 bound.
        assert data["buckets"]["100"] == 100
        assert data["buckets"]["+Inf"] == 100
        assert data["buckets"]["0.01"] == 0

    def test_histogram_reservoir_is_bounded_and_deterministic(self):
        a, b = Histogram(reservoir_size=64), Histogram(reservoir_size=64)
        for value in range(10_000):
            a.observe(value)
            b.observe(value)
        assert len(a._reservoir) == 64
        assert a.percentile(50) == b.percentile(50)  # seeded identically

    def test_registry_labels_key_instruments(self):
        registry = MetricsRegistry()
        search = registry.counter("q_total", {"op": "search"})
        topk = registry.counter("q_total", {"op": "topk"})
        assert search is not topk
        assert registry.counter("q_total", {"op": "search"}) is search
        search.inc()
        snap = registry.snapshot()
        assert snap["counters"]['q_total{op="search"}'] == 1.0
        assert snap["counters"]['q_total{op="topk"}'] == 0.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["c"] == 2.0
        assert snap["gauges"]["g"] == 7.0
        assert snap["histograms"]["h"]["count"] == 1

    def test_render_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", {"op": "search"}).inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("latency_ms").observe(0.2)
        text = registry.render_prometheus()
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{op="search"} 3' in text
        assert "# TYPE depth gauge" in text
        assert 'latency_ms_bucket{le="+Inf"} 1' in text
        assert "latency_ms_count 1" in text

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"] == {}
        assert registry.counter("c").value == 0.0


# ---------------------------------------------------------------------------
# slow-query log
# ---------------------------------------------------------------------------

class TestSlowQueryLog:
    def test_threshold(self):
        log = SlowQueryLog(threshold_ms=10.0)
        assert not log.maybe_record(5.0, ["xml"], "elca", "join")
        assert log.maybe_record(10.0, ["xml"], "elca", "join")
        assert len(log) == 1
        record = log.records()[0]
        assert record.terms == ["xml"]
        assert record.elapsed_ms == 10.0

    def test_ring_capacity_and_dropped(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=2)
        for i in range(5):
            log.maybe_record(float(i), [str(i)], "elca", "join")
        assert len(log) == 2
        assert log.dropped == 3
        assert [r.terms for r in log.records()] == [["3"], ["4"]]
        log.clear()
        assert len(log) == 0 and log.dropped == 0

    def test_jsonl_file(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(threshold_ms=0.0, path=str(path))
        tracer = Tracer()
        with tracer.span("query"):
            pass
        log.maybe_record(42.0, ["xml", "data"], "elca", "join", k=5,
                         stats={"joins": 3}, trace_root=tracer.last_root())
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["terms"] == ["xml", "data"]
        assert entry["k"] == 5
        assert entry["stats"]["joins"] == 3
        assert entry["trace"]["name"] == "query"

    def test_database_threshold_wiring(self, small_db):
        db = XMLDatabase.from_xml_text(
            small_db.tree.to_xml(), slow_query_ms=0.0,
            metrics=MetricsRegistry())
        db.search("xml data")
        assert len(db.slow_log) == 1
        record = db.slow_log.records()[0]
        assert record.terms == ["xml", "data"]
        assert record.stats["levels_processed"] >= 1
        assert record.trace is None  # NullTracer by default

    def test_trace_attached_when_tracing(self, small_db):
        db = XMLDatabase.from_xml_text(
            small_db.tree.to_xml(), slow_query_ms=0.0, tracer=Tracer(),
            metrics=MetricsRegistry())
        db.search("xml data", use_cache=False)
        record = db.slow_log.records()[0]
        assert record.trace is not None
        assert record.trace["name"] == "query"
        names = [c["name"] for c in record.trace["children"]]
        assert "join" in names


# ---------------------------------------------------------------------------
# ExecutionStats merging
# ---------------------------------------------------------------------------

class TestExecutionStatsMerge:
    def test_merge_adds_counters_and_concatenates_plans(self):
        a = ExecutionStats(joins=2, merge_joins=1, index_joins=1,
                           tuples_scanned=10)
        a.per_level_plan = [(3, "merge")]
        b = ExecutionStats(joins=1, index_joins=1, tuples_scanned=5,
                           cache_hits=1)
        b.per_level_plan = [(2, "index")]
        a.merge(b)
        assert a.joins == 3
        assert a.tuples_scanned == 15
        assert a.cache_hits == 1
        assert a.per_level_plan == [(3, "merge"), (2, "index")]

    def test_iadd_and_add(self):
        a = ExecutionStats(joins=1)
        b = ExecutionStats(joins=2)
        a += b
        assert a.joins == 3
        c = ExecutionStats(lookups=1) + ExecutionStats(lookups=2)
        assert c.lookups == 3

    def test_merge_does_not_alias_plan_list(self):
        a, b = ExecutionStats(), ExecutionStats()
        b.per_level_plan = [(1, "merge")]
        a.merge(b)
        b.per_level_plan.append((0, "index"))
        assert a.per_level_plan == [(1, "merge")]


# ---------------------------------------------------------------------------
# pipeline integration: traced queries
# ---------------------------------------------------------------------------

def _fresh_db(source_db, **kwargs):
    """A private-registry copy of a fixture database (fixtures are
    shared and read-only; tests that publish metrics need their own)."""
    kwargs.setdefault("metrics", MetricsRegistry())
    return XMLDatabase.from_xml_text(source_db.tree.to_xml(), **kwargs)


class TestTracedPipeline:
    def test_search_span_tree_shape(self, small_db):
        tracer = Tracer()
        db = _fresh_db(small_db, tracer=tracer)
        db.search("xml data", use_cache=False)
        root = tracer.last_root()
        assert root.name == "query"
        assert root.tags["op"] == "search"
        assert root.tags["terms"] == ["xml", "data"]
        names = [s.name for s in root.walk()]
        assert "parse" in names
        assert "postings_fetch" in names
        assert "join" in names and "score" in names and "erase" in names

    def test_search_plan_tags_match_stats_vectorized(self, small_db):
        self._check_plan_tags(small_db, vectorized=True)

    def test_search_plan_tags_match_stats_scalar(self, small_db):
        self._check_plan_tags(small_db, vectorized=False)

    @staticmethod
    def _check_plan_tags(small_db, vectorized):
        tracer = Tracer()
        engine = JoinBasedSearch(small_db.columnar_index,
                                 vectorized=vectorized, tracer=tracer)
        with tracer.span("query"):
            _results, stats = engine.evaluate(["xml", "data"], "elca")
        assert stats.per_level_plan  # non-trivial query
        assert spans_per_level_plan(tracer.last_root()) == \
            stats.per_level_plan

    def test_topk_plan_tags_match_stats(self, small_db):
        tracer = Tracer()
        engine = TopKKeywordSearch(small_db.columnar_index, tracer=tracer)
        with tracer.span("query"):
            result = engine.search(["xml", "data"], k=2)
        assert result.stats.per_level_plan
        assert spans_per_level_plan(tracer.last_root()) == \
            result.stats.per_level_plan

    def test_topk_termination_span(self, small_db):
        tracer = Tracer()
        db = _fresh_db(small_db, tracer=tracer)
        result = db.search_topk("xml data", k=2)
        root = tracer.last_root()
        term = root.find("topk_termination")
        assert len(term) == 1
        assert term[0].tags["k"] == 2
        assert term[0].tags["emitted"] == len(result)
        assert term[0].tags["terminated_early"] == result.terminated_early

    def test_rank_join_progress_tags(self, small_db):
        tracer = Tracer()
        db = _fresh_db(small_db, tracer=tracer)
        db.search_topk("xml data", k=2)
        spans = tracer.last_root().find("rank_join")
        assert spans
        for key in ("tuples_retrieved", "completed", "pending", "groups"):
            assert key in spans[0].tags
        assert spans[0].tags["completed"] >= 1  # top level completes

    def test_join_span_cardinality_tags(self, small_db):
        tracer = Tracer()
        db = _fresh_db(small_db, tracer=tracer)
        db.search("xml data", use_cache=False)
        joins = tracer.last_root().find("join")
        assert joins
        for span in joins:
            assert span.tags["output"] <= min(span.tags["inputs"])

    def test_cache_hit_span(self, small_db):
        tracer = Tracer()
        db = _fresh_db(small_db, tracer=tracer)
        db.search("xml data")
        db.search("xml data")
        hits = [s.tags["hit"] for root in tracer.roots()
                for s in root.find("cache_lookup")]
        assert hits == [False, True]
        # The cached query records no evaluation spans.
        assert not tracer.roots()[-1].find("join")

    def test_query_metrics_published(self, small_db):
        db = _fresh_db(small_db)
        db.search("xml data")
        db.search("xml data")  # result-cache hit
        db.search_topk("xml data", k=2)
        snap = db.metrics_snapshot()
        assert snap["counters"]['repro_queries_total{op="search"}'] == 2.0
        assert snap["counters"]['repro_queries_total{op="topk"}'] == 1.0
        latency = snap["histograms"]['repro_query_latency_ms{op="search"}']
        assert latency["count"] == 2
        assert latency["p50"] > 0 and latency["p99"] >= latency["p50"]
        assert snap["gauges"]['repro_cache_hit_ratio{cache="results"}'] \
            == pytest.approx(0.5)
        joins = sum(v for k, v in snap["counters"].items()
                    if k.startswith("repro_level_joins_total"))
        assert joins >= 1


# ---------------------------------------------------------------------------
# search_batch summary
# ---------------------------------------------------------------------------

class TestBatchSummary:
    def test_batch_result_is_still_a_list(self, small_db):
        db = _fresh_db(small_db)
        batch = db.search_batch(["xml data", "keyword search"])
        assert isinstance(batch, list)
        assert batch.n_queries == len(batch) == 2
        assert all(isinstance(entry, list) for entry in batch)

    def test_summary_merges_per_query_stats(self, small_db):
        db = _fresh_db(small_db)
        batch = db.search_batch(["xml data", "xml data"], with_stats=True)
        per_query = [stats for _results, stats in batch]
        assert batch.summary.cache_hits == 1
        assert batch.summary.cache_misses == 1
        assert batch.summary.levels_processed == \
            sum(s.levels_processed for s in per_query)
        assert batch.summary.per_level_plan == \
            per_query[0].per_level_plan + per_query[1].per_level_plan

    def test_latencies_and_elapsed(self, small_db):
        db = _fresh_db(small_db)
        batch = db.search_batch(["xml data", "keyword search"])
        assert len(batch.latencies_ms) == 2
        assert all(ms >= 0 for ms in batch.latencies_ms)
        assert batch.elapsed_ms > 0

    def test_batch_metrics(self, small_db):
        db = _fresh_db(small_db)
        db.search_batch(["xml data", "keyword search"], threads=2)
        snap = db.metrics_snapshot()
        assert snap["counters"]["repro_batch_queries_total"] == 2.0
        assert snap["gauges"]["repro_batch_queue_depth"] == 0.0
        assert snap["counters"]['repro_queries_total{op="batch"}'] == 2.0


# ---------------------------------------------------------------------------
# overhead guard
# ---------------------------------------------------------------------------

class CountingNullTracer(NullTracer):
    """NullTracer that counts `span` calls -- the disabled-tracing cost
    is exactly this many no-op calls."""

    def __init__(self):
        self.calls = 0

    def span(self, name, **tags):
        self.calls += 1
        return NULL_SPAN


class TestOverheadGuard:
    def test_span_count_is_o_levels_not_o_candidates(self, corpus_db):
        """Disabled tracing must cost O(levels) span calls per query,
        never O(candidates): a per-candidate span would blow this
        budget by an order of magnitude."""
        counting = CountingNullTracer()
        db = _fresh_db(corpus_db, tracer=counting)
        db.search("gamma beta", use_cache=False)  # frequent terms
        depth = db.tree.depth
        # query + parse + cache_lookup + postings_fetch + <= 4 spans
        # per level (join/score/erase/rank_join) with headroom.
        budget = 4 + 6 * depth
        assert 0 < counting.calls <= budget
        counting.calls = 0
        db.search_topk("gamma beta", k=5)
        assert 0 < counting.calls <= budget

    def test_disabled_tracing_overhead_within_budget(self, corpus_db):
        """Arithmetic form of the <=5% guard: (span calls per query) x
        (measured cost of one no-op span) must be under 5% of the
        query's wall time.  Deterministic enough for CI: the no-op is
        ~100ns while the query is milliseconds."""
        import time

        counting = CountingNullTracer()
        db = _fresh_db(corpus_db, tracer=counting)

        def run():
            db.search("gamma beta", use_cache=False)

        run()  # warm indexes/postings outside the timed region
        query_ms = min(_timed(run) for _ in range(3))
        calls = counting.calls // 4  # span calls of one query

        null = NullTracer()

        def null_spans():
            for _ in range(calls):
                with null.span("x") as span:
                    span.tag(a=1)

        overhead_ms = min(_timed(null_spans) for _ in range(3))
        assert overhead_ms <= 0.05 * query_ms

    def test_deadline_polling_overhead_within_budget(self, corpus_db):
        """Same arithmetic guard for query budgets: (deadline polls per
        query) x (measured cost of one `expired()` call) must stay
        under 5% of the query's wall time.  Polls happen once per level
        on the complete-search path and once per rank-join retrieval on
        the top-K path, so the count is bounded by the work counters."""
        from repro.reliability import Deadline

        db = _fresh_db(corpus_db)

        def run():
            db.search("gamma beta", use_cache=False,
                      deadline=Deadline(3_600_000.0))

        run()  # warm indexes/postings outside the timed region
        query_ms = min(_timed(run) for _ in range(3))

        _results, stats = db.search("gamma beta", use_cache=False,
                                    with_stats=True)
        top = db.search_topk("gamma beta", k=10)
        # Level polls, rank-join cadence polls (one per 16 retrievals,
        # the emission-attempt cadence), and generous headroom for the
        # per-fetch and buffer-drain checks.
        polls = 2 * (stats.levels_processed
                     + top.stats.tuples_scanned // 16 + 16)

        never = Deadline(3_600_000.0)

        def poll():
            for _ in range(polls):
                never.expired()

        overhead_ms = min(_timed(poll) for _ in range(3))
        assert overhead_ms <= 0.05 * query_ms

    def test_checksum_verification_overhead_within_budget(
            self, small_db, tmp_path):
        """Digesting the stored blobs must cost under 5% of an
        unverified load: (bytes hashed) x (measured per-byte digest
        cost), against the `verify="off"` wall time."""
        import json
        import os

        from repro.diskdb import load_database
        from repro.reliability.checksum import checksum

        path = str(tmp_path / "db")
        small_db.save(path)
        with open(os.path.join(path, "meta.json")) as fh:
            manifest = json.load(fh)["checksum"]
        blobs = []
        for name in manifest["files"]:
            with open(os.path.join(path, name), "rb") as fh:
                blobs.append(fh.read())

        def load_unverified():
            load_database(path, verify="off")

        load_unverified()
        load_ms = min(_timed(load_unverified) for _ in range(3))

        def digest_all():
            for blob in blobs:
                checksum(blob, manifest["algorithm"])

        digest_ms = min(_timed(digest_all) for _ in range(3))
        assert digest_ms <= 0.05 * load_ms


def _timed(fn):
    import time

    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) * 1000.0


# ---------------------------------------------------------------------------
# diskdb byte accounting
# ---------------------------------------------------------------------------

class TestDiskMetrics:
    def test_save_and_load_publish_bytes(self, small_db, tmp_path):
        registry = get_registry()
        written = registry.counter("repro_disk_bytes_written_total")
        read = registry.counter("repro_disk_bytes_read_total")
        written_before, read_before = written.value, read.value
        path = str(tmp_path / "db")
        small_db.save(path)
        assert written.value > written_before
        db = XMLDatabase.open(path)
        assert read.value > read_before
        assert len(db) == len(small_db)

    def test_open_forwards_observability_kwargs(self, small_db, tmp_path):
        path = str(tmp_path / "db")
        small_db.save(path)
        tracer = Tracer()
        registry = MetricsRegistry()
        db = XMLDatabase.open(path, tracer=tracer, metrics=registry,
                              slow_query_ms=0.0)
        db.search("xml data", use_cache=False)
        assert tracer.last_root() is not None
        assert len(db.slow_log) == 1
        snap = registry.snapshot()
        assert snap["counters"]['repro_queries_total{op="search"}'] == 1.0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestTraceCLI:
    def test_trace_verb(self, tmp_path, capsys):
        from repro.cli import main
        from tests.conftest import SMALL_XML

        doc = tmp_path / "doc.xml"
        doc.write_text(SMALL_XML, encoding="utf-8")
        out = tmp_path / "trace.jsonl"
        metrics_out = tmp_path / "metrics.json"
        assert main(["trace", str(doc), "xml data",
                     "--out", str(out),
                     "--metrics-out", str(metrics_out)]) == 0
        text = capsys.readouterr().out
        assert "query" in text and "join" in text
        spans = [json.loads(line)
                 for line in out.read_text().strip().splitlines()]
        assert spans[0]["name"] == "query"
        snap = json.loads(metrics_out.read_text())
        assert 'repro_queries_total{op="search"}' in snap["counters"]

    def test_trace_verb_topk(self, tmp_path, capsys):
        from repro.cli import main
        from tests.conftest import SMALL_XML

        doc = tmp_path / "doc.xml"
        doc.write_text(SMALL_XML, encoding="utf-8")
        assert main(["trace", str(doc), "xml data", "-k", "2"]) == 0
        text = capsys.readouterr().out
        assert "topk_termination" in text

    def test_trace_verb_prometheus_and_slowlog(self, tmp_path, capsys):
        from repro.cli import main
        from tests.conftest import SMALL_XML

        doc = tmp_path / "doc.xml"
        doc.write_text(SMALL_XML, encoding="utf-8")
        assert main(["trace", str(doc), "xml data", "--prometheus",
                     "--slow-ms", "0"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in text
        assert "slow query" in text


# ---------------------------------------------------------------------------
# thread-safety under search_batch(threads=N)
# ---------------------------------------------------------------------------

class TestThreadSafety:
    QUERIES = ["gamma beta", "cx cy", "c3a c3b", "gamma cx"]

    def _counters(self, db):
        return db.metrics.snapshot()["counters"]

    def test_counter_totals_match_single_thread(self, corpus_db):
        """The registry is shared across worker threads; totals after a
        threaded batch must equal the single-thread sums exactly --
        a lost update under contention would show up as a short count."""
        serial = _fresh_db(corpus_db)
        serial.search_batch(self.QUERIES * 8, threads=1, use_cache=False)
        threaded = _fresh_db(corpus_db)
        threaded.search_batch(self.QUERIES * 8, threads=4, use_cache=False)
        serial_counts = self._counters(serial)
        threaded_counts = self._counters(threaded)
        assert set(serial_counts) == set(threaded_counts)
        for name, value in serial_counts.items():
            assert threaded_counts[name] == value, name

    def test_phase_histogram_counts_match_single_thread(self, corpus_db):
        """Same invariant for the profiler's histograms: every query
        publishes one observation per touched phase regardless of which
        worker thread ran it."""
        serial = _fresh_db(corpus_db)
        serial.search_batch(self.QUERIES * 4, threads=1, use_cache=False)
        threaded = _fresh_db(corpus_db)
        threaded.search_batch(self.QUERIES * 4, threads=4, use_cache=False)
        serial_hist = serial.metrics.snapshot()["histograms"]
        threaded_hist = threaded.metrics.snapshot()["histograms"]
        serial_phases = {key: data["count"]
                         for key, data in serial_hist.items()
                         if key.startswith("repro_phase_time_ms")}
        threaded_phases = {key: data["count"]
                           for key, data in threaded_hist.items()
                           if key.startswith("repro_phase_time_ms")}
        assert serial_phases == threaded_phases
        assert serial_phases  # the profiler was on

    def test_spans_never_interleave_across_threads(self, corpus_db):
        """Each worker thread builds its spans on a thread-local stack,
        so every root must be a self-consistent query tree: one root
        per query, every child a pipeline stage, and the levels under
        it consistent with a single execution -- a cross-thread leak
        would splice one query's spans under another's root."""
        tracer = Tracer(capacity=64)
        db = _fresh_db(corpus_db, tracer=tracer)
        results = db.search_batch(self.QUERIES * 2, threads=4,
                                  use_cache=False, with_stats=True)
        roots = [root for root in tracer.roots() if root.name == "query"]
        assert len(roots) == len(self.QUERIES) * 2
        stage_names = {"parse", "cache_lookup", "postings_fetch", "join",
                       "score", "erase", "rank_join", "topk_termination"}
        stats_by_terms = {}
        for _results, stats in results:
            key = tuple(stats.per_level_plan)
            stats_by_terms.setdefault(key, 0)
        for root in roots:
            assert all(child.name in stage_names
                       for child in root.children), \
                [c.name for c in root.children]
            # The span tree's per-level plan must be one query's plan,
            # never a merge of two (interleaving would double levels).
            plan = spans_per_level_plan(root)
            assert tuple(plan) in stats_by_terms
            levels = [level for level, _alg in plan]
            assert levels == sorted(set(levels), reverse=True)

    def test_threaded_results_equal_serial_results(self, corpus_db):
        db = _fresh_db(corpus_db)
        serial = db.search_batch(self.QUERIES, threads=1, use_cache=False)
        threaded = db.search_batch(self.QUERIES, threads=4,
                                   use_cache=False)
        for left, right in zip(serial, threaded):
            assert [r.node.dewey for r in left] == \
                [r.node.dewey for r in right]


# ---------------------------------------------------------------------------
# histogram quantile accuracy (the +/-7 rank-point contract)
# ---------------------------------------------------------------------------

class TestHistogramQuantileAccuracy:
    RANK_TOLERANCE = 7  # percentile points; documented on Histogram

    def _assert_rank_accurate(self, histogram, samples):
        """The histogram's pNN must lie between the true values at
        ranks NN-7 and NN+7 of the full sample."""
        import numpy as np

        ordered = np.sort(np.asarray(samples))
        for p in (50.0, 95.0, 99.0):
            estimate = histogram.percentile(p)
            low = np.percentile(ordered, max(0.0, p - self.RANK_TOLERANCE))
            high = np.percentile(ordered, min(100.0,
                                              p + self.RANK_TOLERANCE))
            assert low <= estimate <= high, \
                (p, estimate, low, high)

    def test_bimodal_distribution(self):
        """Fast-path/slow-path latency mix: two tight modes 100x apart.
        Rank accuracy must place p50 in the low mode and p95/p99 in
        the high mode -- a mid-gap estimate would be a rank error of
        tens of points."""
        import numpy as np

        rng = np.random.default_rng(42)
        fast = rng.normal(1.0, 0.05, size=3000)
        slow = rng.normal(100.0, 5.0, size=1000)
        samples = np.concatenate([fast, slow])
        rng.shuffle(samples)
        histogram = Histogram()
        for value in samples:
            histogram.observe(float(value))
        self._assert_rank_accurate(histogram, samples)
        assert histogram.percentile(50) < 2.0     # low mode
        assert histogram.percentile(95) > 80.0    # high mode

    def test_heavy_tail_distribution(self):
        """Lognormal with sigma=2: the p99 is ~100x the median.  The
        reservoir keeps rank accuracy even though the tail values are
        spread over orders of magnitude."""
        import numpy as np

        rng = np.random.default_rng(1337)
        samples = rng.lognormal(mean=0.0, sigma=2.0, size=8000)
        histogram = Histogram()
        for value in samples:
            histogram.observe(float(value))
        self._assert_rank_accurate(histogram, samples)

    def test_small_sample_is_exact(self):
        """Below the reservoir size nothing is sampled away: nearest-
        rank percentiles over all observations."""
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        # Nearest rank over the zero-indexed sorted sample of 100:
        # p maps to index round(p/100 * 99).
        assert histogram.percentile(50) == 51.0
        assert histogram.percentile(99) == 99.0
        assert histogram.percentile(100) == 100.0

    def test_deterministic_across_runs(self):
        """The seeded reservoir makes snapshots reproducible: two
        histograms fed the same stream report identical percentiles."""
        import numpy as np

        rng = np.random.default_rng(7)
        samples = rng.exponential(10.0, size=5000)
        first, second = Histogram(), Histogram()
        for value in samples:
            first.observe(float(value))
            second.observe(float(value))
        for p in (50, 90, 95, 99):
            assert first.percentile(p) == second.percentile(p)


# ---------------------------------------------------------------------------
# profiler overhead guard
# ---------------------------------------------------------------------------

class TestProfilerOverheadGuard:
    def _count_boundaries(self, db, run):
        """Exact phase-boundary count of one query: install a counting
        profile as the thread's active profile (the db runs with
        NULL_PROFILER so it will not replace it) and let the real
        instrumentation points hit it."""
        from repro.obs import profiler as profiler_mod
        from repro.obs.profiler import QueryProfile

        class CountingProfile(QueryProfile):
            __slots__ = ("boundaries",)

            def __init__(self):
                super().__init__()
                self.boundaries = 0

            def enter(self, phase):
                self.boundaries += 1
                super().enter(phase)

        counting = CountingProfile()
        profiler_mod._ACTIVE.profile = counting
        try:
            run()
        finally:
            profiler_mod._ACTIVE.profile = None
        return counting.boundaries

    def test_boundary_count_is_o_levels_not_o_candidates(self, corpus_db):
        """The always-on profiler must cost O(levels) phase boundaries
        per query, the same shape as the span budget -- a per-tuple
        boundary would blow it by an order of magnitude."""
        from repro.obs.profiler import NULL_PROFILER

        db = _fresh_db(corpus_db, profiler=NULL_PROFILER)
        budget = 4 + 6 * db.tree.depth  # the tracer span budget
        complete = self._count_boundaries(
            db, lambda: db.search("gamma beta", use_cache=False))
        assert 0 < complete <= budget
        topk = self._count_boundaries(
            db, lambda: db.search_topk("gamma beta", k=5))
        assert 0 < topk <= budget

    def test_profiler_overhead_within_budget(self, corpus_db):
        """Arithmetic form of the <=5% guard, same shape as the tracing
        and deadline guards: (measured phase boundaries per query) x
        (measured cost of one active phase span) plus the per-query
        scope setup must stay under 5% of the query's wall time."""
        from repro.obs.profiler import (NULL_PROFILER, PhaseProfiler,
                                        profile_phase)

        db = _fresh_db(corpus_db, profiler=NULL_PROFILER)

        def run():
            db.search("gamma beta", use_cache=False)

        run()  # warm indexes/postings outside the timed region
        query_ms = min(_timed(run) for _ in range(3))
        boundaries = self._count_boundaries(db, run)

        profiler = PhaseProfiler(metrics=MetricsRegistry())

        def boundary_cost():
            with profiler.profile():
                for _ in range(boundaries):
                    with profile_phase("join"):
                        pass

        overhead_ms = min(_timed(boundary_cost) for _ in range(3))
        assert overhead_ms <= 0.05 * query_ms

    def test_disabled_profile_phase_is_nearly_free(self, corpus_db):
        """With no active profile the instrumentation is one thread-
        local read returning a shared no-op: its measured cost over a
        query's worth of call sites must also clear the 5% bar with a
        wide margin."""
        from repro.obs.profiler import NULL_PROFILER, profile_phase

        db = _fresh_db(corpus_db, profiler=NULL_PROFILER)

        def run():
            db.search("gamma beta", use_cache=False)

        run()
        query_ms = min(_timed(run) for _ in range(3))
        calls = self._count_boundaries(db, run)

        def noop_calls():
            for _ in range(calls):
                with profile_phase("join"):
                    pass

        overhead_ms = min(_timed(noop_calls) for _ in range(3))
        assert overhead_ms <= 0.05 * query_ms
