"""Tests for the index analytics report (`repro.obs.doctor`)."""

import json
import os

import pytest

from repro.diskdb import save_database
from repro.obs.doctor import (DOCTOR_SCHEMA, doctor_report,
                              format_doctor_report, run_checks)
from repro.serve.capture import WorkloadCapture


@pytest.fixture
def v3_dir(tmp_path, small_db):
    path = str(tmp_path / "db_v3")
    save_database(small_db, path, format_version=3)
    return path


@pytest.fixture
def sharded_dir(tmp_path, small_db):
    path = str(tmp_path / "db_sharded")
    save_database(small_db, path, format_version=3, shards=2)
    return path


@pytest.fixture
def v2_dir(tmp_path, small_db):
    path = str(tmp_path / "db_v2")
    save_database(small_db, path, format_version=2)
    return path


class TestDoctorReport:
    def test_schema_and_postings_shape(self, v3_dir, small_db):
        report = doctor_report(v3_dir)
        assert report["schema"] == DOCTOR_SCHEMA
        assert report["container_format"] == "v3"
        assert not report["sharded"]
        postings = report["postings"]
        assert postings["terms"] == len(small_db.columnar_index.vocabulary)
        assert postings["total_bytes"] > 0
        assert postings["size_bytes"]["max"] >= postings["size_bytes"]["p50"]
        assert postings["heavy_hitters"]
        top = postings["heavy_hitters"][0]
        assert 0.0 < top["share"] <= 1.0

    def test_heavy_hitters_sorted_desc(self, v3_dir):
        hitters = doctor_report(v3_dir)["postings"]["heavy_hitters"]
        sizes = [h["bytes"] for h in hitters]
        assert sizes == sorted(sizes, reverse=True)

    def test_compression_by_level_and_codec(self, v3_dir):
        compression = doctor_report(v3_dir)["compression"]
        assert compression["by_level"]
        for entry in compression["by_level"].values():
            assert entry["raw"] >= entry["compressed"] > 0
            assert 0.0 < entry["ratio"] <= 1.0
        assert set(compression["by_codec"]) <= {"delta", "rle"}

    def test_no_codecs_skips_scan(self, v3_dir):
        report = doctor_report(v3_dir, codecs=False)
        assert "compression" not in report

    def test_sharded_skew_and_per_shard(self, sharded_dir):
        report = doctor_report(sharded_dir)
        assert report["sharded"]
        shards = report["shards"]
        assert shards["count"] == 2
        assert len(shards["per_shard"]) == 2
        assert shards["byte_skew"] >= 1.0
        assert shards["term_skew"] >= 1.0
        for entry in shards["per_shard"]:
            assert entry["terms"] > 0
            assert entry["postings_bytes"] > 0

    def test_heavy_hitters_merge_across_shards(self, v3_dir,
                                               sharded_dir):
        """A term split across shards reports its whole-index size."""
        whole = {h["term"]: h["bytes"]
                 for h in doctor_report(v3_dir, heavy=100)
                 ["postings"]["heavy_hitters"]}
        sharded = {h["term"]: h["bytes"]
                   for h in doctor_report(sharded_dir, heavy=100)
                   ["postings"]["heavy_hitters"]}
        assert set(sharded) == set(whole)

    def test_v2_container_scans_terms(self, v2_dir):
        report = doctor_report(v2_dir)
        assert report["container_format"] == "v2"
        assert report["postings"]["terms"] > 0
        # the codec scan needs v3 payload layout; v2 skips it
        assert "compression" not in report

    def test_cache_estimate_from_workload(self, tmp_path, v3_dir):
        workload = str(tmp_path / "w.jsonl")
        capture = WorkloadCapture(workload)
        for _ in range(3):
            capture.record("topk", ["xml", "data"], "elca", 5, [],
                           elapsed_ms=1.0)
        capture.record("topk", ["keyword"], "elca", 5, [],
                       elapsed_ms=1.0)
        capture.close()
        cache = doctor_report(v3_dir, workload=workload)["cache"]
        assert cache["queries"] == 4
        assert cache["term_fetches"] == 7
        assert cache["unique_terms"] == 3
        assert cache["max_hit_ratio"] == pytest.approx(4 / 7)
        assert cache["max_bytes_saved"] > 0
        assert cache["working_set_bytes"] > 0
        assert cache["hot_terms"][0]["fetches"] == 3

    def test_format_renders(self, sharded_dir):
        text = format_doctor_report(doctor_report(sharded_dir))
        assert "postings:" in text
        assert "shards: 2" in text
        assert "heavy:" in text


class TestDoctorChecks:
    def test_pass_with_default_thresholds(self, sharded_dir):
        report = doctor_report(sharded_dir)
        assert run_checks(report, max_byte_skew=10.0,
                          max_term_skew=None, max_term_share=None) == []

    def test_byte_skew_violation(self, sharded_dir):
        report = doctor_report(sharded_dir)
        failures = run_checks(report, max_byte_skew=0.5,
                              max_term_skew=None, max_term_share=None)
        assert failures and "byte skew" in failures[0]

    def test_term_share_violation(self, v3_dir):
        report = doctor_report(v3_dir)
        failures = run_checks(report, max_byte_skew=10.0,
                              max_term_skew=None, max_term_share=0.0001)
        assert failures and "share" in failures[0].lower()


class TestDoctorCLI:
    def test_text_and_json(self, sharded_dir, capsys):
        from repro.cli import main

        assert main(["doctor", sharded_dir]) == 0
        assert "repro doctor:" in capsys.readouterr().out
        assert main(["doctor", sharded_dir, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == DOCTOR_SCHEMA

    def test_out_writes_report(self, tmp_path, sharded_dir, capsys):
        from repro.cli import main

        out = str(tmp_path / "doctor.json")
        assert main(["doctor", sharded_dir, "--out", out]) == 0
        assert json.loads(open(out, encoding="utf-8").read())["postings"]

    def test_check_gate_exit_codes(self, sharded_dir, capsys):
        from repro.cli import main

        assert main(["doctor", sharded_dir, "--check",
                     "--max-shard-byte-skew", "10.0"]) == 0
        capsys.readouterr()
        assert main(["doctor", sharded_dir, "--check",
                     "--max-shard-byte-skew", "0.5"]) == 1
        assert "byte skew" in capsys.readouterr().out

    def test_missing_database_exits_3(self, capsys):
        from repro.cli import EXIT_MISSING, main

        assert main(["doctor", "/nonexistent-db"]) == EXIT_MISSING
        assert "error" in capsys.readouterr().err
