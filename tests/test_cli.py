"""Tests for the command-line interface (`repro.cli`)."""

import os

import pytest

from repro.cli import main
from tests.conftest import SMALL_XML


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(SMALL_XML, encoding="utf-8")
    return str(path)


@pytest.fixture
def db_dir(tmp_path, xml_file):
    out = str(tmp_path / "db")
    assert main(["index", xml_file, out]) == 0
    return out


class TestSearch:
    def test_search_xml_file(self, xml_file, capsys):
        assert main(["search", xml_file, "xml data"]) == 0
        out = capsys.readouterr().out
        assert "results in" in out
        assert "<section>" in out

    def test_search_database_dir(self, db_dir, capsys):
        assert main(["search", db_dir, "xml data"]) == 0
        assert "<section>" in capsys.readouterr().out

    def test_semantics_flag(self, xml_file, capsys):
        assert main(["search", xml_file, "xml data",
                     "--semantics", "slca"]) == 0
        assert "results" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm", ["join", "stack", "index"])
    def test_algorithm_flag(self, xml_file, algorithm, capsys):
        assert main(["search", xml_file, "xml data",
                     "--algorithm", algorithm]) == 0

    def test_limit_truncates_output(self, xml_file, capsys):
        assert main(["search", xml_file, "xml", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "more" in out

    def test_missing_file_error(self, capsys):
        from repro.cli import EXIT_MISSING

        assert main(["search", "/nonexistent.xml", "xml"]) == EXIT_MISSING
        assert "error" in capsys.readouterr().err


class TestTopK:
    def test_topk(self, xml_file, capsys):
        assert main(["topk", xml_file, "xml data", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count(". <") <= 2

    @pytest.mark.parametrize("algorithm", ["topk-join", "rdil", "hybrid"])
    def test_topk_algorithms(self, db_dir, algorithm, capsys):
        assert main(["topk", db_dir, "xml data", "-k", "2",
                     "--algorithm", algorithm]) == 0


class TestIndexAndGenerate:
    def test_index_creates_database(self, db_dir):
        assert os.path.exists(os.path.join(db_dir, "meta.json"))

    def test_generate_dblp(self, tmp_path, capsys):
        out = str(tmp_path / "gen")
        assert main(["generate", "dblp", out, "--papers", "50",
                     "--seed", "3"]) == 0
        assert os.path.exists(os.path.join(out, "columnar.bin"))
        assert "generated dblp" in capsys.readouterr().out

    def test_generate_xmark(self, tmp_path, capsys):
        out = str(tmp_path / "gen")
        assert main(["generate", "xmark", out, "--scale", "0.002"]) == 0
        assert os.path.exists(os.path.join(out, "dewey.bin"))


class TestInfo:
    def test_info(self, db_dir, capsys):
        assert main(["info", db_dir]) == 0
        out = capsys.readouterr().out
        assert "vocabulary" in out
        assert "join-based IL" in out

    def test_info_on_xml(self, xml_file, capsys):
        assert main(["info", xml_file]) == 0
        assert "nodes" in capsys.readouterr().out


class TestBench:
    def test_bench_delegates_to_harness(self, monkeypatch, capsys):
        calls = {}

        def fake_main(config=None):
            calls["config"] = config

        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "main", fake_main)
        assert main(["bench", "--small"]) == 0
        assert calls["config"] is not None
        assert calls["config"].n_papers < 10_000


class TestParser:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
