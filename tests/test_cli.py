"""Tests for the command-line interface (`repro.cli`)."""

import os

import pytest

from repro.cli import main
from tests.conftest import SMALL_XML


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(SMALL_XML, encoding="utf-8")
    return str(path)


@pytest.fixture
def db_dir(tmp_path, xml_file):
    out = str(tmp_path / "db")
    assert main(["index", xml_file, out]) == 0
    return out


class TestSearch:
    def test_search_xml_file(self, xml_file, capsys):
        assert main(["search", xml_file, "xml data"]) == 0
        out = capsys.readouterr().out
        assert "results in" in out
        assert "<section>" in out

    def test_search_database_dir(self, db_dir, capsys):
        assert main(["search", db_dir, "xml data"]) == 0
        assert "<section>" in capsys.readouterr().out

    def test_semantics_flag(self, xml_file, capsys):
        assert main(["search", xml_file, "xml data",
                     "--semantics", "slca"]) == 0
        assert "results" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm", ["join", "stack", "index"])
    def test_algorithm_flag(self, xml_file, algorithm, capsys):
        assert main(["search", xml_file, "xml data",
                     "--algorithm", algorithm]) == 0

    def test_limit_truncates_output(self, xml_file, capsys):
        assert main(["search", xml_file, "xml", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "more" in out

    def test_missing_file_error(self, capsys):
        from repro.cli import EXIT_MISSING

        assert main(["search", "/nonexistent.xml", "xml"]) == EXIT_MISSING
        assert "error" in capsys.readouterr().err


class TestTopK:
    def test_topk(self, xml_file, capsys):
        assert main(["topk", xml_file, "xml data", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count(". <") <= 2

    @pytest.mark.parametrize("algorithm", ["topk-join", "rdil", "hybrid"])
    def test_topk_algorithms(self, db_dir, algorithm, capsys):
        assert main(["topk", db_dir, "xml data", "-k", "2",
                     "--algorithm", algorithm]) == 0


class TestIndexAndGenerate:
    def test_index_creates_database(self, db_dir):
        assert os.path.exists(os.path.join(db_dir, "meta.json"))

    def test_generate_dblp(self, tmp_path, capsys):
        out = str(tmp_path / "gen")
        assert main(["generate", "dblp", out, "--papers", "50",
                     "--seed", "3"]) == 0
        assert os.path.exists(os.path.join(out, "columnar.bin"))
        assert "generated dblp" in capsys.readouterr().out

    def test_generate_xmark(self, tmp_path, capsys):
        out = str(tmp_path / "gen")
        assert main(["generate", "xmark", out, "--scale", "0.002"]) == 0
        assert os.path.exists(os.path.join(out, "dewey.bin"))


class TestInfo:
    def test_info(self, db_dir, capsys):
        assert main(["info", db_dir]) == 0
        out = capsys.readouterr().out
        assert "vocabulary" in out
        assert "join-based IL" in out

    def test_info_on_xml(self, xml_file, capsys):
        assert main(["info", xml_file]) == 0
        assert "nodes" in capsys.readouterr().out


class TestBench:
    def test_bench_delegates_to_harness(self, monkeypatch, capsys):
        calls = {}

        def fake_main(config=None):
            calls["config"] = config

        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "main", fake_main)
        assert main(["bench", "--small"]) == 0
        assert calls["config"] is not None
        assert calls["config"].n_papers < 10_000


class TestParser:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestInfoSharded:
    """Satellite: `repro info` on a sharded directory breaks the index
    down per shard -- terms, postings and on-disk bytes."""

    @pytest.fixture
    def sharded_dir(self, tmp_path, xml_file):
        from repro.api import XMLDatabase
        from repro.diskdb import save_database

        with open(xml_file, encoding="utf-8") as handle:
            db = XMLDatabase.from_xml_text(handle.read())
        out = str(tmp_path / "db_sharded")
        save_database(db, out, format_version=3, shards=2)
        return out

    def test_per_shard_breakdown(self, sharded_dir, capsys):
        assert main(["info", sharded_dir]) == 0
        out = capsys.readouterr().out
        assert "shards:      2" in out
        assert out.count("terms,") == 2
        assert out.count("postings") == 2
        assert out.count("KiB on disk") == 2

    def test_shard_lines_carry_counts(self, sharded_dir, capsys):
        import re

        assert main(["info", sharded_dir]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if "terms," in l]
        for line in lines:
            match = re.search(r"(\d+) terms, (\d+) postings, "
                              r"([\d.]+) KiB on disk", line)
            assert match, line
            assert int(match.group(1)) > 0
            assert int(match.group(2)) > 0
            assert float(match.group(3)) > 0


class TestMetricsCommand:
    """Satellite: the offline `repro metrics` path -- runs queries
    against a database and dumps the registry."""

    def test_json_snapshot_shape(self, db_dir, capsys):
        import json

        assert main(["metrics", db_dir, "--query", "xml data",
                     "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) >= {"counters", "gauges", "histograms"}
        families = set(snapshot["counters"]) | set(snapshot["histograms"])
        assert any(name.startswith("repro_query") for name in families)

    def test_prometheus_exposition(self, db_dir, capsys):
        assert main(["metrics", db_dir, "--query", "xml data",
                     "--query", "keyword search", "-k", "5"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out
        assert "repro_query_latency_ms" in out

    def test_empty_registry_ok(self, capsys):
        assert main(["metrics", "--json"]) == 0
        assert isinstance(__import__("json").loads(
            capsys.readouterr().out), dict)


class TestSLOCommand:
    """Satellite: the offline `repro slo` path against a recorded
    access log."""

    @pytest.fixture
    def access_log(self, tmp_path):
        import json
        import time

        path = tmp_path / "access.jsonl"
        now = time.time()
        records = []
        for i in range(20):
            records.append({"wall_time": now - (20 - i),
                            "status": 200, "outcome": "ok",
                            "elapsed_ms": 5.0, "endpoint": "topk"})
        records.append({"wall_time": now, "status": 500,
                        "outcome": "error", "elapsed_ms": 400.0,
                        "endpoint": "topk"})
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n",
                        encoding="utf-8")
        return str(path)

    def test_report_shape(self, access_log, capsys):
        import json

        assert main(["slo", access_log, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report.get("schema")
        assert "windows" in report or "availability" in report

    def test_text_report(self, access_log, capsys):
        assert main(["slo", access_log]) == 0
        assert capsys.readouterr().out.strip()

    def test_fail_on_alert_exit(self, access_log):
        # one 500 in 21 requests burns a 99.9% availability objective
        code = main(["slo", access_log, "--fail-on-alert",
                     "--availability-target", "0.999"])
        assert code in (0, 1)  # depends on burn-rate windows
        # with an impossible latency objective the alert must fire
        assert main(["slo", access_log, "--fail-on-alert",
                     "--latency-target-ms", "0.0001",
                     "--latency-target-ratio", "1.0"]) == 1

    def test_missing_log_exits_3(self, capsys):
        from repro.cli import EXIT_MISSING

        assert main(["slo", "/nonexistent.jsonl"]) == EXIT_MISSING
        assert "error" in capsys.readouterr().err
