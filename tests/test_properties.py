"""Property-based end-to-end tests: random trees, random keyword
placements, every algorithm must agree with the oracle.

These catch structural edge cases the corpora never produce: keywords on
inner nodes, occurrences stacked along one path, single-child chains,
keywords only at the root, etc.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import XMLDatabase
from repro.algorithms.base import sort_by_score
from repro.algorithms.oracle import SemanticsOracle
from repro.xmltree.tree import Node, XMLTree

KEYWORDS = ["kx", "ky", "kz"]


@st.composite
def labelled_tree(draw):
    """A random tree (<= ~30 nodes) whose nodes carry random keywords."""
    shape = draw(st.recursive(
        st.just(()),
        lambda c: st.lists(c, min_size=0, max_size=4),
        max_leaves=18,
    ))
    word_picks = draw(st.lists(
        st.lists(st.sampled_from(KEYWORDS + ["noise"]), max_size=3),
        min_size=1, max_size=64))
    counter = [0]

    def build(spec):
        i = counter[0] % len(word_picks)
        counter[0] += 1
        node = Node("n", " ".join(word_picks[i]))
        for child_spec in (spec if isinstance(spec, list) else []):
            node.add_child(build(child_spec))
        return node

    return XMLTree(build(shape)).freeze()


query_terms = st.lists(st.sampled_from(KEYWORDS), min_size=1, max_size=3,
                       unique=True)


def result_key(results):
    return [(r.node.dewey, round(r.score, 9)) for r in results]


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(labelled_tree(), query_terms,
       st.sampled_from(["elca", "slca"]))
def test_complete_algorithms_match_oracle(tree, terms, semantics):
    db = XMLDatabase.from_tree(tree)
    oracle = SemanticsOracle(db.tree, db.inverted_index)
    expected = result_key(oracle.evaluate(terms, semantics))
    for algorithm in ("join", "stack", "index"):
        got = result_key(db.search(terms, semantics=semantics,
                                   algorithm=algorithm))
        assert got == expected, algorithm


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(labelled_tree(), query_terms,
       st.sampled_from(["elca", "slca"]),
       st.integers(min_value=1, max_value=6))
def test_topk_algorithms_match_oracle(tree, terms, semantics, k):
    db = XMLDatabase.from_tree(tree)
    oracle = SemanticsOracle(db.tree, db.inverted_index)
    expected = [round(r.score, 9)
                for r in sort_by_score(oracle.evaluate(terms, semantics))[:k]]
    for algorithm in ("topk-join", "rdil", "hybrid"):
        got = db.search_topk(terms, k, semantics=semantics,
                             algorithm=algorithm)
        assert [round(r.score, 9) for r in got] == expected, algorithm


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(labelled_tree(), query_terms)
def test_eraser_modes_equivalent(tree, terms):
    from repro.algorithms.join_based import JoinBasedSearch

    db = XMLDatabase.from_tree(tree)
    bitmap, _ = JoinBasedSearch(db.columnar_index,
                                eraser_mode="bitmap").evaluate(terms, "elca")
    interval, _ = JoinBasedSearch(
        db.columnar_index, eraser_mode="interval").evaluate(terms, "elca")
    assert result_key(bitmap) == result_key(interval)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(labelled_tree(), query_terms,
       st.sampled_from(["merge", "index", "dynamic"]))
def test_join_policies_equivalent(tree, terms, policy):
    from repro.algorithms.join_based import JoinBasedSearch
    from repro.planner.plans import JoinPlanner

    db = XMLDatabase.from_tree(tree)
    expected = result_key(db.search(terms, algorithm="oracle"))
    got, _ = JoinBasedSearch(db.columnar_index,
                             planner=JoinPlanner(policy)).evaluate(
        terms, "elca")
    assert result_key(got) == expected
