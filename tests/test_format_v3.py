"""Format v3: the block-aligned, zero-copy columnar container.

Three claims under test:

* **Equivalence** -- a database saved as v1, v2 and v3 answers every
  query byte-identically (results, scores, witness tuples, and the
  section III-C ``per_level_plan``) under eager and lazy loads, clean
  or fault-injected disks alike.
* **Zero-copy** -- loading a v3 database never materializes the
  columnar file as ``bytes``: the `reliability.io.COPY_STATS` seam must
  record no copy event for the ``read-columnar`` op, and the column
  arrays served by the lazy index must be read-only views.
* **Integrity** -- the v2 corruption guarantees carry over: a flipped
  payload byte surfaces as `DatabaseCorruptError` naming the keyword,
  framing damage as a typed error, never a wrong answer.

The fault matrix honors ``REPRO_FAULT_SEED`` like `test_faults`.
"""

import os

import numpy as np
import pytest

from repro import XMLDatabase
from repro.diskdb import load_database, save_database
from repro.index import storage
from repro.reliability import (DatabaseCorruptError, DatabaseFormatError,
                               FaultInjector)
from repro.reliability.io import COPY_STATS, MappedFile, map_bytes
from tests.conftest import SMALL_XML

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

QUERIES = ["xml data", "keyword search", "data models", "xml",
           "relational data", "top data", "search processing",
           "keyword data xml", "title"]


def _build_db():
    return XMLDatabase.from_xml_text(SMALL_XML)


@pytest.fixture(scope="module")
def version_dirs(tmp_path_factory):
    """One directory per on-disk format, same database."""
    root = tmp_path_factory.mktemp("formats")
    db = _build_db()
    db.columnar_index
    db.inverted_index
    dirs = {}
    for version in (1, 2, 3):
        path = str(root / f"db-v{version}")
        save_database(db, path, format_version=version)
        dirs[version] = path
    return dirs


def _transcript(db):
    """Queries + top-K + plans, exact to the last bit."""
    out = []
    for query in QUERIES:
        results, stats = db.search(query, use_cache=False,
                                   with_stats=True)
        out.append(("search", query,
                    [(r.node.dewey, r.level, r.score, r.witness_scores)
                     for r in results],
                    list(stats.per_level_plan)))
        top = db.search_topk(query, k=3)
        out.append(("topk", query,
                    [(r.node.dewey, r.level, r.score, r.witness_scores)
                     for r in top],
                    list(top.stats.per_level_plan)))
    return out


class TestRoundTripMatrix:
    def test_v1_v2_v3_answer_identically(self, version_dirs):
        reference = _transcript(_build_db())
        for version, path in version_dirs.items():
            for lazy in (False, True):
                db = load_database(path, lazy=lazy,
                                   verify="lazy" if lazy else "eager")
                assert _transcript(db) == reference, \
                    f"divergence at format v{version}, lazy={lazy}"

    def test_matrix_under_fault_injection(self, version_dirs):
        """A faulty disk may fail a load with a typed error, but a
        load that *succeeds* answers exactly like the clean one."""
        reference = _transcript(_build_db())
        for version, path in version_dirs.items():
            for lazy in (False, True):
                injector = FaultInjector(error_rate=0.05,
                                         short_read_rate=0.05,
                                         seed=SEED)
                try:
                    db = load_database(
                        path, lazy=lazy,
                        verify="lazy" if lazy else "eager",
                        injector=injector)
                except (DatabaseCorruptError, DatabaseFormatError):
                    continue  # typed failure is an allowed outcome
                assert _transcript(db) == reference, \
                    (f"fault-injected v{version} lazy={lazy} diverged "
                     f"(REPRO_FAULT_SEED={SEED})")

    def test_vectorized_off_matches(self, version_dirs):
        reference = _transcript(_build_db())
        for lazy in (False, True):
            db = load_database(version_dirs[3], lazy=lazy,
                               verify="lazy" if lazy else "eager",
                               vectorized=False)
            assert _transcript(db) == reference


class TestZeroCopy:
    def test_no_columnar_copy_on_v3_load(self, version_dirs):
        COPY_STATS.reset()
        db = load_database(version_dirs[3], lazy=True, verify="lazy")
        for query in QUERIES:
            db.search(query, use_cache=False)
        assert COPY_STATS.copies("read-columnar") == 0, \
            COPY_STATS.events
        # The other files still go through the copying reader.
        assert COPY_STATS.copies("read-document") == 1
        assert COPY_STATS.copies("read-dewey") == 1

    def test_v2_load_does_copy(self, version_dirs):
        COPY_STATS.reset()
        load_database(version_dirs[2], lazy=True, verify="lazy")
        assert COPY_STATS.copies("read-columnar") == 1

    def test_columns_are_views_over_the_mmap(self, version_dirs):
        db = load_database(version_dirs[3], lazy=True, verify="lazy")
        index = db.columnar_index
        backing = index._backing
        assert isinstance(backing, MappedFile)
        term = index.vocabulary[0]
        postings = index.term_postings(term)
        # lengths/scores materialized straight off the mapping:
        # read-only and non-owning.
        assert not postings.lengths.flags.owndata
        assert not postings.lengths.flags.writeable
        assert not postings.scores.flags.writeable
        for scheme, payload in postings._level_payloads:
            assert isinstance(payload, np.ndarray)
            assert payload.dtype == np.uint8
            assert not payload.flags.owndata

    def test_injector_downgrades_map_to_copy(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"x" * 1024)
        COPY_STATS.reset()
        mapped = map_bytes(str(path), op="probe")
        assert isinstance(mapped, MappedFile)
        assert COPY_STATS.copies("probe") == 0
        data = map_bytes(str(path), injector=FaultInjector(seed=SEED),
                         op="probe")
        assert isinstance(data, bytes)
        assert COPY_STATS.copies("probe") == 1


class TestV3Container:
    def test_framing_is_aligned(self, version_dirs):
        blob = open(os.path.join(version_dirs[3], "columnar.bin"),
                    "rb").read()
        _algorithm, refs = storage.scan_v3_container(blob)
        assert refs, "container has terms"
        for ref in refs:
            # Every payload starts 8-aligned in the file, so the wider
            # in-payload regions (int64 lengths, float64 scores) are
            # 8-aligned absolutely -- the np.frombuffer precondition.
            assert ref.offset % 8 == 0
            lengths, scores, level_payloads = storage.parse_v3_payload(
                ref.term, blob[ref.offset: ref.offset + ref.length])
            assert len(lengths) == len(scores)
            assert len(level_payloads) == (int(lengths.max())
                                           if len(lengths) else 0)

    def test_flipped_payload_byte_names_the_term(self, version_dirs,
                                                 tmp_path):
        import shutil

        src = version_dirs[3]
        dst = str(tmp_path / "corrupt")
        shutil.copytree(src, dst)
        columnar = os.path.join(dst, "columnar.bin")
        blob = bytearray(open(columnar, "rb").read())
        _algo, refs = storage.scan_v3_container(bytes(blob))
        ref = refs[len(refs) // 2]
        blob[ref.offset + ref.length // 2] ^= 0x40
        open(columnar, "wb").write(bytes(blob))
        db = load_database(dst, lazy=True, verify="lazy")
        with pytest.raises(DatabaseCorruptError) as err:
            for query in QUERIES:
                db.search(query, use_cache=False)
            # Force every term if the queries dodged the victim.
            for term in db.columnar_index.vocabulary:
                db.columnar_index.term_postings(term).column(1)
        assert ref.term in str(err.value)

    def test_truncated_container_is_typed(self, version_dirs):
        blob = open(os.path.join(version_dirs[3], "columnar.bin"),
                    "rb").read()
        with pytest.raises(DatabaseCorruptError):
            storage.scan_v3_container(blob[: len(blob) // 2])

    def test_wrong_magic_is_format_error(self):
        with pytest.raises(DatabaseFormatError):
            storage.scan_v3_container(b"NOPE" + b"\x00" * 32)

    def test_eager_v3_deserializer_roundtrips(self):
        db = _build_db()
        index = db.columnar_index
        blob = storage.serialize_columnar_index_v3(
            index, score_mode=storage.SCORES_EXACT)
        loaded = storage.deserialize_columnar_index_v3(blob)
        assert sorted(loaded) == index.vocabulary
        for term, postings in loaded.items():
            original = index.term_postings(term)
            assert postings.seqs == original.seqs
            assert np.allclose(postings.scores, original.scores)

    def test_save_rejects_unknown_version(self, tmp_path):
        db = _build_db()
        with pytest.raises(ValueError):
            save_database(db, str(tmp_path / "nope"), format_version=9)
