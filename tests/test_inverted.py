"""Tests for the Dewey inverted index (`repro.index.inverted`)."""

import pytest

from repro.index.inverted import InvertedIndex
from repro.index.tokenizer import Tokenizer
from repro.xmltree.tree import build_tree


@pytest.fixture
def tree():
    return build_tree(
        ("bib", [
            ("book", [
                ("title", "xml basics", []),
                ("chapter", [
                    ("section", "xml intro", []),
                    ("section", "data and xml data", []),
                ]),
            ]),
            ("article", "keyword data", []),
        ]))


@pytest.fixture
def index(tree):
    return InvertedIndex(tree, tokenizer=Tokenizer(stopwords=()))


class TestBuild:
    def test_document_frequency(self, index):
        assert index.document_frequency("xml") == 3
        assert index.document_frequency("data") == 2
        assert index.document_frequency("absent") == 0

    def test_postings_in_document_order(self, index):
        deweys = index.term_list("xml").deweys
        assert deweys == sorted(deweys)

    def test_term_frequency_recorded(self, index):
        plist = index.term_list("data")
        section = next(p for p in plist.postings
                       if p.dewey == (1, 1, 2, 2))
        assert section.tf == 2

    def test_scores_positive(self, index):
        assert all(p.score > 0 for p in index.term_list("xml").postings)

    def test_rare_term_outscores_common_at_same_tf(self, index):
        # "keyword" (df=1) and "data" (df=2) co-occur in the article node
        # with tf 1 each; idf makes the rarer one score higher.
        article = (1, 2)
        kw = next(p for p in index.term_list("keyword").postings
                  if p.dewey == article)
        da = next(p for p in index.term_list("data").postings
                  if p.dewey == article)
        assert kw.score > da.score

    def test_n_docs_counts_text_nodes(self, index):
        assert index.n_docs == 4

    def test_vocabulary_sorted(self, index):
        vocab = index.vocabulary
        assert vocab == sorted(vocab)
        assert "xml" in vocab

    def test_contains(self, index):
        assert "xml" in index
        assert "absent" not in index

    def test_unknown_term_empty_list(self, index):
        plist = index.term_list("absent")
        assert len(plist) == 0
        assert plist.term == "absent"

    def test_stopwords_excluded_with_default_tokenizer(self, tree):
        idx = InvertedIndex(tree)  # default tokenizer drops "and"
        assert idx.document_frequency("and") == 0

    def test_posting_level(self, index):
        posting = index.term_list("keyword").postings[0]
        assert posting.level == len(posting.dewey) == 2


class TestPostingListOps:
    def test_descendants_range(self, index):
        plist = index.term_list("xml")
        lo, hi = plist.descendants_range((1, 1, 2))
        assert [p.dewey for p in plist.postings[lo:hi]] == \
            [(1, 1, 2, 1), (1, 1, 2, 2)]

    def test_descendants_range_empty(self, index):
        plist = index.term_list("xml")
        lo, hi = plist.descendants_range((1, 2))
        assert lo == hi

    def test_has_descendant(self, index):
        plist = index.term_list("data")
        assert plist.has_descendant((1, 2))
        assert not plist.has_descendant((1, 1, 2, 1))

    def test_neighbours_exact(self, index):
        plist = index.term_list("xml")
        left, right = plist.neighbours((1, 1, 2, 1))
        assert left.dewey == right.dewey == (1, 1, 2, 1)

    def test_neighbours_between(self, index):
        plist = index.term_list("xml")
        left, right = plist.neighbours((1, 1, 2))
        assert left.dewey == (1, 1, 1)
        assert right.dewey == (1, 1, 2, 1)

    def test_neighbours_boundaries(self, index):
        plist = index.term_list("xml")
        left, _ = plist.neighbours((0,))
        _, right = plist.neighbours((9,))
        assert left is None and right is None

    def test_by_score_desc_sorted(self, index):
        scores = [p.score for p in index.term_list("xml").by_score_desc()]
        assert scores == sorted(scores, reverse=True)

    def test_max_score(self, index):
        plist = index.term_list("xml")
        assert plist.max_score() == max(p.score for p in plist.postings)

    def test_max_score_empty_list(self, index):
        assert index.term_list("absent").max_score() == 0.0


class TestQueryLists:
    def test_shortest_first(self, index):
        lists = index.query_lists(["xml", "keyword", "data"])
        sizes = [len(lst) for lst in lists]
        assert sizes == sorted(sizes)

    def test_includes_empty_for_unknown(self, index):
        lists = index.query_lists(["absent", "xml"])
        assert len(lists[0]) == 0
