"""Tests for on-disk formats and Table I size accounting."""

import pytest

from repro.index.columnar import ColumnarIndex
from repro.index.inverted import InvertedIndex
from repro.index import storage
from repro.index.tokenizer import Tokenizer
from repro.xmltree.jdewey import encode_tree
from repro.xmltree.tree import build_tree


@pytest.fixture
def tree():
    t = build_tree(
        ("bib", [
            ("book", [
                ("title", "xml basics and xml tricks", []),
                ("chapter", [
                    ("section", "xml intro", []),
                    ("section", "data and xml data", []),
                ]),
            ]),
            ("article", "keyword data search", []),
        ]))
    encode_tree(t)
    return t


@pytest.fixture
def columnar(tree):
    return ColumnarIndex(tree, tokenizer=Tokenizer(stopwords=()))


@pytest.fixture
def inverted(tree):
    return InvertedIndex(tree, tokenizer=Tokenizer(stopwords=()))


class TestColumnarRoundtrip:
    def test_postings_roundtrip(self, columnar):
        postings = columnar.term_postings("xml")
        blob = storage.serialize_columnar_postings(postings)
        decoded, pos = storage.deserialize_columnar_postings(blob)
        assert pos == len(blob)
        assert decoded.term == "xml"
        assert decoded.seqs == postings.seqs

    def test_postings_roundtrip_with_scores(self, columnar):
        postings = columnar.term_postings("data")
        blob = storage.serialize_columnar_postings(postings,
                                                   with_scores=True)
        decoded, _ = storage.deserialize_columnar_postings(blob)
        assert decoded.seqs == postings.seqs
        for got, expected in zip(decoded.scores, postings.scores):
            assert got == pytest.approx(expected, abs=1 / 128)

    def test_index_roundtrip(self, columnar):
        blob = storage.serialize_columnar_index(columnar)
        loaded = storage.deserialize_columnar_index(blob)
        assert set(loaded) == set(columnar.vocabulary)
        for term, postings in loaded.items():
            assert postings.seqs == columnar.term_postings(term).seqs

    def test_index_wrong_magic_raises(self):
        with pytest.raises(ValueError):
            storage.deserialize_columnar_index(b"XXXXgarbage")

    def test_scores_flag_affects_size(self, columnar):
        postings = columnar.term_postings("xml")
        plain = storage.serialize_columnar_postings(postings)
        scored = storage.serialize_columnar_postings(postings,
                                                     with_scores=True)
        assert len(scored) == len(plain) + 2 * len(postings)


class TestDeweyRoundtrip:
    def test_posting_list_roundtrip(self, inverted):
        plist = inverted.term_list("xml")
        blob = storage.serialize_posting_list(plist)
        decoded, pos = storage.deserialize_posting_list(blob)
        assert pos == len(blob)
        assert decoded.term == "xml"
        assert [p.dewey for p in decoded.postings] == plist.deweys
        assert [p.tf for p in decoded.postings] == \
            [p.tf for p in plist.postings]

    def test_index_roundtrip(self, inverted):
        blob = storage.serialize_inverted_index(inverted)
        loaded = storage.deserialize_inverted_index(blob)
        assert set(loaded) == set(inverted.vocabulary)
        for term, plist in loaded.items():
            assert [p.dewey for p in plist.postings] == \
                inverted.term_list(term).deweys

    def test_wrong_magic_raises(self):
        with pytest.raises(ValueError):
            storage.deserialize_inverted_index(b"NOPE")

    def test_prefix_compression_helps_on_clustered_lists(self, inverted):
        # "xml" postings share long prefixes; the serialized size should
        # be well below storing every full Dewey id.
        plist = inverted.term_list("xml")
        blob = storage.serialize_posting_list(plist)
        naive = sum(2 * len(p.dewey) for p in plist.postings) + 20
        assert len(blob) <= naive


class TestSizeReport:
    def test_report_has_all_rows(self, columnar, inverted):
        report = storage.measure_sizes(columnar, inverted)
        rows = dict(report.as_rows())
        assert set(rows) == {
            "join-based IL", "join-based sparse", "stack-based IL",
            "index-based B-tree", "top-K join IL", "RDIL IL", "RDIL B-tree",
        }
        assert all(size > 0 for size in rows.values())

    def test_paper_shape_index_based_is_largest(self, columnar, inverted):
        """Table I: the (keyword, Dewey) B-tree dwarfs both IL formats."""
        report = storage.measure_sizes(columnar, inverted)
        assert report.index_based_btree > report.stack_based_il
        assert report.index_based_btree > report.join_based_il

    def test_paper_shape_topk_il_slightly_larger(self, columnar, inverted):
        """Table I: the score-augmented IL adds modest overhead."""
        report = storage.measure_sizes(columnar, inverted)
        assert report.topk_join_il > report.join_based_il
        assert report.topk_join_il < 2 * report.join_based_il

    def test_rdil_equals_stack_plus_btree(self, columnar, inverted):
        report = storage.measure_sizes(columnar, inverted)
        assert report.rdil_il == report.stack_based_il
        assert report.rdil_btree > 0

    def test_per_term_sizes_sum_to_total(self, columnar, inverted):
        report = storage.measure_sizes(columnar, inverted)
        assert sum(report.per_term.values()) == report.join_based_il
