"""Tests for the benchmark harness itself (`repro.bench.harness`).

Runs every experiment function on a miniature configuration so the
harness code paths (workload wiring, shape checkers, row formats) are
covered by the unit suite, independent of the real benchmark run.
"""

import pytest

from repro.bench.harness import (BenchConfig, Workbench,
                                 ablation_bound_rows,
                                 ablation_compression_rows,
                                 ablation_eraser_rows,
                                 ablation_join_policy_rows,
                                 check_table1_shape, fig9_cells,
                                 fig9_equal_rows, fig9_rows, fig10a_rows,
                                 fig10bc_rows, fig10_work_rows,
                                 make_engine, run_complete, run_topk,
                                 table1_rows)

TINY = BenchConfig(n_papers=250, xmark_scale=0.004, high_freq=40,
                   low_freqs=(5, 40), per_cell=1, max_keywords=3,
                   correlated_entities=60, topk=5)


@pytest.fixture(scope="module")
def tiny():
    bench = Workbench(TINY)
    bench.dblp
    bench.xmark
    return bench


class TestWorkbench:
    def test_corpora_cached(self, tiny):
        assert tiny.dblp is tiny.dblp
        assert tiny.xmark is tiny.xmark

    def test_planted_frequencies(self, tiny):
        assert tiny.dblp.document_frequency("hi40-0") == 40
        assert tiny.dblp.document_frequency("lo5-0") == 5

    def test_damping_base_applied(self, tiny):
        assert tiny.dblp.ranking.damping.base == pytest.approx(
            TINY.damping_base)

    def test_warm_builds_columns(self, tiny):
        queries = tiny.builder.frequency_sweep(2)
        tiny.warm(tiny.dblp, queries)  # must not raise

    def test_small_config_constructor(self):
        config = BenchConfig.small()
        assert config.n_papers < BenchConfig().n_papers


class TestRunners:
    def test_run_complete_counts_results(self, tiny):
        queries = tiny.builder.frequency_sweep(2)[:1]
        counts = {a: run_complete(tiny.dblp, queries, a)
                  for a in ("join", "stack", "index")}
        assert counts["join"] == counts["stack"] == counts["index"]

    def test_run_topk_bounded_by_k(self, tiny):
        queries = tiny.builder.correlated_queries()[:1]
        total = run_topk(tiny.dblp, queries, "topk-join", 3)
        assert total <= 3 * len(queries)

    def test_make_engine_unknown(self, tiny):
        with pytest.raises(ValueError):
            make_engine(tiny.dblp, "quantum")


class TestTable1:
    def test_rows_cover_both_corpora(self, tiny):
        rows = table1_rows(tiny)
        assert {c for c, _, _ in rows} == {"DBLP", "XMark"}
        assert len(rows) == 14

    def test_shape_checker_passes(self, tiny):
        assert check_table1_shape(table1_rows(tiny)) == []

    def test_shape_checker_catches_violations(self):
        rows = []
        for corpus in ("DBLP", "XMark"):
            rows += [
                (corpus, "join-based IL", 100.0),
                (corpus, "join-based sparse", 10.0),
                (corpus, "stack-based IL", 100.0),
                (corpus, "index-based B-tree", 150.0),  # not >> stack
                (corpus, "top-K join IL", 120.0),
                (corpus, "RDIL IL", 100.0),
                (corpus, "RDIL B-tree", 90.0),
            ]
        assert check_table1_shape(rows)


class TestFigureRows:
    def test_fig9_cells_grouped_by_frequency(self, tiny):
        cells = fig9_cells(tiny, 2)
        assert [low for low, _ in cells] == sorted(TINY.low_freqs)
        for low, queries in cells:
            assert all(q.low_frequency == low for q in queries)

    def test_fig9_rows_structure(self, tiny):
        rows = fig9_rows(tiny, 2, repeats=1)
        assert len(rows) == len(TINY.low_freqs) * 3
        assert all(ms >= 0 for _, _, ms in rows)

    def test_fig9_equal_rows_structure(self, tiny):
        rows = fig9_equal_rows(tiny, TINY.low_freqs[0], repeats=1)
        ks = {k for k, _, _ in rows}
        assert ks == {2, 3}  # capped by max_keywords

    def test_fig10a_rows_structure(self, tiny):
        rows = fig10a_rows(tiny, repeats=1)
        algorithms = {a for _, a, _ in rows}
        assert algorithms == {"topk-join", "join", "rdil"}

    def test_fig10bc_rows_structure(self, tiny):
        rows = fig10bc_rows(tiny, repeats=1)
        assert len(rows) == 6 * 4  # six queries x four algorithms

    def test_fig10_work_rows_positive(self, tiny):
        rows = fig10_work_rows(tiny)
        assert all(items > 0 for _, _, items in rows)


class TestAblationRows:
    def test_join_policy_rows(self, tiny):
        rows = ablation_join_policy_rows(tiny, repeats=1)
        by_policy = {p for _, p, _, _, _ in rows}
        assert by_policy == {"dynamic", "merge", "index"}
        for _, policy, _, scanned, probes in rows:
            if policy == "merge":
                assert probes == 0
            if policy == "index":
                assert scanned == 0

    def test_bound_rows_group_never_looser(self, tiny):
        rows = ablation_bound_rows(tiny)
        by_query = {}
        for label, bound, tuples in rows:
            by_query.setdefault(label, {})[bound] = tuples
        for label, bounds in by_query.items():
            assert bounds["group"] <= bounds["classic"], label

    def test_compression_rows(self, tiny):
        rows = ablation_compression_rows(tiny)
        ratios = {scheme: value for scheme, metric, value in rows
                  if metric == "ratio"}
        assert ratios["rle"] > ratios["delta"] > 1.0

    def test_eraser_rows(self, tiny):
        rows = ablation_eraser_rows(tiny, repeats=1)
        assert {mode for _, mode, _ in rows} == {"bitmap", "interval"}
