"""Shared fixtures: hand-built trees and generated corpora.

Corpus fixtures are session-scoped because index construction dominates
test time; tests must treat them as read-only.
"""

import pytest

from repro import XMLDatabase, build_tree
from repro.datagen import (CorrelatedGroup, DBLPGenerator, PlantedTerm,
                           PlantingPlan, XMarkGenerator)

# A small document exercised by most algorithm tests: two keyword
# clusters ("xml", "data") with nested ELCAs so the semantics differ.
SMALL_XML = """
<bib>
  <book>
    <title>XML basics</title>
    <chapter>
      <section>introduction to XML</section>
      <section>data models and XML data</section>
    </chapter>
  </book>
  <article>
    <title>keyword search over data</title>
    <abstract>XML keyword search with top k data processing</abstract>
  </article>
  <book>
    <title>relational data</title>
  </book>
</bib>
"""


def figure1_like_tree():
    """A tree in the spirit of the paper's Figure 1.

    Node r.a.b ("paper") directly nests occurrences of both keywords, so
    it is an ELCA/SLCA; its ancestor r.a contains a further "data"
    occurrence only, so r.a is an LCA but neither an ELCA nor an SLCA;
    the root gathers leftover occurrences from two branches and is an
    ELCA but not an SLCA.
    """
    return build_tree(
        ("root", [
            ("a", [
                ("x", "data survey", []),
                ("paper", [
                    ("t1", "xml overview", []),
                    ("t2", "data model", []),
                ]),
            ]),
            ("b", [
                ("y", "xml tutorial", []),
            ]),
            ("c", [
                ("z", "data cleaning", []),
            ]),
        ]))


@pytest.fixture
def small_db():
    return XMLDatabase.from_xml_text(SMALL_XML)


@pytest.fixture
def fig1_db():
    return XMLDatabase.from_tree(figure1_like_tree())


def _default_plan():
    return PlantingPlan(
        planted=[
            PlantedTerm("alpha", 30),
            PlantedTerm("beta", 60),
            PlantedTerm("gamma", 120),
            PlantedTerm("rare", 4),
        ],
        correlated=[
            CorrelatedGroup(("cx", "cy"), 40, rate=0.9),
            CorrelatedGroup(("c3a", "c3b", "c3c"), 30, rate=0.8),
        ],
    )


@pytest.fixture(scope="session")
def dblp_db():
    tree = DBLPGenerator(seed=3, n_papers=400, plan=_default_plan()).generate()
    return XMLDatabase.from_tree(tree)


@pytest.fixture(scope="session")
def xmark_db():
    tree = XMarkGenerator(seed=3, scale=0.015,
                          plan=_default_plan()).generate()
    return XMLDatabase.from_tree(tree)


@pytest.fixture(scope="session", params=["dblp", "xmark"])
def corpus_db(request, dblp_db, xmark_db):
    """Parametrized over both corpora."""
    return dblp_db if request.param == "dblp" else xmark_db
