"""Tests for shared result types and small utilities
(`repro.algorithms.base`) plus the strict query mode."""

import pytest

from repro import XMLDatabase
from repro.algorithms.base import (EmptyResultError, ExecutionStats,
                                   SearchResult, TopKResult,
                                   check_semantics, sort_by_document_order,
                                   sort_by_score)
from repro.xmltree.tree import build_tree


@pytest.fixture
def results():
    tree = build_tree(("r", [("a", "x", []), ("b", "y", []),
                             ("c", "z", [])]))
    nodes = [tree.node_by_dewey(d) for d in [(1, 1), (1, 2), (1, 3)]]
    return [
        SearchResult(nodes[0], 2, score=0.5),
        SearchResult(nodes[1], 2, score=0.9),
        SearchResult(nodes[2], 2, score=0.9),
    ]


class TestSorting:
    def test_sort_by_score_descending_with_doc_tiebreak(self, results):
        ordered = sort_by_score(results)
        assert [r.score for r in ordered] == [0.9, 0.9, 0.5]
        assert ordered[0].node.dewey < ordered[1].node.dewey

    def test_sort_by_document_order(self, results):
        shuffled = [results[2], results[0], results[1]]
        ordered = sort_by_document_order(shuffled)
        assert [r.node.dewey for r in ordered] == \
            [(1, 1), (1, 2), (1, 3)]


class TestSearchResult:
    def test_dewey_property(self, results):
        assert results[0].dewey == (1, 1)

    def test_default_fields(self, results):
        assert results[0].witness_scores == ()


class TestExecutionStats:
    def test_as_dict_keys(self):
        stats = ExecutionStats()
        stats.joins = 3
        stats.tuples_scanned = 99
        d = stats.as_dict()
        assert d["joins"] == 3
        assert d["tuples_scanned"] == 99
        assert "threshold_checks" in d

    def test_per_level_plan_not_in_dict(self):
        assert "per_level_plan" not in ExecutionStats().as_dict()


class TestTopKResult:
    def test_iter_and_len(self, results):
        tr = TopKResult(results, ExecutionStats())
        assert len(tr) == 3
        assert list(tr) == results

    def test_default_not_early(self, results):
        assert not TopKResult(results, ExecutionStats()).terminated_early


class TestCheckSemantics:
    def test_valid(self):
        assert check_semantics("elca") == "elca"
        assert check_semantics("slca") == "slca"

    def test_invalid(self):
        with pytest.raises(ValueError):
            check_semantics("lca")


class TestStrictMode:
    @pytest.fixture
    def db(self):
        return XMLDatabase.from_xml_text("<r><a>xml data</a></r>")

    def test_strict_search_raises_on_missing_term(self, db):
        with pytest.raises(EmptyResultError) as exc:
            db.search("xml missing", strict=True)
        assert "missing" in str(exc.value)

    def test_strict_topk_raises(self, db):
        with pytest.raises(EmptyResultError):
            db.search_topk("xml nothere", 3, strict=True)

    def test_strict_passes_when_all_present(self, db):
        assert db.search("xml data", strict=True)

    def test_default_is_lenient(self, db):
        assert db.search("xml missing") == []
