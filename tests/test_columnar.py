"""Tests for the columnar JDewey index (`repro.index.columnar`)."""

import numpy as np
import pytest

from repro.index.columnar import ColumnarIndex, ColumnarPostings
from repro.index.tokenizer import Tokenizer
from repro.xmltree.jdewey import encode_tree
from repro.xmltree.tree import build_tree


@pytest.fixture
def tree():
    t = build_tree(
        ("bib", [
            ("book", [
                ("title", "xml basics", []),
                ("chapter", [
                    ("section", "xml intro", []),
                    ("section", "data and xml data", []),
                ]),
            ]),
            ("article", "keyword data", []),
        ]))
    encode_tree(t)
    return t


@pytest.fixture
def index(tree):
    return ColumnarIndex(tree, tokenizer=Tokenizer(stopwords=()))


class TestBuild:
    def test_requires_jdewey(self):
        bare = build_tree(("a", "xml", []))
        with pytest.raises(ValueError):
            ColumnarIndex(bare)

    def test_document_frequency(self, index):
        assert index.document_frequency("xml") == 3
        assert index.document_frequency("nope") == 0

    def test_sequences_sorted(self, index):
        seqs = index.term_postings("xml").seqs
        assert seqs == sorted(seqs)

    def test_max_len(self, index):
        assert index.term_postings("xml").max_len == 4
        assert index.term_postings("keyword").max_len == 2

    def test_scores_aligned_with_seqs(self, index, tree):
        postings = index.term_postings("data")
        assert len(postings.scores) == len(postings.seqs)
        assert all(s > 0 for s in postings.scores)

    def test_unknown_term_empty(self, index):
        postings = index.term_postings("nope")
        assert len(postings) == 0
        assert postings.max_len == 0

    def test_node_at_roundtrip(self, index, tree):
        for node in tree.nodes:
            assert index.node_at(node.level, node.jdewey[-1]) is node

    def test_query_postings_shortest_first(self, index):
        ordered = index.query_postings(["xml", "keyword", "data"])
        sizes = [len(p) for p in ordered]
        assert sizes == sorted(sizes)


class TestColumns:
    def test_column_values_sorted(self, index):
        postings = index.term_postings("xml")
        for level in range(1, postings.max_len + 1):
            values = postings.column(level).values
            assert np.all(values[:-1] <= values[1:])

    def test_column_level_filter(self, index):
        postings = index.term_postings("xml")
        col4 = postings.column(4)
        # Only the two section occurrences reach level 4.
        assert len(col4) == 2

    def test_column_beyond_max_len_empty(self, index):
        postings = index.term_postings("keyword")
        assert len(postings.column(5)) == 0

    def test_column_level_zero_raises(self, index):
        with pytest.raises(ValueError):
            index.term_postings("xml").column(0)

    def test_column_cached(self, index):
        postings = index.term_postings("xml")
        assert postings.column(2) is postings.column(2)

    def test_root_column_single_distinct(self, index):
        col = index.term_postings("xml").column(1)
        assert col.n_distinct == 1

    def test_runs_partition_values(self, index):
        postings = index.term_postings("xml")
        for level in range(1, postings.max_len + 1):
            col = postings.column(level)
            assert col.run_starts[0] == 0
            assert col.run_starts[-1] == len(col)
            for i, value in enumerate(col.distinct):
                a, b = int(col.run_starts[i]), int(col.run_starts[i + 1])
                assert np.all(col.values[a:b] == value)

    def test_run_of_present_value(self, index):
        col = index.term_postings("xml").column(1)
        a, b = col.run_of(int(col.distinct[0]))
        assert (a, b) == (0, len(col))

    def test_run_of_absent_value(self, index):
        col = index.term_postings("xml").column(2)
        a, b = col.run_of(10**9)
        assert a == b

    def test_contains(self, index):
        col = index.term_postings("xml").column(1)
        assert col.contains(int(col.distinct[0]))
        assert not col.contains(10**9)

    def test_run_seq_indices_contiguous_ordinals(self, index):
        """The erasure-range property: a run's sequence ordinals are
        consecutive integers (section III-E geometry)."""
        for term in index.vocabulary:
            postings = index.term_postings(term)
            for level in range(1, postings.max_len + 1):
                col = postings.column(level)
                for value in col.distinct:
                    ordinals = col.run_seq_indices(int(value))
                    assert list(ordinals) == list(
                        range(int(ordinals[0]), int(ordinals[-1]) + 1))

    def test_has_exact_length(self, index):
        postings = index.term_postings("xml")
        assert postings.has_exact_length(3)   # the title occurrence
        assert postings.has_exact_length(4)   # section occurrences
        assert not postings.has_exact_length(1)
        assert not postings.has_exact_length(2)

    def test_max_score(self, index):
        postings = index.term_postings("data")
        assert postings.max_score() == pytest.approx(
            float(np.max(postings.scores)))


class TestColumnarPostingsDirect:
    def test_sorts_inputs(self):
        postings = ColumnarPostings("t", [(1, 3), (1, 2)], [0.1, 0.9])
        assert postings.seqs == [(1, 2), (1, 3)]
        assert postings.scores[0] == pytest.approx(0.9)

    def test_empty(self):
        postings = ColumnarPostings("t", [], [])
        assert postings.max_len == 0
        assert len(postings.column(1)) == 0
