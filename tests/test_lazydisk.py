"""Tests for the disk-backed lazy column store (`repro.index.lazydisk`)."""

import pytest

from repro import XMLDatabase
from repro.algorithms.join_based import JoinBasedSearch
from repro.algorithms.topk_keyword import TopKKeywordSearch
from repro.index import storage
from repro.index.lazydisk import (IOStats, LazyColumnarIndex,
                                  LazyColumnarPostings)


@pytest.fixture
def lazy_pair(small_db):
    blob = storage.serialize_columnar_index(
        small_db.columnar_index, score_mode=storage.SCORES_EXACT)
    lazy = LazyColumnarIndex(blob, small_db.tree, small_db.tokenizer,
                             small_db.ranking)
    return small_db, lazy


class TestParsing:
    def test_vocabulary_matches(self, lazy_pair):
        db, lazy = lazy_pair
        assert lazy.vocabulary == db.columnar_index.vocabulary

    def test_no_columns_read_at_parse_time(self, lazy_pair):
        _, lazy = lazy_pair
        assert lazy.io.columns_read == 0

    def test_wrong_magic(self, small_db):
        with pytest.raises(ValueError):
            LazyColumnarIndex(b"NOPExxxx", small_db.tree)

    def test_lengths_and_scores_eager(self, lazy_pair):
        db, lazy = lazy_pair
        eager = db.columnar_index.term_postings("xml")
        postings = lazy.term_postings("xml")
        assert list(postings.lengths) == list(eager.lengths)
        assert postings.scores == pytest.approx(list(eager.scores))
        assert lazy.io.columns_read == 0

    def test_unknown_term_empty(self, lazy_pair):
        _, lazy = lazy_pair
        assert len(lazy.term_postings("zzz")) == 0

    def test_seqs_refused(self, lazy_pair):
        _, lazy = lazy_pair
        with pytest.raises(NotImplementedError):
            lazy.term_postings("xml").seqs


class TestColumns:
    def test_columns_match_eager(self, lazy_pair):
        db, lazy = lazy_pair
        for term in ("xml", "data"):
            eager = db.columnar_index.term_postings(term)
            postings = lazy.term_postings(term)
            for level in range(1, eager.max_len + 1):
                a, b = eager.column(level), postings.column(level)
                assert list(a.values) == list(b.values)
                assert list(a.seq_idx) == list(b.seq_idx)

    def test_decompression_counted_once(self, lazy_pair):
        _, lazy = lazy_pair
        postings = lazy.term_postings("xml")
        postings.column(2)
        postings.column(2)
        assert lazy.io.columns_read == 1
        assert lazy.io.compressed_bytes_read > 0

    def test_value_at_matches_eager(self, lazy_pair):
        db, lazy = lazy_pair
        eager = db.columnar_index.term_postings("xml")
        postings = lazy.term_postings("xml")
        for ordinal, seq in enumerate(eager.seqs):
            for level in range(1, len(seq) + 1):
                assert postings.value_at(ordinal, level) == seq[level - 1]

    def test_beyond_max_len_is_empty_without_io(self, lazy_pair):
        _, lazy = lazy_pair
        postings = lazy.term_postings("keyword")
        before = lazy.io.columns_read
        assert len(postings.column(postings.max_len + 3)) == 0
        assert lazy.io.columns_read == before


class TestQueriesOnLazyIndex:
    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    def test_join_based_matches_eager(self, lazy_pair, semantics):
        db, lazy = lazy_pair
        expected, _ = JoinBasedSearch(db.columnar_index).evaluate(
            ["xml", "data"], semantics)
        got, _ = JoinBasedSearch(lazy).evaluate(["xml", "data"], semantics)
        assert [(r.node.dewey, round(r.score, 9)) for r in got] == \
            [(r.node.dewey, round(r.score, 9)) for r in expected]

    def test_topk_matches_eager(self, lazy_pair):
        db, lazy = lazy_pair
        expected = TopKKeywordSearch(db.columnar_index).search(
            ["xml", "data"], 3)
        got = TopKKeywordSearch(lazy).search(["xml", "data"], 3)
        assert [round(r.score, 9) for r in got] == \
            [round(r.score, 9) for r in expected]

    def test_sweep_starts_at_min_max_length(self, lazy_pair):
        """Section III-B: no column below min(l_m) is ever read."""
        db, lazy = lazy_pair
        lazy.io.reset()
        JoinBasedSearch(lazy).evaluate(["xml", "data"], "elca")
        postings = db.columnar_index.query_postings(["xml", "data"])
        start = min(p.max_len for p in postings)
        assert lazy.io.per_level
        assert max(lazy.io.per_level) <= start

    def test_shallow_keyword_limits_io(self, corpus_db):
        """A keyword living only at shallow levels caps the sweep: the
        deep columns of the frequent keyword are never decompressed."""
        blob = storage.serialize_columnar_index(
            corpus_db.columnar_index, score_mode=storage.SCORES_EXACT)
        lazy = LazyColumnarIndex(blob, corpus_db.tree,
                                 corpus_db.tokenizer, corpus_db.ranking)
        deep = corpus_db.columnar_index.term_postings("gamma").max_len
        lazy.io.reset()
        JoinBasedSearch(lazy).evaluate(["gamma", "rare"], "elca")
        rare_depth = corpus_db.columnar_index.term_postings(
            "rare").max_len
        assert max(lazy.io.per_level) <= min(deep, rare_depth)


class TestIOStats:
    def test_reset(self):
        stats = IOStats()
        stats.record(3, 100)
        stats.reset()
        assert stats.columns_read == 0
        assert stats.per_level == {}

    def test_per_level_counts(self):
        stats = IOStats()
        stats.record(3, 10)
        stats.record(3, 10)
        stats.record(1, 5)
        assert stats.per_level == {3: 2, 1: 1}
        assert stats.compressed_bytes_read == 25
