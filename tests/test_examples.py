"""Smoke tests: the example scripts stay runnable.

Fast examples execute end to end; the corpus-heavy demo is
compile-checked only (it runs in the benchmark environment).
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST = ["quickstart.py", "custom_ranking.py", "index_maintenance.py"]
SLOW = ["xmark_semantics.py", "dblp_topk.py"]


@pytest.mark.parametrize("script", FAST)
def test_fast_example_runs(script):
    proc = subprocess.run([sys.executable, str(EXAMPLES / script)],
                          capture_output=True, text=True, timeout=180)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


@pytest.mark.parametrize("script", FAST + SLOW)
def test_example_compiles(script):
    py_compile.compile(str(EXAMPLES / script), doraise=True)


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert set(FAST + SLOW) <= present
    assert "quickstart.py" in present
