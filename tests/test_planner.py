"""Tests for join planning and cardinality estimation (`repro.planner`)."""

import numpy as np
import pytest

from repro.algorithms.base import ExecutionStats
from repro.planner.cardinality import (CardinalityEstimator,
                                       containment_estimate,
                                       sampled_estimate)
from repro.planner.plans import (DYNAMIC, INDEX, MERGE, JoinPlanner,
                                 index_intersect, merge_intersect)


def arr(*values):
    return np.asarray(values, dtype=np.int64)


class TestIntersections:
    def test_merge_basic(self):
        out = merge_intersect(arr(1, 3, 5, 7), arr(3, 4, 7, 9))
        assert list(out) == [3, 7]

    def test_index_basic(self):
        out = index_intersect(arr(3, 7), arr(1, 3, 5, 7, 9))
        assert list(out) == [3, 7]

    def test_empty_inputs(self):
        empty = arr()
        assert len(merge_intersect(empty, arr(1, 2))) == 0
        assert len(index_intersect(empty, arr(1, 2))) == 0
        assert len(index_intersect(arr(1, 2), empty)) == 0

    def test_agree_on_random_sets(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            a = np.unique(rng.integers(0, 200, size=50))
            b = np.unique(rng.integers(0, 200, size=80))
            assert list(merge_intersect(a, b)) == list(index_intersect(a, b))

    def test_stats_updated(self):
        stats = ExecutionStats()
        merge_intersect(arr(1, 2), arr(2, 3), stats)
        index_intersect(arr(2), arr(2, 3), stats)
        assert stats.merge_joins == 1
        assert stats.index_joins == 1
        assert stats.tuples_scanned == 4
        assert stats.lookups == 1


class TestPlanner:
    def test_forced_policies(self):
        assert JoinPlanner(MERGE).choose(1, 10 ** 6) == MERGE
        assert JoinPlanner(INDEX).choose(10 ** 6, 10 ** 6) == INDEX

    def test_dynamic_picks_index_for_tiny_probe(self):
        assert JoinPlanner(DYNAMIC).choose(3, 10 ** 6) == INDEX

    def test_dynamic_picks_merge_for_comparable_sides(self):
        assert JoinPlanner(DYNAMIC).choose(10 ** 5, 2 * 10 ** 5) == MERGE

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            JoinPlanner("nope")

    def test_intersect_probes_smaller_side(self):
        stats = ExecutionStats()
        JoinPlanner(INDEX).intersect(arr(*range(100)), arr(5), stats)
        assert stats.lookups == 1  # the single-element side probes

    def test_intersect_all_left_deep(self):
        stats = ExecutionStats()
        out = JoinPlanner(DYNAMIC).intersect_all(
            [arr(*range(0, 100, 2)), arr(4, 8, 100), arr(0, 4, 8, 12)],
            stats, level=3)
        assert list(out) == [4, 8]
        assert stats.joins == 2
        assert all(level == 3 for level, _ in stats.per_level_plan)

    def test_intersect_all_short_circuits_on_empty(self):
        stats = ExecutionStats()
        out = JoinPlanner(DYNAMIC).intersect_all(
            [arr(1), arr(2), arr(*range(1000))], stats)
        assert len(out) == 0
        assert stats.joins == 1  # the third join never runs


class TestCardinality:
    def test_containment_formula(self):
        # d1=10, d2=20 over domain 100 -> 100 * 0.1 * 0.2 = 2.
        assert containment_estimate([10, 20], 100) == pytest.approx(2.0)

    def test_containment_empty(self):
        assert containment_estimate([], 100) == 0.0
        assert containment_estimate([10], 0) == 0.0

    def test_sampled_exact_on_small_columns(self):
        a = arr(1, 2, 3, 4, 5)
        b = arr(2, 4, 6)
        assert sampled_estimate([a, b], sample_size=64) == 2

    def test_sampled_zero_when_column_empty(self):
        assert sampled_estimate([arr(), arr(1, 2)]) == 0.0

    def test_estimator_on_disjoint_columns(self):
        est = CardinalityEstimator()
        a = arr(*range(0, 1000, 2))
        b = arr(*range(1, 1000, 2))
        assert est.estimate([a, b]) < 300  # far below min(|a|, |b|)

    def test_estimator_on_identical_columns(self):
        est = CardinalityEstimator()
        a = arr(*range(500))
        value = est.estimate([a, a.copy()])
        assert value == pytest.approx(500, rel=0.2)

    def test_estimator_deterministic(self):
        a = arr(*range(0, 3000, 3))
        b = arr(*range(0, 3000, 7))
        assert CardinalityEstimator(seed=1).estimate([a, b]) == \
            CardinalityEstimator(seed=1).estimate([a, b])
