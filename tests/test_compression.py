"""Tests for column compression (`repro.index.compression`)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index import compression as cmp

sorted_columns = st.lists(st.integers(0, 10_000), min_size=0,
                          max_size=300).map(sorted)


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2 ** 21, 2 ** 40])
    def test_roundtrip_single(self, value):
        out = bytearray()
        cmp.write_varint(out, value)
        decoded, pos = cmp.read_varint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out) == cmp.varint_size(value)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            cmp.write_varint(bytearray(), -1)

    @given(st.lists(st.integers(0, 2 ** 32), max_size=50))
    def test_roundtrip_stream(self, values):
        assert cmp.decode_varints(cmp.encode_varints(values)) == values


class TestDeltaBlocks:
    def test_roundtrip_basic(self):
        values = [3, 3, 5, 9, 9, 120, 4000]
        decoded = cmp.decode_delta_blocks(cmp.encode_delta_blocks(values))
        assert list(decoded) == values

    def test_roundtrip_empty(self):
        assert list(cmp.decode_delta_blocks(
            cmp.encode_delta_blocks([]))) == []

    def test_block_boundaries(self):
        values = list(range(0, 1000, 3))
        data = cmp.encode_delta_blocks(values, block_size=16)
        assert list(cmp.decode_delta_blocks(data)) == values

    def test_unsorted_raises(self):
        with pytest.raises(ValueError):
            cmp.encode_delta_blocks([5, 3])

    def test_smaller_than_fixed_width_for_dense_columns(self):
        values = list(range(10_000, 20_000))
        data = cmp.encode_delta_blocks(values)
        assert len(data) < cmp.uncompressed_size(values)

    @given(sorted_columns)
    def test_roundtrip_property(self, values):
        decoded = cmp.decode_delta_blocks(cmp.encode_delta_blocks(values))
        assert list(decoded) == values


class TestRLE:
    def test_runs_of(self):
        triples = cmp.runs_of([2, 2, 2, 4, 7, 7])
        assert triples == [(2, 0, 3), (4, 3, 1), (7, 4, 2)]

    def test_runs_of_empty(self):
        assert cmp.runs_of([]) == []

    def test_roundtrip_basic(self):
        values = [1, 1, 1, 1, 8, 8, 9]
        assert list(cmp.decode_rle(cmp.encode_rle(values))) == values

    def test_roundtrip_empty(self):
        assert list(cmp.decode_rle(cmp.encode_rle([]))) == []

    def test_unsorted_raises(self):
        with pytest.raises(ValueError):
            cmp.encode_rle([5, 3])

    def test_duplicates_compress_well(self):
        values = [7] * 10_000
        assert len(cmp.encode_rle(values)) < 16

    @given(sorted_columns)
    def test_roundtrip_property(self, values):
        assert list(cmp.decode_rle(cmp.encode_rle(values))) == values


class TestSchemeSelection:
    def test_low_cardinality_picks_rle(self):
        assert cmp.choose_scheme([1, 1, 1, 2, 2, 2]) == cmp.SCHEME_RLE

    def test_high_cardinality_picks_delta(self):
        assert cmp.choose_scheme(list(range(100))) == cmp.SCHEME_DELTA

    def test_empty_column(self):
        assert cmp.choose_scheme([]) == cmp.SCHEME_RLE

    @given(sorted_columns)
    def test_compress_roundtrip_property(self, values):
        scheme, data = cmp.compress_column(values)
        assert list(cmp.decompress_column(scheme, data)) == values

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError):
            cmp.decompress_column("nope", b"")

    def test_numpy_input_accepted(self):
        values = np.asarray([1, 2, 2, 3], dtype=np.int64)
        scheme, data = cmp.compress_column(values)
        assert list(cmp.decompress_column(scheme, data)) == [1, 2, 2, 3]


class TestVectorizedVarints:
    """The numpy batch decoder is differentially tested against the
    scalar reference and must agree bit-for-bit up to VARINT_MAX."""

    @given(st.lists(st.integers(0, 2 ** 32), max_size=80))
    def test_matches_scalar(self, values):
        blob = cmp.encode_varints(values)
        assert cmp.decode_varints_vectorized(blob).tolist() == \
            cmp.decode_varints(blob) == values

    @pytest.mark.parametrize("value", [
        2 ** 32 - 1, 2 ** 32, 2 ** 32 + 1, 2 ** 40, 2 ** 56 - 3,
        2 ** 63, cmp.VARINT_MAX])
    def test_values_at_and_above_u32(self, value):
        # The np.frombuffer fast paths assume uint64; everything up to
        # 2**64-1 must survive both decoders exactly.
        blob = cmp.encode_varints([1, value, 7])
        assert cmp.decode_varints(blob) == [1, value, 7]
        assert cmp.decode_varints_vectorized(blob).tolist() == \
            [1, value, 7]

    def test_beyond_uint64_rejected_by_both(self):
        out = bytearray()
        # Hand-roll a varint for 2**64: eleven bytes, exceeds the
        # 10-byte budget outright.
        value = 2 ** 64
        while value >= 0x80:
            out.append((value & 0x7F) | 0x80)
            value >>= 7
        out.append(value)
        blob = bytes(out)
        with pytest.raises(ValueError):
            cmp.decode_varints(blob)
        with pytest.raises(ValueError):
            cmp.decode_varints_vectorized(blob)

    def test_ten_byte_overflow_rejected(self):
        # Ten bytes whose final byte pushes past 2**64-1: a valid
        # *length* but an invalid *value*.
        blob = bytes([0xFF] * 9 + [0x02])
        with pytest.raises(ValueError):
            cmp.decode_varints(blob)
        with pytest.raises(ValueError):
            cmp.decode_varints_vectorized(blob)

    def test_truncated_stream_rejected_by_both(self):
        blob = cmp.encode_varints([300])[:-1]  # continuation bit dangles
        with pytest.raises(ValueError):
            cmp.decode_varints(blob)
        with pytest.raises(ValueError):
            cmp.decode_varints_vectorized(blob)

    def test_empty_stream(self):
        assert cmp.decode_varints(b"") == []
        assert cmp.decode_varints_vectorized(b"").tolist() == []

    def test_memoryview_and_ndarray_inputs(self):
        values = [0, 127, 128, 2 ** 21, 2 ** 40]
        blob = cmp.encode_varints(values)
        for view in (memoryview(blob),
                     np.frombuffer(blob, dtype=np.uint8)):
            assert cmp.decode_varints_vectorized(view).tolist() == values
            assert cmp.decode_varints(view) == values


class TestVectorizedColumnDecoders:
    """decode_delta_blocks / decode_rle with vectorized=True must be
    indistinguishable from the scalar loops they replace."""

    @given(sorted_columns)
    def test_delta_differential(self, values):
        blob = cmp.encode_delta_blocks(values)
        assert cmp.decode_delta_blocks(blob, vectorized=True).tolist() \
            == cmp.decode_delta_blocks(blob, vectorized=False).tolist() \
            == values

    @given(sorted_columns)
    def test_rle_differential(self, values):
        blob = cmp.encode_rle(values)
        assert cmp.decode_rle(blob, vectorized=True).tolist() \
            == cmp.decode_rle(blob, vectorized=False).tolist() == values

    @pytest.mark.parametrize("block_size", [1, 2, 16, 128])
    def test_delta_block_boundaries(self, block_size):
        values = sorted(x * 37 % 10_000 for x in range(500))
        blob = cmp.encode_delta_blocks(values, block_size=block_size)
        assert cmp.decode_delta_blocks(blob).tolist() == values

    def test_delta_large_gaps_near_uint64(self):
        # Per-block cumsum wraps modulo 2**64; reconstruction must
        # still be exact for values that fit int64.
        values = [0, 2 ** 62, 2 ** 62 + 5, 2 ** 63 - 1]
        blob = cmp.encode_delta_blocks(values, block_size=2)
        assert cmp.decode_delta_blocks(blob, vectorized=True).tolist() \
            == values

    def test_decompress_column_threads_flag(self):
        values = [1, 1, 2, 3, 5, 8, 13]
        for scheme, blob in (cmp.compress_column(values),):
            vec = cmp.decompress_column(scheme, blob, vectorized=True)
            ref = cmp.decompress_column(scheme, blob, vectorized=False)
            assert vec.tolist() == ref.tolist() == values
