"""Distributed tracing, access log and SLO tracking on the serve path.

The contract under test (docs/OBSERVABILITY.md):

* every request the daemon accepts yields exactly one stitched trace,
  and on the fork-worker path its ``shard`` span count equals the
  vocabulary-pruned fan-out, each shard span carrying the worker's own
  span tree with rank-join retrieval counts;
* traces survive deadline partials and internal errors, and shed 429s /
  timed-out 504s still produce access-log records;
* the tail sampler always retains slow/error/shed/partial requests;
* `SLOTracker` burn rates follow the SRE-workbook arithmetic (429
  sheds excluded from the availability budget) and the offline rebuild
  from access-log JSONL matches the online tracker;
* the per-request observability tail stays cheap (the CI <=5% guard's
  microbenchmark half).
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.obs import MetricsRegistry
from repro.obs.distributed import (TRACE_WIRE_VERSION, TailSampler,
                                   TraceContext, count_spans, make_span,
                                   new_trace_id, read_jsonl,
                                   render_stitched, shift_span,
                                   stitch_trace)
from repro.obs.slo import (SLOConfig, SLOTracker, format_slo_report,
                           report_from_records)
from repro.serve import ServeDaemon, ShardedDatabase


class DaemonHarness:
    """Run a `ServeDaemon` on its own loop + thread; HTTP helpers
    (the tests/test_serve_daemon.py pattern)."""

    def __init__(self, db, **kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("metrics", MetricsRegistry())
        self.daemon = ServeDaemon(db, **kwargs)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.daemon.start())
        self._ready.set()
        self.loop.run_forever()

    def __enter__(self):
        self.thread.start()
        assert self._ready.wait(10), "daemon failed to start"
        return self

    def __exit__(self, *exc):
        asyncio.run_coroutine_threadsafe(self.daemon.stop(),
                                         self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()

    def request(self, path, method="GET"):
        conn = http.client.HTTPConnection("127.0.0.1", self.daemon.port,
                                          timeout=30)
        try:
            conn.request(method, path)
            resp = conn.getresponse()
            body = resp.read().decode("utf-8")
            return resp.status, body
        finally:
            conn.close()

    def get_json(self, path, method="GET"):
        status, body = self.request(path, method=method)
        return status, json.loads(body)


# ---------------------------------------------------------------------------
# wire format
# ---------------------------------------------------------------------------

class TestTraceContextWire:
    def test_roundtrip(self):
        ctx = TraceContext(parent_span="scatter", sampled=True)
        back = TraceContext.from_wire(ctx.to_wire())
        assert back.trace_id == ctx.trace_id
        assert back.parent_span == "scatter"
        assert back.sampled is True

    def test_child_keeps_trace_id(self):
        ctx = TraceContext()
        child = ctx.child("scatter")
        assert child.trace_id == ctx.trace_id
        assert child.parent_span == "scatter"

    def test_unknown_version_disables_collection(self):
        wire = TraceContext().to_wire()
        wire["v"] = TRACE_WIRE_VERSION + 1
        assert TraceContext.from_wire(wire) is None
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({}) is None

    def test_trace_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(t) == 16 and int(t, 16) >= 0 for t in ids)


# ---------------------------------------------------------------------------
# stitching (dict spans)
# ---------------------------------------------------------------------------

def _worker_tree():
    return make_span("shard_query", 0.0, 10.0, {"retrievals": 99}, [
        make_span("rank_join", 1.0, 8.0, {"retrievals": 99}),
    ])


def _shards(n):
    return [{"shard": sid, "elapsed_ms": 10.0, "partial": False,
             "retrievals": 99, "emitted": 5, "trace": _worker_tree()}
            for sid in range(n)]


class TestStitchTrace:
    def test_shard_spans_match_fanout(self):
        trace = stitch_trace("t" * 16, "topk", ["a", "b"], "elca", 5,
                             200, "ok", 15.0, 0.1, shards=_shards(3),
                             scatter_ms=12.0, merge_ms=1.0)
        assert trace["trace_id"] == "t" * 16
        assert count_spans(trace, "shard") == 3
        assert count_spans(trace, "shard_query") == 3
        assert count_spans(trace, "rank_join") == 3
        assert count_spans(trace, "queue_wait") == 1
        assert count_spans(trace, "merge") == 1

    def test_cached_request_has_cache_hit_no_scatter(self):
        trace = stitch_trace("c" * 16, "topk", ["a"], "elca", 5,
                             200, "ok", 0.2, 0.0, cached=True)
        assert count_spans(trace, "cache_hit") == 1
        assert count_spans(trace, "scatter") == 0

    def test_shed_request_stitches_bare_root(self):
        trace = stitch_trace("s" * 16, "topk", ["a"], "elca", 5,
                             429, "shed", 0.1, 0.0)
        root = trace["root"]
        assert root["tags"]["outcome"] == "shed"
        assert count_spans(trace, "shard") == 0

    def test_render_contains_names_and_tags(self):
        trace = stitch_trace("r" * 16, "topk", ["a"], "elca", 5,
                             200, "ok", 15.0, 0.1, shards=_shards(2))
        text = render_stitched(trace)
        assert "request" in text and "scatter" in text
        assert "shard_query" in text and "retrievals=99" in text

    def test_shift_span_moves_whole_tree(self):
        shifted = shift_span(_worker_tree(), 7.5)
        assert shifted["start_ms"] == 7.5
        assert shifted["children"][0]["start_ms"] == 8.5


# ---------------------------------------------------------------------------
# tail sampling
# ---------------------------------------------------------------------------

class TestTailSampler:
    def test_outliers_always_kept_even_at_rate_zero(self):
        sampler = TailSampler(slow_ms=100.0, sample_rate=0.0)
        assert sampler.keep(500, "error", 1.0)
        assert sampler.keep(429, "shed", 0.1)
        assert sampler.keep(504, "deadline", 0.1)
        assert sampler.keep(200, "partial", 1.0)
        assert sampler.keep(200, "ok", 250.0)   # slow
        assert not sampler.keep(200, "ok", 1.0)  # fast + healthy

    def test_rate_one_keeps_everything(self):
        sampler = TailSampler(slow_ms=100.0, sample_rate=1.0)
        assert all(sampler.keep(200, "ok", 1.0) for _ in range(20))

    def test_seeded_downsampling_is_reproducible(self):
        picks = [TailSampler(sample_rate=0.5, seed=7).keep(200, "ok", 1.0)
                 for _ in range(1)]
        again = [TailSampler(sample_rate=0.5, seed=7).keep(200, "ok", 1.0)
                 for _ in range(1)]
        assert picks == again
        sampler = TailSampler(sample_rate=0.5, seed=7)
        kept = sum(sampler.keep(200, "ok", 1.0) for _ in range(400))
        assert 100 < kept < 300


# ---------------------------------------------------------------------------
# SLO tracker arithmetic
# ---------------------------------------------------------------------------

class TestSLOTracker:
    def _tracker(self, **cfg):
        clock = {"now": 1000.0}
        tracker = SLOTracker(SLOConfig(**cfg),
                             clock=lambda: clock["now"])
        return tracker, clock

    def test_availability_burn_rate(self):
        # 1 bad in 100 budgeted = 1% bad ratio; budget 0.1% -> burn 10.
        tracker, _ = self._tracker(availability_target=0.999)
        for _ in range(99):
            tracker.record(200, 1.0)
        tracker.record(504, 1.0)
        win = tracker.report()["windows"]["60s"]
        assert win["requests"] == 100
        assert win["bad"] == 1
        assert win["availability"] == pytest.approx(0.99)
        assert win["availability_burn_rate"] == pytest.approx(10.0)

    def test_sheds_spend_no_availability_budget(self):
        tracker, _ = self._tracker(availability_target=0.999)
        for _ in range(10):
            tracker.record(429, 0.1)
        tracker.record(200, 1.0)
        win = tracker.report()["windows"]["60s"]
        assert win["shed"] == 10
        assert win["availability"] == 1.0
        assert win["availability_burn_rate"] == 0.0

    def test_latency_violations_alert(self):
        # Every 200 over a 0.01ms target: slow ratio 1.0, budget 1%,
        # burn rate 100 on every window -> alerts fire.
        tracker, _ = self._tracker(latency_target_ms=0.01,
                                   latency_target_ratio=0.99)
        for _ in range(50):
            tracker.record(200, 5.0)
        report = tracker.report()
        win = report["windows"]["60s"]
        assert win["slow"] == 50
        assert win["latency_burn_rate"] == pytest.approx(100.0)
        assert any(a["objective"] == "latency" for a in report["alerts"])
        assert "ALERT latency" in format_slo_report(report)

    def test_old_events_age_out_of_short_window(self):
        tracker, clock = self._tracker(availability_target=0.999)
        tracker.record(504, 1.0)
        clock["now"] += 120.0           # past the 60s window
        tracker.record(200, 1.0)
        report = tracker.report()
        assert report["windows"]["60s"]["bad"] == 0
        assert report["windows"]["300s"]["bad"] == 1
        assert report["lifetime"]["bad"] == 1

    def test_offline_rebuild_matches_online(self):
        tracker, clock = self._tracker()
        records = []
        for i, (status, ms) in enumerate(
                [(200, 5.0), (200, 900.0), (429, 0.1), (504, 2.0)]):
            tracker.record(status, ms)
            records.append({"wall_time": clock["now"], "status": status,
                            "elapsed_ms": ms})
            clock["now"] += 1.0
        clock["now"] -= 1.0              # report at the last event
        online = tracker.report()
        offline = report_from_records(records)
        assert offline["windows"] == online["windows"]
        assert offline["lifetime"] == online["lifetime"]


# ---------------------------------------------------------------------------
# the daemon end-to-end: fork workers ship span trees back
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sharded(dblp_db):
    return ShardedDatabase.from_database(dblp_db, 3)


@pytest.fixture(scope="module")
def pool_harness(sharded):
    with DaemonHarness(sharded, workers=1, max_concurrency=4,
                       queue_limit=8, slow_ms=0.0) as h:
        yield h


def _spans_named(span, name):
    out = [span] if span.get("name") == name else []
    for child in span.get("children", []):
        out.extend(_spans_named(child, name))
    return out


def _pruned_fanout(sharded, terms):
    """The vocabulary-pruned scatter width -- the oracle the stitched
    trace's shard span count must equal."""
    return len([s for s in sharded.shards
                if all(t in s.columnar_index for t in terms)])


class TestDaemonStitchedTraces:
    def test_one_trace_shard_count_equals_fanout(self, pool_harness,
                                                 sharded):
        added_before = pool_harness.daemon.traces.added
        status, body = pool_harness.get_json("/topk?q=alpha+beta&k=5")
        assert status == 200 and body["trace_id"]
        assert pool_harness.daemon.traces.added == added_before + 1
        status, trace = pool_harness.get_json(
            f"/debug/traces?trace_id={body['trace_id']}")
        assert status == 200
        want = _pruned_fanout(sharded, ["alpha", "beta"])
        assert want >= 2
        assert count_spans(trace, "shard") == want
        root = trace["root"]
        assert root["tags"]["mode"] == "pool"
        assert root["tags"]["fanout"] == want
        assert count_spans(trace, "queue_wait") == 1
        assert count_spans(trace, "scatter") == 1

    def test_shard_spans_carry_worker_trees(self, pool_harness):
        _, body = pool_harness.get_json("/topk?q=gamma+beta&k=4")
        _, trace = pool_harness.get_json(
            f"/debug/traces?trace_id={body['trace_id']}")
        shard_spans = _spans_named(trace["root"], "shard")
        assert shard_spans
        for span in shard_spans:
            workers = _spans_named(span, "shard_query")
            assert len(workers) == 1
            assert workers[0]["tags"]["retrievals"] >= 0
            assert workers[0]["tags"]["pid"] > 0
            # the engine's own spans came along under shard_query
            assert workers[0]["children"]

    def test_search_path_is_traced_too(self, pool_harness, sharded):
        _, body = pool_harness.get_json("/search?q=cx+cy&semantics=slca")
        _, trace = pool_harness.get_json(
            f"/debug/traces?trace_id={body['trace_id']}")
        assert count_spans(trace, "shard") == \
            _pruned_fanout(sharded, ["cx", "cy"])

    def test_access_log_references_same_trace(self, pool_harness):
        _, body = pool_harness.get_json("/topk?q=alpha+gamma&k=3")
        records = [r for r in pool_harness.daemon.access_log.records()
                   if r["trace_id"] == body["trace_id"]]
        assert len(records) == 1
        record = records[0]
        assert record["status"] == 200 and record["outcome"] == "ok"
        assert record["terms"] == ["alpha", "gamma"]
        assert record["shards"], "per-shard breakdown missing"
        for shard in record["shards"]:
            assert "trace" not in shard     # span trees stay out of logs
            assert "retrievals" in shard

    def test_cached_repeat_gets_fresh_trace_with_cache_hit(
            self, pool_harness):
        pool_harness.get_json("/topk?q=rare+beta&k=5")
        _, body = pool_harness.get_json("/topk?q=rare+beta&k=5")
        assert body["cached"] is True
        _, trace = pool_harness.get_json(
            f"/debug/traces?trace_id={body['trace_id']}")
        assert count_spans(trace, "cache_hit") == 1
        assert count_spans(trace, "shard") == 0

    def test_slow_log_has_stitched_shard_breakdown(self, pool_harness):
        pool_harness.get_json("/topk?q=beta+gamma&k=5")
        records = pool_harness.daemon.slow_log.records()
        assert records          # threshold 0: everything is slow
        record = records[-1]
        assert record.algorithm.startswith("serve-")
        assert record.stats["trace_id"]
        assert record.stats["shards"]
        assert record.trace["name"] == "request"

    def test_worker_metrics_surface_in_stats_and_metrics(
            self, pool_harness):
        pool_harness.get_json("/topk?q=alpha+beta&k=2")
        _, stats = pool_harness.get_json("/stats")
        assert stats["tracing"]["enabled"] is True
        assert stats["tracing"]["retained_traces"] > 0
        per_shard = stats["worker_metrics"]
        assert per_shard
        assert any("repro_shard_requests_total" in key
                   for counters in per_shard.values()
                   for key in counters)
        _, text = pool_harness.request("/metrics")
        assert "repro_worker_shard_requests_total" in text
        assert 'shard="' in text

    def test_latency_exemplars_in_exposition(self, pool_harness):
        pool_harness.get_json("/topk?q=gamma&k=2")
        _, text = pool_harness.request("/metrics")
        lines = [line for line in text.splitlines()
                 if line.startswith("repro_serve_latency_ms_bucket")
                 and "# {" in line]
        assert lines, "no exemplar on any latency bucket"
        assert 'trace_id="' in lines[0]

    def test_slo_endpoint_counts_requests(self, pool_harness):
        pool_harness.get_json("/topk?q=alpha&k=2")
        status, report = pool_harness.get_json("/slo")
        assert status == 200
        assert report["schema"] == "repro.obs.slo/v1"
        assert report["lifetime"]["requests"] > 0
        assert set(report["windows"]) == {"60s", "300s", "3600s"}

    def test_debug_traces_listing_and_404(self, pool_harness):
        pool_harness.get_json("/topk?q=beta&k=2")
        status, listing = pool_harness.get_json("/debug/traces?limit=5")
        assert status == 200 and listing["traces"]
        assert {"trace_id", "status", "outcome", "shards"} <= \
            set(listing["traces"][0])
        assert pool_harness.get_json(
            "/debug/traces?trace_id=feedfacefeedface")[0] == 404

    def test_deadline_partial_keeps_its_trace(self, pool_harness):
        # a (terms, k) pair no earlier test cached -- a result-cache hit
        # would answer before admission and never touch the deadline
        status, body = pool_harness.get_json(
            "/topk?q=alpha+beta&k=9&timeout_ms=0&partial=1")
        assert status == 200 and body["partial"] is True
        status, trace = pool_harness.get_json(
            f"/debug/traces?trace_id={body['trace_id']}")
        assert status == 200    # partial outcomes are always retained
        assert trace["outcome"] == "partial"


# ---------------------------------------------------------------------------
# admission rejections and errors still leave records
# ---------------------------------------------------------------------------

class TestRejectionObservability:
    def test_429_shed_is_logged_and_traced(self, sharded):
        with DaemonHarness(sharded, queue_limit=0) as h:
            status, body = h.get_json("/topk?q=alpha+beta&k=3")
            assert status == 429
            record = h.daemon.access_log.records()[-1]
            assert record["status"] == 429
            assert record["outcome"] == "shed"
            assert record["trace_id"] == body["trace_id"]
            trace = h.daemon.traces.get(body["trace_id"])
            assert trace is not None and trace["outcome"] == "shed"

    def test_504_deadline_is_logged_and_traced(self, sharded):
        with DaemonHarness(sharded, default_timeout_ms=0.0) as h:
            status, body = h.get_json("/topk?q=alpha+beta&k=3")
            assert status == 504
            record = h.daemon.access_log.records()[-1]
            assert record["status"] == 504
            assert record["outcome"] == "deadline"
            assert h.daemon.traces.get(body["trace_id"]) is not None

    def test_500_error_is_logged_and_traced(self, sharded):
        async def boom(*args, **kwargs):
            raise RuntimeError("injected shard failure")

        with DaemonHarness(sharded) as h:
            h.daemon._eval_topk = boom
            status, body = h.get_json("/topk?q=alpha&k=3")
            assert status == 500
            record = h.daemon.access_log.records()[-1]
            assert record["status"] == 500
            assert record["outcome"] == "error"
            trace = h.daemon.traces.get(body["trace_id"])
            assert trace["outcome"] == "error"
            assert h.daemon.slo.lifetime.bad == 1

    def test_400_bad_request_is_logged(self, sharded):
        with DaemonHarness(sharded) as h:
            status, body = h.get_json("/topk?q=alpha&k=zero")
            assert status == 400
            record = h.daemon.access_log.records()[-1]
            assert record["status"] == 400
            assert record["outcome"] == "bad_request"
            assert record["trace_id"] == body["trace_id"]

    def test_tail_rate_zero_still_logs_but_drops_healthy_traces(
            self, sharded):
        with DaemonHarness(sharded, tail_sample_rate=0.0,
                           tail_slow_ms=1e9) as h:
            _, body = h.get_json("/topk?q=alpha+beta&k=3")
            assert h.daemon.traces.added == 0
            assert h.daemon.traces.get(body["trace_id"]) is None
            assert h.daemon.access_log.records()[-1]["status"] == 200


# ---------------------------------------------------------------------------
# JSONL files and the offline SLO path
# ---------------------------------------------------------------------------

class TestLogFiles:
    def test_jsonl_mirrors_feed_offline_slo(self, sharded, tmp_path):
        access_path = tmp_path / "access.jsonl"
        trace_path = tmp_path / "traces.jsonl"
        with DaemonHarness(sharded, access_log_path=str(access_path),
                           trace_log_path=str(trace_path)) as h:
            for query in ("alpha+beta", "gamma", "rare+beta"):
                assert h.get_json(f"/topk?q={query}&k=3")[0] == 200
        records = read_jsonl(str(access_path))
        assert len(records) == 3
        assert all(r["status"] == 200 for r in records)
        traces = read_jsonl(str(trace_path))
        assert {t["trace_id"] for t in traces} == \
            {r["trace_id"] for r in records}
        report = report_from_records(records)
        assert report["lifetime"]["requests"] == 3
        assert report["lifetime"]["bad"] == 0

    def test_read_jsonl_skips_truncated_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(json.dumps({"status": 200}) + "\n"
                        + '{"status": 20',  # a dying daemon's last write
                        encoding="utf-8")
        assert read_jsonl(str(path)) == [{"status": 200}]


# ---------------------------------------------------------------------------
# the CI overhead guard's microbenchmark half
# ---------------------------------------------------------------------------

class TestServeObservabilityOverheadGuard:
    def test_obs_tail_is_cheap(self):
        from repro.bench.serve import measure_obs_tail

        tail = measure_obs_tail(repeats=60)
        # The bench guard enforces <= 5% of daemon request p50 (several
        # ms); here only a generous absolute sanity bound, so a slow CI
        # machine cannot flake the suite.
        assert tail["p50_ms"] < 5.0

    def test_guarded_ops_cover_the_traced_series(self):
        from repro.bench.regress import GUARDED_OPS

        assert "serve_daemon_topk_traced" in GUARDED_OPS
        assert "serve_obs_tail" in GUARDED_OPS
