"""Sharded evaluation equals the unsharded oracle, exactly.

The partitioning invariant (`repro.serve.sharding`): every shard keeps
the full tree but only the postings whose level-2 ancestor hashes to
it, so all evaluation at levels >= 2 is shard-local and only the
document root needs the cross-shard protocol in `repro.serve.merge`.
These tests pin the end-to-end consequence: `ShardedDatabase.search`
and `.search_topk` return the *same* ids, scores, order, witnesses and
`TopKResult.bound` as the single `XMLDatabase` for every shard count --
in memory, through a disk round-trip, through fault-injected I/O, and
(as a containment contract) under deadline partials.
"""

import math

import pytest

from repro import XMLDatabase
from repro.serve import ShardedDatabase, shard_of_dewey, subtree_shard_map

SHARD_COUNTS = (1, 2, 4, 7)
QUERIES = ("alpha beta", "rare gamma", "cx cy", "c3a c3b c3c",
           "alpha", "rare", "beta gamma rare")
SEMANTICS = ("elca", "slca")


def canon(results):
    return [(r.node.dewey, round(r.score, 9), r.level,
             tuple(round(w, 9) for w in r.witness_scores))
            for r in results]


def assert_search_equal(sharded, oracle, query, semantics):
    want = canon(oracle.search(query, semantics=semantics,
                               use_cache=False))
    got = canon(sharded.search(query, semantics=semantics,
                               use_cache=False))
    assert got == want, (query, semantics)


def assert_topk_equal(sharded, oracle, query, semantics, k=10):
    want = oracle.search_topk(query, k, semantics=semantics)
    got = sharded.search_topk(query, k, semantics=semantics)
    assert canon(got.results) == canon(want.results), (query, semantics)
    assert got.partial == want.partial
    if want.bound is None:
        assert got.bound is None
    else:
        assert got.bound == pytest.approx(want.bound)


class TestPartitioning:
    def test_shard_of_dewey_is_stable_and_root_safe(self):
        assert shard_of_dewey((1,), 4) == 0
        assert shard_of_dewey((1, 1), 4) == shard_of_dewey((1, 1, 9), 4)
        assert {shard_of_dewey((d, 2), 3) for d in range(1, 7)} == {0, 1, 2}

    def test_subtree_map_covers_every_root_child(self, small_db):
        mapping = subtree_shard_map(small_db.tree, 2)
        children = {c.jdewey[-1] for c in small_db.tree.root.children}
        assert set(mapping) == children
        assert set(mapping.values()) <= {0, 1}

    def test_every_posting_lands_in_exactly_one_shard(self, dblp_db):
        sharded = ShardedDatabase.from_database(dblp_db, 4)
        for term in ("alpha", "rare", "cx"):
            total = len(dblp_db.columnar_index.term_postings(term))
            split = sum(len(s.columnar_index.term_postings(term))
                        for s in sharded.shards)
            assert split == total


class TestEquivalence:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_search_matches_oracle(self, corpus_db, n_shards):
        sharded = ShardedDatabase.from_database(corpus_db, n_shards)
        for query in QUERIES:
            for semantics in SEMANTICS:
                assert_search_equal(sharded, corpus_db, query, semantics)

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_topk_matches_oracle(self, corpus_db, n_shards):
        sharded = ShardedDatabase.from_database(corpus_db, n_shards)
        for query in QUERIES:
            for semantics in SEMANTICS:
                assert_topk_equal(sharded, corpus_db, query, semantics)

    def test_small_doc_root_protocol(self, small_db):
        """The root is the interesting cross-shard case; SMALL_XML has
        root-level ELCA/SLCA differences that exercise it."""
        for n_shards in SHARD_COUNTS:
            sharded = ShardedDatabase.from_database(small_db, n_shards)
            for semantics in SEMANTICS:
                assert_search_equal(sharded, small_db, "xml data",
                                    semantics)
                assert_topk_equal(sharded, small_db, "xml data",
                                  semantics, k=5)

    def test_missing_term_raises_like_oracle(self, dblp_db):
        from repro.algorithms.base import EmptyResultError

        sharded = ShardedDatabase.from_database(dblp_db, 4)
        with pytest.raises(EmptyResultError):
            sharded.search("alpha zzz-not-a-term", strict=True)

    def test_batch_matches_oracle(self, dblp_db):
        sharded = ShardedDatabase.from_database(dblp_db, 4)
        queries = list(QUERIES[:4])
        want = dblp_db.search_batch(queries, k=5, use_cache=False)
        got = sharded.search_batch(queries, k=5, use_cache=False)
        for w, g in zip(want, got):
            assert canon(list(g)) == canon(list(w))
        assert not got.errors


class TestDiskRoundTrip:
    @pytest.fixture(scope="class")
    def sharded_dir(self, dblp_db, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("sharded") / "db")
        dblp_db.save(path, shards=4)
        return path

    @pytest.mark.parametrize("lazy", (True, False))
    def test_loaded_sharded_matches_oracle(self, dblp_db, sharded_dir,
                                           lazy):
        from repro.diskdb import load_database

        db = load_database(sharded_dir, lazy=lazy,
                           verify="lazy" if lazy else "eager")
        assert isinstance(db, ShardedDatabase)
        assert db.n_shards == 4
        for query in QUERIES[:4]:
            assert_search_equal(db, dblp_db, query, "elca")
            assert_topk_equal(db, dblp_db, query, "slca")

    def test_manifest_round_trips(self, sharded_dir):
        from repro.diskdb import load_database

        db = load_database(sharded_dir)
        assert db.manifest["count"] == 4
        assert db.manifest["strategy"] == "root-child-mod"
        assert len(db.manifest["dirs"]) == 4

    def test_faulty_load_still_exact(self, dblp_db, sharded_dir):
        """Transient per-shard I/O faults heal through the retry
        policy; the healed sharded database stays oracle-exact."""
        from repro.diskdb import load_database
        from repro.reliability.faults import FaultInjector
        from repro.reliability.retry import RetryPolicy

        inj = FaultInjector(error_rate=0.15, seed=3)
        policy = RetryPolicy(max_attempts=10, sleep=lambda _s: None,
                             seed=3)
        db = load_database(sharded_dir, injector=inj, retry=policy)
        assert isinstance(db, ShardedDatabase)
        for query in QUERIES[:3]:
            assert_search_equal(db, dblp_db, query, "elca")
            assert_topk_equal(db, dblp_db, query, "elca")


class TestDeadlinePartials:
    def test_partial_topk_is_consistent_prefix(self, dblp_db):
        """An expired budget may truncate, never corrupt: whatever
        comes back is a subset of the oracle's answers with exact
        scores, ordered best-first, and nothing missing scores above
        the reported bound."""
        sharded = ShardedDatabase.from_database(dblp_db, 4)
        oracle = {(r.node.dewey): round(r.score, 9)
                  for r in dblp_db.search_topk(
                      "beta gamma rare", 50, semantics="elca").results}
        result = sharded.search_topk("beta gamma rare", 50,
                                     semantics="elca", timeout_ms=0.0,
                                     on_deadline="partial")
        assert result.partial
        scores = [r.score for r in result.results]
        assert scores == sorted(scores, reverse=True)
        for r in result.results:
            assert oracle[r.node.dewey] == round(r.score, 9)
        if result.bound is not None and not math.isinf(result.bound):
            returned = {r.node.dewey for r in result.results}
            missing_above = [d for d, s in oracle.items()
                             if d not in returned
                             and s > round(result.bound, 9) + 1e-9]
            assert missing_above == []

    def test_partial_search_flags_stats(self, dblp_db):
        sharded = ShardedDatabase.from_database(dblp_db, 4)
        results, stats = sharded.search("beta gamma rare",
                                        timeout_ms=0.0,
                                        on_deadline="partial",
                                        with_stats=True)
        assert stats.partial
        full = {r.node.dewey for r in dblp_db.search("beta gamma rare",
                                                     use_cache=False)}
        assert {r.node.dewey for r in results} <= full

    def test_raise_policy_raises(self, dblp_db):
        from repro.reliability.errors import DeadlineExceeded

        sharded = ShardedDatabase.from_database(dblp_db, 2)
        with pytest.raises(DeadlineExceeded):
            sharded.search("beta gamma", timeout_ms=0.0,
                           on_deadline="raise")

    def test_generous_budget_stays_exact(self, dblp_db):
        sharded = ShardedDatabase.from_database(dblp_db, 4)
        result = sharded.search_topk("alpha beta", 10, timeout_ms=60000,
                                     on_deadline="partial")
        want = dblp_db.search_topk("alpha beta", 10)
        assert canon(result.results) == canon(want.results)
        assert not result.partial


class TestCacheIsolation:
    def test_shard_caches_not_shared(self, dblp_db):
        """Per-shard result caches must stay private: result keys carry
        no shard id, so one shared cache would serve shard A's partial
        view of a query to shard B."""
        sharded = ShardedDatabase.from_database(dblp_db, 4)
        caches = {id(s.cache) for s in sharded.shards if s.cache}
        assert len(caches) == len([s for s in sharded.shards if s.cache])

    def test_facade_cache_hit_and_clear(self, dblp_db):
        sharded = ShardedDatabase.from_database(dblp_db, 2)
        first = sharded.search("alpha beta")
        stats = sharded.cache.results.stats
        hits = stats.hits
        again = sharded.search("alpha beta")
        assert canon(again) == canon(first)
        assert sharded.cache.results.stats.hits == hits + 1
        sharded.clear_caches()
        assert len(sharded.cache.results) == 0
