"""Tests for the perf-regression time series (`repro.bench.regress`).

History append/load round-trips, the comparable-window median check
(including the acceptance scenario: a synthetic 20% p50 regression must
fail with exit code 1, the real trajectory must pass), and the pinned
workload seeds the series depends on.
"""

import copy
import json

import pytest

from repro.bench import regress
from repro.bench.regress import (DEFAULT_THRESHOLD, GUARDED_OPS,
                                 HISTORY_SCHEMA, OpDelta, append_run, check,
                                 env_fingerprint, git_sha, history_entry,
                                 load_history)


def _report(p50=10.0, scale="small", **extra_config):
    """A minimal BENCH_hotpath-shaped report."""
    config = {"scale": scale, "n_papers": 300, "repeats": 5,
              "seed": 7, "workload_seed": 11, "erasure_seed": 5}
    config.update(extra_config)
    return {
        "schema": "repro.bench.hotpath/v1",
        "config": config,
        "workload": {"queries": [["a", "b"]], "semantics": "elca"},
        "ops": {op: {"p50_ms": p50, "p95_ms": p50 * 1.5, "repeats": 5}
                for op in GUARDED_OPS},
        "metrics": {"counters": {}},
        "speedups": {"level_loop": 3.0},
    }


def _entry(p50=10.0, scale="small", env=None, ts=0.0):
    return history_entry(_report(p50=p50, scale=scale),
                         sha="a" * 40,
                         env=env or {"platform": "Linux", "python": "3.x"},
                         timestamp=ts)


# ---------------------------------------------------------------------------
# entries and the JSONL file
# ---------------------------------------------------------------------------

class TestHistoryEntry:
    def test_carries_provenance_and_ops(self):
        entry = _entry(p50=12.5)
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["git_sha"] == "a" * 40
        assert entry["scale"] == "small"
        assert entry["config"]["workload_seed"] == 11
        assert entry["config"]["erasure_seed"] == 5
        assert entry["ops"]["query_uncached"]["p50_ms"] == 12.5
        assert entry["speedups"] == {"level_loop": 3.0}
        # The bulky payloads stay out of the series.
        assert "metrics" not in entry
        assert "workload" not in entry

    def test_defaults_fill_sha_env_timestamp(self):
        entry = history_entry(_report())
        assert entry["env"] == env_fingerprint()
        assert entry["timestamp"] > 0
        assert entry["git_sha"] == git_sha()  # repo is a checkout

    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        first = append_run(_report(p50=10.0), path, sha="a" * 40)
        second = append_run(_report(p50=11.0), path, sha="b" * 40)
        loaded = load_history(path)
        assert loaded == [first, second]

    def test_load_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = _entry()
        path.write_text("not json at all\n"
                        + json.dumps(good) + "\n"
                        + '{"schema": "x", "no_ops": true}\n'
                        + "\n"
                        + '{"truncated": \n')
        assert load_history(str(path)) == [good]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "absent.jsonl")) == []


# ---------------------------------------------------------------------------
# the check
# ---------------------------------------------------------------------------

class TestCheck:
    def test_real_trajectory_passes(self):
        history = [_entry(p50=10.0), _entry(p50=10.4), _entry(p50=9.8),
                   _entry(p50=10.1)]
        verdict = check(history)
        assert verdict.checked
        assert verdict.ok
        assert len(verdict.deltas) == len(GUARDED_OPS)
        assert "PASS" in verdict.format()

    def test_twenty_percent_regression_fails(self):
        """The acceptance scenario: +20% p50 over the trailing median
        must fail against the 15% threshold."""
        history = [_entry(p50=10.0), _entry(p50=10.0), _entry(p50=12.0)]
        verdict = check(history)
        assert verdict.checked
        assert not verdict.ok
        assert {d.op for d in verdict.regressions} == set(GUARDED_OPS)
        worst = verdict.regressions[0]
        assert worst.delta == pytest.approx(0.20)
        assert "FAIL" in verdict.format()
        assert "!!" in verdict.format()

    def test_regression_below_threshold_passes(self):
        history = [_entry(p50=10.0), _entry(p50=10.0), _entry(p50=11.0)]
        assert check(history).ok  # +10% < 15%

    def test_median_absorbs_one_noisy_prior(self):
        # One slow outlier run must not drag the baseline up enough
        # to hide a regression (median, not mean).
        history = [_entry(p50=10.0), _entry(p50=10.0), _entry(p50=10.0),
                   _entry(p50=40.0), _entry(p50=12.5)]
        verdict = check(history)
        assert not verdict.ok
        assert verdict.regressions[0].baseline_ms == 10.0

    def test_insufficient_history_passes_unchecked(self):
        verdict = check([_entry(p50=10.0), _entry(p50=100.0)])
        assert not verdict.checked
        assert verdict.ok
        assert "not checked" in verdict.format()
        assert check([]).checked is False

    def test_different_env_is_not_comparable(self):
        laptop = {"platform": "Darwin", "python": "3.x"}
        ci = {"platform": "Linux", "python": "3.x"}
        history = [_entry(p50=5.0, env=laptop), _entry(p50=5.0, env=laptop),
                   _entry(p50=10.0, env=ci)]
        verdict = check(history)
        # The CI entry has no comparable priors: seeded, not failed.
        assert not verdict.checked
        assert "comparable" in verdict.reason

    def test_different_scale_is_not_comparable(self):
        history = [_entry(p50=100.0, scale="full"),
                   _entry(p50=100.0, scale="full"),
                   _entry(p50=5.0, scale="small")]
        assert not check(history).checked

    def test_window_limits_the_baseline(self):
        old = [_entry(p50=100.0) for _ in range(10)]
        recent = [_entry(p50=10.0) for _ in range(5)]
        verdict = check(old + recent + [_entry(p50=10.5)], window=5)
        assert verdict.ok
        assert all(d.baseline_ms == 10.0 for d in verdict.deltas)

    def test_missing_op_is_skipped(self):
        history = [_entry(p50=10.0) for _ in range(3)]
        for entry in history:
            del entry["ops"]["query_cached"]
        verdict = check(copy.deepcopy(history))
        ops = {d.op for d in verdict.deltas}
        assert "query_cached" not in ops
        assert ops == set(GUARDED_OPS) - {"query_cached"}

    def test_op_delta_handles_zero_baseline(self):
        delta = OpDelta(op="x", latest_ms=1.0, baseline_ms=0.0, window=3)
        assert delta.delta == 0.0
        assert "x:" in delta.format()

    def test_microsecond_jitter_below_floor_passes(self):
        # +40% relative on a 20us op is 8us of absolute movement --
        # allocator/timer jitter, not a regression.
        history = [_entry(p50=0.020), _entry(p50=0.020),
                   _entry(p50=0.028)]
        verdict = check(history)
        assert verdict.checked
        assert verdict.ok
        assert "floor" in verdict.format()

    def test_floor_can_be_disabled(self):
        history = [_entry(p50=0.020), _entry(p50=0.020),
                   _entry(p50=0.028)]
        verdict = check(history, min_delta_ms=0.0)
        assert not verdict.ok  # +40% > 15% with no absolute floor

    def test_floor_does_not_shield_real_microsecond_growth(self):
        # A micro op that grows past the floor still fails.
        history = [_entry(p50=0.020), _entry(p50=0.020),
                   _entry(p50=0.080)]
        assert not check(history).ok


# ---------------------------------------------------------------------------
# CLI exit codes (the CI contract)
# ---------------------------------------------------------------------------

class TestMain:
    def _write_history(self, tmp_path, p50s):
        path = str(tmp_path / "history.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            for p50 in p50s:
                handle.write(json.dumps(_entry(p50=p50)) + "\n")
        return path

    def test_check_passes_on_flat_series(self, tmp_path, capsys):
        path = self._write_history(tmp_path, [10.0, 10.2, 9.9, 10.1])
        assert regress.main(["--history", path, "--check"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_exits_nonzero_on_regression(self, tmp_path, capsys):
        path = self._write_history(tmp_path, [10.0, 10.0, 12.0])
        assert regress.main(["--history", path, "--check"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_threshold_flag_is_respected(self, tmp_path):
        path = self._write_history(tmp_path, [10.0, 10.0, 12.0])
        assert regress.main(["--history", path, "--check",
                             "--threshold", "0.25"]) == 0

    def test_append_then_check(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        report_path.write_text(json.dumps(_report(p50=10.0)))
        history = str(tmp_path / "history.jsonl")
        for _ in range(3):
            assert regress.main(["--history", history, "--append",
                                 str(report_path), "--check"]) == 0
        assert len(load_history(history)) == 3
        out = capsys.readouterr().out
        assert "appended" in out

    def test_requires_an_action(self, tmp_path):
        with pytest.raises(SystemExit):
            regress.main(["--history", str(tmp_path / "h.jsonl")])


# ---------------------------------------------------------------------------
# pinned bench seeds (satellite 1)
# ---------------------------------------------------------------------------

class TestPinnedSeeds:
    def test_workbench_threads_the_workload_seed(self):
        from repro.bench.harness import BenchConfig, Workbench

        config = BenchConfig.small()
        assert config.workload_seed == 11
        bench = Workbench(config)
        import numpy as np

        expected = np.random.default_rng(config.workload_seed)
        got = bench.builder.rng
        assert got.integers(0, 1 << 30) == expected.integers(0, 1 << 30)

    def test_report_records_every_seed(self):
        report = _report()
        for key in ("seed", "workload_seed", "erasure_seed"):
            assert key in report["config"]
        entry = history_entry(report, sha="c" * 40, env={}, timestamp=1.0)
        for key in ("seed", "workload_seed", "erasure_seed"):
            assert key in entry["config"]


class TestSkipReporting:
    """Newly added guarded ops must be *visibly* skipped, never
    silently dropped from a PASS verdict."""

    def test_new_op_without_baseline_is_reported_and_passes(self):
        history = [_entry(p50=10.0) for _ in range(3)]
        for entry in history[:-1]:          # op exists only in latest
            del entry["ops"]["serve_daemon_topk"]
        verdict = check(copy.deepcopy(history))
        assert verdict.checked and verdict.ok
        skipped = dict(verdict.skipped)
        assert "serve_daemon_topk" in skipped
        assert "seeds its series" in skipped["serve_daemon_topk"]
        text = verdict.format()
        assert "PASS" in text
        assert "serve_daemon_topk: not checked" in text

    def test_op_missing_from_latest_is_reported(self):
        history = [_entry(p50=10.0) for _ in range(3)]
        del history[-1]["ops"]["query_cached"]
        verdict = check(copy.deepcopy(history))
        assert verdict.ok
        skipped = dict(verdict.skipped)
        assert "not measured" in skipped["query_cached"]

    def test_all_ops_skipped_says_so_in_the_headline(self):
        history = [_entry(p50=10.0) for _ in range(3)]
        for entry in history[:-1]:
            entry["ops"] = {}
        verdict = check(copy.deepcopy(history))
        assert verdict.checked and verdict.ok
        assert not verdict.deltas
        assert "nothing comparable" in verdict.format()

    def test_cli_check_exits_zero_with_skip_message(self, tmp_path,
                                                    capsys):
        history = tmp_path / "h.jsonl"
        entries = [_entry(p50=10.0, ts=float(i)) for i in range(3)]
        for entry in entries[:-1]:
            del entry["ops"]["serve_daemon_topk"]
        with open(history, "w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry) + "\n")
        rc = regress.main(["--history", str(history), "--check"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "serve_daemon_topk: not checked" in out
