"""Tests for the query-serving cache layer (`repro.cache`) and
`XMLDatabase.search_batch`."""

import pytest

from repro import XMLDatabase
from repro.cache import LRUCache, QueryCache, result_key


def deweys(results):
    return [r.node.dewey for r in results]


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache(2)
        assert cache.get("a") is None
        assert cache.stats.misses == 1
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1

    def test_eviction_order_and_counter(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a": "b" is now LRU
        cache.put("c", 3)
        assert cache.stats.evictions == 1
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_overwrite_same_key(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert cache.stats.evictions == 0

    def test_clear_resets(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 0


class TestQueryCacheWiring:
    def test_result_cache_hit_skips_evaluation(self, small_db):
        first = small_db.search("xml data")
        stats = small_db.cache.results.stats
        hits_before = stats.hits
        second = small_db.search("xml data")
        assert stats.hits == hits_before + 1
        assert deweys(first) == deweys(second)

    def test_use_cache_false_bypasses(self, small_db):
        small_db.search("xml data")
        stats = small_db.cache.results.stats
        hits_before = stats.hits
        small_db.search("xml data", use_cache=False)
        assert stats.hits == hits_before

    def test_cached_results_are_copies(self, small_db):
        first = small_db.search("xml data")
        first.clear()
        assert len(small_db.search("xml data")) > 0

    def test_open_forwards_cache_knobs(self, small_db, tmp_path):
        path = str(tmp_path / "db")
        small_db.save(path)
        shared = QueryCache(postings_capacity=4, result_capacity=4)
        db = XMLDatabase.open(path, cache=shared)
        assert db.cache is shared
        disabled = XMLDatabase.open(path, postings_cache_size=0,
                                    result_cache_size=0)
        first = disabled.search("xml data")
        second = disabled.search("xml data")
        assert deweys(first) == deweys(second)
        assert len(disabled.cache.results) == 0

    def test_correctness_after_eviction(self):
        db = XMLDatabase.from_xml_text(
            "<r><a>xml data</a><b>xml</b><c>data</c></r>",
            result_cache_size=1)
        expected_pair = deweys(db.search("xml data", use_cache=False))
        expected_xml = deweys(db.search("xml", use_cache=False))
        for _ in range(3):  # alternate: each query evicts the other
            assert deweys(db.search("xml data")) == expected_pair
            assert deweys(db.search("xml")) == expected_xml
        assert db.cache.results.stats.evictions > 0

    def test_semantics_and_algorithm_keyed_separately(self, fig1_db):
        elca = fig1_db.search("xml data", semantics="elca")
        slca = fig1_db.search("xml data", semantics="slca")
        assert deweys(fig1_db.search("xml data", semantics="slca")) == \
            deweys(slca)
        # In the Figure-1 tree the root is an ELCA but not an SLCA, so
        # the two semantics genuinely differ -- a shared cache key would
        # have returned the wrong set above.
        assert deweys(elca) != deweys(slca)

    def test_refresh_clears_cache(self, small_db):
        small_db.search("xml data")
        assert len(small_db.cache.results) > 0
        small_db.refresh()
        assert len(small_db.cache.results) == 0
        assert len(small_db.cache.postings) == 0

    def test_postings_cache_counts(self, small_db):
        small_db.search("xml data")
        stats = small_db.cache.postings.stats
        assert stats.misses >= 2
        small_db.search("xml data", use_cache=False)  # re-evaluates
        assert stats.hits >= 2

    def test_cache_stats_shape(self, small_db):
        report = small_db.cache_stats()
        assert set(report) == {"postings", "results"}
        assert set(report["results"]) == {"hits", "misses", "evictions"}

    def test_query_postings_order_matches_index(self, small_db):
        index = small_db.columnar_index
        cache = QueryCache()
        direct = index.query_postings(["data", "xml"])
        cached = cache.query_postings(index, ["data", "xml"])
        assert [p.term for p in cached] == [p.term for p in direct]
        again = cache.query_postings(index, ["data", "xml"])
        assert [id(p) for p in again] == [id(p) for p in cached]


class TestSearchBatch:
    @pytest.mark.parametrize("threads", [None, 4])
    def test_batch_matches_sequential_search(self, small_db, threads):
        queries = ["xml data", "data", "xml keyword", "zzz missing"]
        expected = [deweys(small_db.search(q, use_cache=False))
                    for q in queries]
        got = small_db.search_batch(queries, threads=threads,
                                    use_cache=False)
        assert [deweys(rs) for rs in got] == expected

    @pytest.mark.parametrize("threads", [None, 4])
    def test_batch_matches_sequential_topk(self, small_db, threads):
        queries = ["xml data", "data xml"]
        expected = [deweys(small_db.search_topk(q, k=3).results)
                    for q in queries]
        got = small_db.search_batch(queries, k=3, threads=threads,
                                    use_cache=False)
        assert [deweys(rs) for rs in got] == expected

    def test_repeated_query_reports_hit_and_skips_levels(self, small_db):
        pairs = small_db.search_batch(["xml data", "xml data"],
                                      with_stats=True)
        (r1, s1), (r2, s2) = pairs
        assert s1.cache_misses == 1 and s1.levels_processed > 0
        assert s2.cache_hits == 1 and s2.levels_processed == 0
        assert deweys(r1) == deweys(r2)

    def test_eviction_counter_on_stats(self):
        db = XMLDatabase.from_xml_text(
            "<r><a>xml data</a><b>xml</b></r>", result_cache_size=1)
        pairs = db.search_batch(["xml data", "xml", "xml data"],
                                with_stats=True)
        assert sum(s.cache_evictions for _, s in pairs) >= 1

    def test_threaded_batch_shares_cache(self, small_db):
        small_db.cache.clear()
        queries = ["xml data"] * 8
        results = small_db.search_batch(queries, threads=4)
        assert all(deweys(rs) == deweys(results[0]) for rs in results)
        stats = small_db.cache.results.stats
        assert stats.hits + stats.misses == 8
        assert stats.misses >= 1
        assert stats.hits >= 1

    def test_string_and_list_queries_share_cache_key(self, small_db):
        small_db.cache.clear()
        small_db.search_batch([["XML", "Data"]])
        pairs = small_db.search_batch(["xml data"], with_stats=True)
        assert pairs[0][1].cache_hits == 1

    def test_semantics_validated(self, small_db):
        with pytest.raises(ValueError):
            small_db.search_batch(["xml"], semantics="nope")

    def test_result_key_shape(self):
        assert result_key(["a", "b"], "elca", "join") == \
            (("a", "b"), "elca", "join", None)


class TestClearAndInvalidate:
    """`QueryCache.clear` / `invalidate` and their metric contract."""

    def test_lru_remove_is_not_an_eviction(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.remove("a") is True
        assert cache.remove("a") is False
        assert cache.stats.evictions == 0
        assert len(cache) == 0

    def test_clear_empties_both_caches(self, small_db):
        small_db.search("xml data")
        qc = small_db.cache
        assert len(qc.results) > 0
        qc.clear()
        assert len(qc.results) == 0 and len(qc.postings) == 0
        assert qc.results.stats.hits == 0
        # the next identical query re-evaluates (a miss, not a hit)
        pairs = small_db.search_batch(["xml data"], with_stats=True)
        stats = pairs[0][1]
        assert stats.cache_hits == 0 and stats.cache_misses == 1
        assert stats.levels_processed > 0

    def test_clear_keeps_request_counters_monotone(self):
        """Prometheus counters must never go down across a clear."""
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        db = XMLDatabase.from_xml_text(
            "<r><a>xml data</a><b>xml data</b></r>", metrics=registry)
        db.search("xml data")
        db.search("xml data")           # hit
        counters = registry.snapshot()["counters"]
        before = sum(v for k, v in counters.items()
                     if k.startswith("repro_cache_requests_total"))
        assert before > 0
        db.cache.clear()
        counters = registry.snapshot()["counters"]
        after = sum(v for k, v in counters.items()
                    if k.startswith("repro_cache_requests_total"))
        assert after == before          # clear never rewinds a counter
        db.search("xml data")           # miss after clear
        counters = registry.snapshot()["counters"]
        assert sum(v for k, v in counters.items()
                   if k.startswith("repro_cache_requests_total")) > after

    def test_clear_restarts_hit_ratio_gauge(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        db = XMLDatabase.from_xml_text(
            "<r><a>xml data</a><b>xml data</b></r>", metrics=registry)
        db.search("xml data")
        db.search("xml data")
        gauge = registry.gauge("repro_cache_hit_ratio",
                               {"cache": "results"})
        assert gauge.value > 0.0
        db.cache.clear()
        # derived gauge reads the live (fresh) stats, not the dead ones
        assert gauge.value == 0.0

    def test_invalidate_drops_postings_and_matching_results(self):
        qc = QueryCache(postings_capacity=8, result_capacity=8)
        qc.postings.put("xml", "POSTINGS")
        qc.put_results(result_key(["xml", "data"], "elca", "join"), [])
        qc.put_results(result_key(["data"], "elca", "join"), [])
        qc.put_results(result_key(["xml"], "slca", "join", 5), [])
        dropped = qc.invalidate("xml")
        assert dropped == 3
        assert "xml" not in qc.postings
        assert qc.get_results(result_key(["data"], "elca", "join")) == []
        assert qc.get_results(
            result_key(["xml", "data"], "elca", "join")) is None

    def test_invalidate_unknown_term_is_a_noop(self):
        qc = QueryCache()
        qc.put_results(result_key(["data"], "elca", "join"), [])
        assert qc.invalidate("nope") == 0
        assert qc.get_results(result_key(["data"], "elca", "join")) == []

    def test_invalidated_query_reevaluates(self, small_db):
        small_db.cache.clear()
        small_db.search("xml data")
        small_db.cache.invalidate("xml")
        pairs = small_db.search_batch(["xml data"], with_stats=True)
        stats = pairs[0][1]
        assert stats.cache_misses == 1 and stats.levels_processed > 0


class TestDecodedColumnCache:
    """The byte-budget LRU of decoded columns (format-v4 serving)."""

    @staticmethod
    def _column(level=1, n=16):
        import numpy as np

        from repro.index.columnar import Column

        values = np.arange(n, dtype=np.int64)
        return Column(level, values, values.copy())

    def test_get_put_roundtrip(self):
        from repro.cache import DecodedColumnCache

        cache = DecodedColumnCache(capacity_bytes=1 << 20)
        key = ("ns", "xml", 1)
        assert cache.get(key) is None
        column = self._column()
        cache.put(key, column)
        assert cache.get(key) is column
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.current_bytes == (column.values.nbytes
                                       + column.seq_idx.nbytes)

    def test_budget_evicts_least_recently_used(self):
        from repro.cache import DecodedColumnCache

        column = self._column()
        cost = column.values.nbytes + column.seq_idx.nbytes
        cache = DecodedColumnCache(capacity_bytes=2 * cost)
        cache.put("a", self._column())
        cache.put("b", self._column())
        cache.get("a")                       # b becomes the LRU entry
        cache.put("c", self._column())
        assert cache.get("a") is not None
        assert cache.get("b") is None
        assert cache.get("c") is not None
        assert cache.stats.evictions == 1
        assert cache.current_bytes <= cache.capacity_bytes

    def test_oversized_entry_never_admitted(self):
        from repro.cache import DecodedColumnCache

        cache = DecodedColumnCache(capacity_bytes=64)
        cache.put("big", self._column(n=1024))
        assert len(cache) == 0 and cache.current_bytes == 0

    def test_zero_capacity_disables(self):
        from repro.cache import DecodedColumnCache

        cache = DecodedColumnCache(capacity_bytes=0)
        cache.put("k", self._column())
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_reput_same_key_replaces_cost(self):
        from repro.cache import DecodedColumnCache

        cache = DecodedColumnCache(capacity_bytes=1 << 20)
        cache.put("k", self._column(n=16))
        small = self._column(n=4)
        cache.put("k", small)
        assert cache.current_bytes == (small.values.nbytes
                                       + small.seq_idx.nbytes)
        assert len(cache) == 1

    def test_clear_resets(self):
        from repro.cache import DecodedColumnCache

        cache = DecodedColumnCache(capacity_bytes=1 << 20)
        cache.put("k", self._column())
        cache.get("k")
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_as_dict_snapshot(self):
        from repro.cache import DecodedColumnCache

        cache = DecodedColumnCache(capacity_bytes=1 << 20)
        cache.put("k", self._column())
        cache.get("k")
        cache.get("absent")
        snap = cache.as_dict()
        assert snap["entries"] == 1
        assert snap["capacity_bytes"] == 1 << 20
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["bytes"] == cache.current_bytes

    def test_bind_metrics_publishes_counters(self):
        from repro.cache import DecodedColumnCache
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        cache = DecodedColumnCache(capacity_bytes=1 << 20,
                                   metrics=registry)
        cache.put("k", self._column())
        cache.get("k")
        cache.get("absent")
        snap = registry.snapshot()
        counters = snap["counters"]
        hits = counters[
            'repro_cache_requests_total{cache="decoded",outcome="hit"}']
        misses = counters[
            'repro_cache_requests_total{cache="decoded",outcome="miss"}']
        assert hits == 1 and misses == 1
        ratio = snap["gauges"]['repro_cache_hit_ratio{cache="decoded"}']
        assert ratio == 0.5
