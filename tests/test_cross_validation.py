"""Cross-validation: every algorithm against the oracle on both corpora.

This is the heart of the correctness argument: the stack-based,
index-based, and join-based algorithms must produce *identical* result
sets and scores under both semantics, and every top-K algorithm must
return exactly the K best-scored of those results.
"""

import random

import pytest

from repro.algorithms.base import sort_by_score
from repro.algorithms.oracle import SemanticsOracle
from repro.datagen.workload import random_terms_in_range

COMPLETE_ALGORITHMS = ("join", "stack", "index")
TOPK_ALGORITHMS = ("topk-join", "rdil", "hybrid")

PLANTED_QUERIES = [
    ("alpha", "beta"),
    ("alpha", "beta", "gamma"),
    ("cx", "cy"),
    ("c3a", "c3b", "c3c"),
    ("rare", "gamma"),
    ("alpha",),
]


def random_queries(db, n, seed):
    terms = random_terms_in_range(db.inverted_index, 4, 500, 14, seed=seed)
    rng = random.Random(seed)
    queries = []
    for _ in range(n):
        k = rng.randint(2, min(4, len(terms)))
        queries.append(tuple(rng.sample(terms, k)))
    return queries


def result_key(results):
    return [(r.node.dewey, round(r.score, 9)) for r in results]


class TestCompleteAlgorithmsAgree:
    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    @pytest.mark.parametrize("terms", PLANTED_QUERIES)
    def test_planted_queries(self, corpus_db, semantics, terms):
        oracle = SemanticsOracle(corpus_db.tree, corpus_db.inverted_index)
        expected = result_key(oracle.evaluate(list(terms), semantics))
        for algorithm in COMPLETE_ALGORITHMS:
            got = result_key(corpus_db.search(list(terms),
                                              semantics=semantics,
                                              algorithm=algorithm))
            assert got == expected, algorithm

    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    def test_random_vocabulary_queries(self, corpus_db, semantics):
        oracle = SemanticsOracle(corpus_db.tree, corpus_db.inverted_index)
        for terms in random_queries(corpus_db, 6, seed=42):
            expected = result_key(oracle.evaluate(list(terms), semantics))
            for algorithm in COMPLETE_ALGORITHMS:
                got = result_key(corpus_db.search(list(terms),
                                                  semantics=semantics,
                                                  algorithm=algorithm))
                assert got == expected, (algorithm, terms)


class TestTopKAlgorithmsAgree:
    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    @pytest.mark.parametrize("terms", PLANTED_QUERIES)
    def test_planted_queries(self, corpus_db, semantics, terms):
        oracle = SemanticsOracle(corpus_db.tree, corpus_db.inverted_index)
        full = sort_by_score(oracle.evaluate(list(terms), semantics))
        for k in (1, 5):
            expected = [round(r.score, 9) for r in full[:k]]
            for algorithm in TOPK_ALGORITHMS:
                got = corpus_db.search_topk(list(terms), k,
                                            semantics=semantics,
                                            algorithm=algorithm)
                assert [round(r.score, 9) for r in got] == expected, \
                    (algorithm, terms, k)

    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    def test_random_vocabulary_queries(self, corpus_db, semantics):
        oracle = SemanticsOracle(corpus_db.tree, corpus_db.inverted_index)
        for terms in random_queries(corpus_db, 4, seed=99):
            full = sort_by_score(oracle.evaluate(list(terms), semantics))
            expected = [round(r.score, 9) for r in full[:5]]
            for algorithm in TOPK_ALGORITHMS:
                got = corpus_db.search_topk(list(terms), 5,
                                            semantics=semantics,
                                            algorithm=algorithm)
                assert [round(r.score, 9) for r in got] == expected, \
                    (algorithm, terms)


class TestSemanticInvariants:
    """Structural invariants that must hold on any corpus."""

    @pytest.mark.parametrize("terms", PLANTED_QUERIES)
    def test_slca_subset_of_elca(self, corpus_db, terms):
        elca = {r.node.dewey for r in corpus_db.search(list(terms),
                                                       semantics="elca")}
        slca = {r.node.dewey for r in corpus_db.search(list(terms),
                                                       semantics="slca")}
        assert slca <= elca

    @pytest.mark.parametrize("terms", PLANTED_QUERIES)
    def test_slca_antichain(self, corpus_db, terms):
        slca = [r.node.dewey for r in corpus_db.search(list(terms),
                                                       semantics="slca")]
        for i, d1 in enumerate(slca):
            nxt = slca[i + 1] if i + 1 < len(slca) else None
            if nxt is not None:
                assert nxt[:len(d1)] != d1  # sorted: ancestor would abut

    @pytest.mark.parametrize("terms", PLANTED_QUERIES)
    def test_every_result_contains_all_keywords(self, corpus_db, terms):
        tok = corpus_db.tokenizer
        for r in corpus_db.search(list(terms), semantics="elca"):
            text = r.node.subtree_text().lower()
            found = set(tok.tokens(text))
            assert set(terms) <= found

    def test_adding_keywords_never_lowers_result_levels(self, corpus_db):
        """More keywords -> results can only move up or vanish."""
        two = corpus_db.search(["alpha", "beta"], semantics="slca")
        three = corpus_db.search(["alpha", "beta", "gamma"],
                                 semantics="slca")
        if two and three:
            min2 = min(r.level for r in two)
            assert all(r.level <= max(x.level for x in two) + 99
                       for r in three)  # sanity: defined levels
            # Each 3-keyword SLCA contains some {alpha, beta} witness
            # pair, so it is an ancestor-or-self of a 2-keyword LCA.
            two_deweys = [r.node.dewey for r in two]
            for r in three:
                d = r.node.dewey
                assert any(t[:len(d)] == d or d[:len(t)] == t
                           for t in two_deweys)
