"""Circuit breakers and shard supervision (`repro.serve.supervisor`).

Everything here runs on injected clocks and seeds: breaker trips,
backoff growth, half-open probe accounting and pool-rebuild
bookkeeping are asserted deterministically, without a daemon or any
real worker processes.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.serve.supervisor import (CLOSED, HALF_OPEN, OPEN,
                                    BreakerConfig, CircuitBreaker,
                                    ShardSupervisor)


class Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(clock, **overrides):
    cfg = dict(consecutive_failures=3, open_ms=100.0, multiplier=2.0,
               max_open_ms=1000.0, jitter=0.0, seed=7)
    cfg.update(overrides)
    return CircuitBreaker(BreakerConfig(**cfg), clock=clock)


class TestBreakerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(consecutive_failures=0)
        with pytest.raises(ValueError):
            BreakerConfig(error_rate_threshold=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(window=0)
        with pytest.raises(ValueError):
            BreakerConfig(open_ms=0)
        with pytest.raises(ValueError):
            BreakerConfig(open_ms=100, max_open_ms=50)
        with pytest.raises(ValueError):
            BreakerConfig(half_open_probes=0)


class TestBreakerStateMachine:
    def test_trips_on_consecutive_failures(self):
        clock = Clock()
        breaker = make_breaker(clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips_total == 1
        assert breaker.reopen_in_ms() == pytest.approx(100.0)

    def test_success_resets_the_consecutive_count(self):
        # threshold 1.0 keeps the rolling-rate trip out of the way: only
        # the consecutive counter could fire, and successes reset it.
        breaker = make_breaker(Clock(), error_rate_threshold=1.0)
        for _ in range(10):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == CLOSED

    def test_trips_on_error_rate_after_min_volume(self):
        breaker = make_breaker(Clock(), consecutive_failures=100,
                               error_rate_threshold=0.5, window=10,
                               min_volume=10)
        # alternate so the consecutive counter never fires
        for _ in range(4):
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == CLOSED  # 8 samples < min_volume
        breaker.record_success()
        breaker.record_failure()        # 10th sample, 50% failures
        assert breaker.state == OPEN

    def test_half_open_probe_is_reserved_and_released(self):
        clock = Clock()
        breaker = make_breaker(clock, half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(0.2)              # past the 100ms quarantine
        assert breaker.allow()          # reserves the probe slot
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()      # slot taken until an outcome
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow() and breaker.allow()  # closed: unlimited

    def test_half_open_failure_reopens_with_longer_backoff(self):
        clock = Clock()
        breaker = make_breaker(clock)   # jitter 0: exact delays
        for _ in range(3):
            breaker.record_failure()
        assert breaker.reopen_in_ms() == pytest.approx(100.0)
        clock.advance(0.2)
        assert breaker.allow()
        breaker.record_failure()        # failed probe: trip level 2
        assert breaker.state == OPEN
        assert breaker.reopen_in_ms() == pytest.approx(200.0)
        clock.advance(0.3)
        assert breaker.allow()
        breaker.record_failure()        # trip level 3
        assert breaker.reopen_in_ms() == pytest.approx(400.0)
        assert breaker.trips_total == 3

    def test_backoff_caps_at_max_open_ms(self):
        clock = Clock()
        breaker = make_breaker(clock, max_open_ms=250.0)
        for _ in range(3):
            breaker.record_failure()
        for _ in range(5):              # re-trip far past the cap
            clock.advance(10.0)
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.reopen_in_ms() <= 250.0

    def test_success_after_probe_resets_trip_level(self):
        clock = Clock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(0.2)
        assert breaker.allow()
        breaker.record_failure()        # level 2: 200ms
        clock.advance(0.3)
        assert breaker.allow()
        breaker.record_success()        # closes, resets the level
        for _ in range(3):
            breaker.record_failure()
        assert breaker.reopen_in_ms() == pytest.approx(100.0)

    def test_jitter_is_seeded_and_bounded(self):
        def delays(seed):
            clock = Clock()
            breaker = make_breaker(clock, jitter=0.2, seed=seed)
            out = []
            for _ in range(3):
                for _ in range(3):
                    breaker.record_failure()
                out.append(breaker.reopen_in_ms())
                clock.advance(breaker.reopen_in_ms() / 1000.0 + 0.01)
                assert breaker.allow()
                breaker.record_success()
            return out

        assert delays(3) == delays(3)   # deterministic per seed
        assert delays(3) != delays(4)   # decorrelated across seeds
        for delay in delays(3):
            assert 100.0 <= delay <= 100.0 * 1.2 + 1e-6

    def test_late_failure_while_open_is_ignored(self):
        clock = Clock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        breaker.record_failure()        # a call admitted pre-trip lands
        assert breaker.trips_total == 1
        assert breaker.reopen_in_ms() == pytest.approx(100.0)

    def test_transition_counts(self):
        clock = Clock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(0.2)
        breaker.allow()
        breaker.record_success()
        assert breaker.transitions == {OPEN: 1, HALF_OPEN: 1, CLOSED: 1}


class FakePool:
    def __init__(self):
        self.shut = False

    def shutdown(self, wait=True, cancel_futures=False):
        self.shut = True


class TestShardSupervisor:
    def make(self, n_shards=3, workers=1, factory=None, metrics=None):
        built = []

        def default_factory():
            pool = FakePool()
            built.append(pool)
            return pool

        sup = ShardSupervisor(n_shards, workers,
                              pool_factory=factory or default_factory,
                              metrics=metrics)
        sup._built = built
        return sup

    def test_inline_mode_has_no_pools_and_is_healthy(self):
        sup = ShardSupervisor(2, 0)
        sup.start()
        assert sup.pool(0) is None and sup.pool_state(0) == "none"
        assert sup.overall() == "ok"
        sup.note_pool_broken(0)         # no-op inline
        assert sup.rebuilds == [0, 0]

    def test_start_builds_one_pool_per_shard(self):
        sup = self.make()
        sup.start()
        assert len(sup._built) == 3
        assert all(sup.pool_state(sid) == "ready" for sid in range(3))
        assert sup.overall() == "ok"

    def test_broken_pool_is_quarantined_and_replaced(self):
        metrics = MetricsRegistry()
        sup = self.make(metrics=metrics)
        sup.start()
        broken = sup.pool(1)
        sup.note_pool_broken(1)
        assert broken.shut, "poisoned pool must be shut down"
        assert sup.pool(1) is not broken
        assert sup.pool_state(1) == "ready"
        assert sup.rebuilds == [0, 1, 0]
        assert metrics.counter("repro_pool_rebuilds_total",
                               {"shard": "1"}).value == 1

    def test_failed_rebuild_marks_the_shard_down(self):
        calls = []

        def flaky_factory():
            calls.append(True)
            if len(calls) > 3:          # start() works, rebuilds fail
                raise OSError("no more processes")
            return FakePool()

        sup = self.make(factory=flaky_factory)
        sup.start()
        with pytest.raises(OSError):
            sup.note_pool_broken(2)
        assert sup.pool_state(2) == "down"
        assert sup.shard_state(2) == "down"
        assert sup.overall() == "degraded"  # others still healthy

    def test_overall_down_only_when_every_shard_is_down(self):
        sup = self.make(n_shards=2)
        sup.start()
        sup._pool_state[0] = "down"
        assert sup.overall() == "degraded"
        sup._pool_state[1] = "down"
        assert sup.overall() == "down"

    def test_open_breaker_degrades_the_shard(self):
        sup = self.make()
        sup.start()
        for _ in range(3):
            sup.breaker(0).record_failure()
        assert sup.shard_state(0) == "degraded"
        assert sup.overall() == "degraded"
        report = sup.health()
        assert report["0"]["breaker"] == OPEN
        assert "reopen_in_ms" in report["0"]
        assert report["1"] == {"state": "healthy", "breaker": CLOSED,
                               "pool": "ready", "rebuilds": 0}

    def test_breaker_seeds_are_decorrelated_per_shard(self):
        sup = self.make()
        seeds = {b.config.seed for b in sup.breakers}
        assert len(seeds) == 3

    def test_breaker_transition_metrics(self):
        metrics = MetricsRegistry()
        sup = self.make(metrics=metrics)
        sup.start()
        for _ in range(3):
            sup.breaker(2).record_failure()
        assert metrics.counter("repro_breaker_transitions_total",
                               {"shard": "2", "to": OPEN}).value == 1

    def test_stop_shuts_every_pool(self):
        sup = self.make()
        sup.start()
        pools = [sup.pool(sid) for sid in range(3)]
        sup.stop()
        assert all(pool.shut for pool in pools)
        assert all(sup.pool(sid) is None for sid in range(3))
