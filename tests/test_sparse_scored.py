"""Tests for sparse column indices and score-ordered cursors."""

import numpy as np
import pytest

from repro.index.columnar import ColumnarPostings
from repro.index.scored import ScoredPostings
from repro.index.sparse import SparseColumnIndex


class TestSparseColumnIndex:
    @pytest.fixture
    def distinct(self):
        return np.asarray(sorted({i * 3 for i in range(500)}), dtype=np.int64)

    def test_lookup_hits(self, distinct):
        sparse = SparseColumnIndex(distinct, granularity=16)
        for value in (0, 3, 749 * 2 + 1 if False else 1497, 600):
            pos = sparse.lookup(distinct, value)
            if value % 3 == 0 and value <= int(distinct[-1]):
                assert pos is not None and distinct[pos] == value
            else:
                assert pos is None

    def test_lookup_misses(self, distinct):
        sparse = SparseColumnIndex(distinct, granularity=16)
        assert sparse.lookup(distinct, 4) is None
        assert sparse.lookup(distinct, -1) is None
        assert sparse.lookup(distinct, 10 ** 9) is None

    def test_lookup_every_member(self, distinct):
        sparse = SparseColumnIndex(distinct, granularity=7)
        for i, value in enumerate(distinct):
            assert sparse.lookup(distinct, int(value)) == i

    def test_probe_block_bounds(self, distinct):
        sparse = SparseColumnIndex(distinct, granularity=16)
        lo, hi = sparse.probe_block(int(distinct[40]))
        assert lo <= 40 < hi
        assert hi - lo <= 16

    def test_empty_column(self):
        empty = np.empty(0, dtype=np.int64)
        sparse = SparseColumnIndex(empty)
        assert sparse.lookup(empty, 5) is None

    def test_size_grows_with_column(self):
        small = SparseColumnIndex(np.arange(100, dtype=np.int64), 8)
        large = SparseColumnIndex(np.arange(10_000, dtype=np.int64), 8)
        assert large.size_bytes() > small.size_bytes()

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            SparseColumnIndex(np.arange(5, dtype=np.int64), 0)


@pytest.fixture
def scored():
    # Sequences of mixed lengths with hand-picked scores (paper Fig. 7).
    seqs = [(1, 2, 5), (1, 2, 6), (1, 3), (1, 4, 7, 9), (1, 4, 8, 10)]
    raw = [0.5, 0.9, 0.7, 0.8, 0.3]
    postings = ColumnarPostings("t", seqs, raw)
    return ScoredPostings(postings, damping_base=0.9)


class TestScoredPostings:
    def test_groups_by_length(self, scored):
        assert set(scored.groups) == {2, 3, 4}
        assert len(scored.groups[3]) == 2

    def test_group_scores_descending(self, scored):
        for group in scored.groups.values():
            scores = list(group.scores)
            assert scores == sorted(scores, reverse=True)

    def test_damp(self, scored):
        assert scored.damp(1.0, length=4, level=2) == pytest.approx(0.81)

    def test_max_damped_level1(self, scored):
        # Level 1 candidates: 0.9*0.9^2, 0.7*0.9, 0.8*0.9^3 -> 0.729.
        assert scored.max_damped(1) == pytest.approx(0.9 * 0.81)

    def test_max_damped_level3(self, scored):
        # Only length >= 3 groups: max(0.9, 0.8*0.9) = 0.9.
        assert scored.max_damped(3) == pytest.approx(0.9)

    def test_max_damped_beyond_depth(self, scored):
        assert scored.max_damped(9) == 0.0

    def test_invalid_damping_base(self, scored):
        with pytest.raises(ValueError):
            ScoredPostings(scored.postings, damping_base=0.0)


class TestColumnCursor:
    def test_emits_in_descending_damped_order(self, scored):
        cursor = scored.cursor(2)
        scores = []
        while True:
            item = cursor.pop()
            if item is None:
                break
            scores.append(item[2])
        assert scores == sorted(scores, reverse=True)
        assert len(scores) == 5  # every sequence reaches level 2

    def test_level_filters_short_sequences(self, scored):
        cursor = scored.cursor(3)
        numbers = []
        while (item := cursor.pop()) is not None:
            numbers.append(item[0])
        assert len(numbers) == 4  # (1, 3) has no level-3 component

    def test_peek_matches_pop(self, scored):
        cursor = scored.cursor(2)
        while (peeked := cursor.peek_score()) is not None:
            number, ordinal, score = cursor.pop()
            assert score == pytest.approx(peeked)

    def test_skip_filters_ordinals(self, scored):
        erased = {0, 1}
        cursor = scored.cursor(2, skip=lambda o: o in erased)
        ordinals = []
        while (item := cursor.pop()) is not None:
            ordinals.append(item[1])
        assert set(ordinals).isdisjoint(erased)
        assert len(ordinals) == 3

    def test_exhausted(self, scored):
        cursor = scored.cursor(2)
        while cursor.pop() is not None:
            pass
        assert cursor.exhausted
        assert cursor.peek_score() is None
        assert cursor.pop() is None

    def test_numbers_match_sequences(self, scored):
        cursor = scored.cursor(2)
        while (item := cursor.pop()) is not None:
            number, ordinal, _score = item
            assert scored.postings.seqs[ordinal][1] == number

    def test_retrieved_counter(self, scored):
        cursor = scored.cursor(4)
        cursor.pop()
        cursor.pop()
        assert cursor.retrieved == 2
