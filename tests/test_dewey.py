"""Tests for Dewey id utilities (`repro.xmltree.dewey`)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xmltree import dewey

deweys = st.lists(st.integers(min_value=1, max_value=9), min_size=1,
                  max_size=6).map(tuple)


class TestPrefixAndLCA:
    def test_common_prefix_basic(self):
        assert dewey.common_prefix((1, 1, 2), (1, 1, 3)) == (1, 1)

    def test_common_prefix_identical(self):
        assert dewey.common_prefix((1, 2), (1, 2)) == (1, 2)

    def test_common_prefix_one_is_prefix(self):
        assert dewey.common_prefix((1, 2), (1, 2, 3)) == (1, 2)

    def test_lca_two_nodes(self):
        assert dewey.lca((1, 1, 2, 2, 1), (1, 1, 2, 3, 2)) == (1, 1, 2)

    def test_lca_many_nodes(self):
        assert dewey.lca((1, 1, 1), (1, 1, 2), (1, 2)) == (1,)

    def test_lca_single_node_is_itself(self):
        assert dewey.lca((1, 4, 2)) == (1, 4, 2)

    def test_lca_no_args_raises(self):
        with pytest.raises(ValueError):
            dewey.lca()

    @given(deweys, deweys)
    def test_lca_is_prefix_of_both(self, d1, d2):
        anc = dewey.lca(d1, d2)
        assert dewey.is_prefix(anc, d1)
        assert dewey.is_prefix(anc, d2)

    @given(deweys, deweys)
    def test_lca_commutative(self, d1, d2):
        assert dewey.lca(d1, d2) == dewey.lca(d2, d1)


class TestRelations:
    def test_is_ancestor_proper(self):
        assert dewey.is_ancestor((1,), (1, 2))
        assert not dewey.is_ancestor((1, 2), (1, 2))
        assert not dewey.is_ancestor((1, 2), (1, 3))

    def test_is_ancestor_or_self(self):
        assert dewey.is_ancestor_or_self((1, 2), (1, 2))
        assert dewey.is_ancestor_or_self((1,), (1, 2))
        assert not dewey.is_ancestor_or_self((1, 2), (1,))

    def test_compare_document_order(self):
        assert dewey.compare((1, 1), (1, 2)) == -1
        assert dewey.compare((1, 2), (1, 1)) == 1
        assert dewey.compare((1, 2), (1, 2)) == 0

    def test_compare_ancestor_precedes_descendant(self):
        assert dewey.compare((1, 1), (1, 1, 5)) == -1


class TestSubtreeRange:
    def test_upper_bound(self):
        assert dewey.subtree_upper_bound((1, 2, 3)) == (1, 2, 4)

    def test_upper_bound_empty_raises(self):
        with pytest.raises(ValueError):
            dewey.subtree_upper_bound(())

    @given(deweys, deweys)
    def test_range_membership_equals_prefix(self, d, other):
        rng = dewey.DeweyRange(d)
        assert (other in rng) == dewey.is_prefix(d, other)

    def test_slice_of_sorted_list(self):
        items = [(1,), (1, 1), (1, 1, 2), (1, 2), (1, 2, 1), (1, 3)]
        lo, hi = dewey.DeweyRange((1, 2)).slice_of(items)
        assert items[lo:hi] == [(1, 2), (1, 2, 1)]


class TestFormatting:
    def test_format(self):
        assert dewey.format_dewey((1, 1, 2)) == "1.1.2"

    def test_parse(self):
        assert dewey.parse_dewey("1.1.2") == (1, 1, 2)

    def test_parse_empty_raises(self):
        with pytest.raises(ValueError):
            dewey.parse_dewey("")

    @given(deweys)
    def test_roundtrip(self, d):
        assert dewey.parse_dewey(dewey.format_dewey(d)) == d


class TestVarintSizes:
    @pytest.mark.parametrize("value,size", [
        (0, 1), (127, 1), (128, 2), (16383, 2), (16384, 3),
    ])
    def test_varint_size(self, value, size):
        assert dewey.varint_size(value) == size

    def test_varint_negative_raises(self):
        with pytest.raises(ValueError):
            dewey.varint_size(-1)

    def test_encoded_size_sums_components(self):
        assert dewey.encoded_size_bytes((1, 200, 3)) == 1 + 2 + 1


class TestClosestInList:
    LIST = [(1, 1), (1, 3), (1, 5, 2)]

    def test_exact_hit(self):
        left, right = dewey.closest_in_list(self.LIST, (1, 3))
        assert left == right == (1, 3)

    def test_between(self):
        left, right = dewey.closest_in_list(self.LIST, (1, 2))
        assert left == (1, 1)
        assert right == (1, 3)

    def test_before_all(self):
        left, right = dewey.closest_in_list(self.LIST, (1, 0))
        assert left is None
        assert right == (1, 1)

    def test_after_all(self):
        left, right = dewey.closest_in_list(self.LIST, (2,))
        assert left == (1, 5, 2)
        assert right is None
