"""Scale-free checks of the paper's complexity claims (section III-C).

The paper states per-algorithm complexities:

* stack-based:  O(d * sum_i |L_i|)       -- scans every posting;
* index-based:  O(d * k * |L_1| * log|L|) -- driven by the shortest list;
* join-based:   merge join O(sum_i |L_i|) or index join
                O(k * |L_1| * log|L|) per level, whichever the planner
                picks.

These tests assert the *work counters* scale the way the formulas say
when one knob moves and everything else is pinned -- a complement to the
wall-clock benchmarks that is immune to machine noise.
"""

import pytest

from repro import XMLDatabase
from repro.algorithms.index_based import IndexBasedSearch
from repro.algorithms.join_based import JoinBasedSearch
from repro.algorithms.stack_based import StackBasedSearch
from repro.datagen import DBLPGenerator, PlantedTerm, PlantingPlan
from repro.planner.plans import JoinPlanner


def make_db(low_df, high_df=400, n_papers=1200, seed=5):
    plan = PlantingPlan(planted=[
        PlantedTerm("hifix", high_df),
        PlantedTerm("losweep", low_df),
    ])
    tree = DBLPGenerator(seed=seed, n_papers=n_papers, plan=plan).generate()
    return XMLDatabase.from_tree(tree)


@pytest.fixture(scope="module")
def sweep_dbs():
    return {low: make_db(low) for low in (10, 40, 160)}


class TestStackScalesWithTotalInput:
    def test_tuples_equal_sum_of_lists(self, sweep_dbs):
        for low, db in sweep_dbs.items():
            _, stats = StackBasedSearch(db.inverted_index).evaluate(
                ["hifix", "losweep"], "elca", with_scores=False)
            total = (db.document_frequency("hifix")
                     + db.document_frequency("losweep"))
            assert stats.tuples_scanned == total

    def test_flat_in_low_frequency(self, sweep_dbs):
        scans = []
        for low, db in sorted(sweep_dbs.items()):
            _, stats = StackBasedSearch(db.inverted_index).evaluate(
                ["hifix", "losweep"], "elca", with_scores=False)
            scans.append(stats.tuples_scanned)
        # Dominated by the fixed high-frequency list: under 2x spread
        # while the low frequency varies 16x.
        assert max(scans) < 2 * min(scans)


class TestIndexBasedScalesWithShortestList:
    def test_driver_scans_exactly_l1(self, sweep_dbs):
        for low, db in sweep_dbs.items():
            _, stats = IndexBasedSearch(db.inverted_index).evaluate(
                ["hifix", "losweep"], "elca", with_scores=False)
            assert stats.tuples_scanned == low

    def test_lookups_linear_in_l1(self, sweep_dbs):
        lookups = {}
        for low, db in sorted(sweep_dbs.items()):
            _, stats = IndexBasedSearch(db.inverted_index).evaluate(
                ["hifix", "losweep"], "elca", with_scores=False)
            lookups[low] = stats.lookups
        # 16x more driver postings -> lookup volume grows superlinearly
        # with |L1| (candidate generation is one lookup set per posting).
        assert lookups[160] > 8 * lookups[10]


class TestJoinBasedPlans:
    def test_forced_merge_scans_both_columns(self, sweep_dbs):
        db = sweep_dbs[10]
        engine = JoinBasedSearch(db.columnar_index, JoinPlanner("merge"))
        _, stats = engine.evaluate(["hifix", "losweep"], "elca",
                                   with_scores=False)
        # Every processed level scans at least the large distinct column.
        assert stats.tuples_scanned >= 300 * stats.levels_processed / 2
        assert stats.lookups == 0

    def test_forced_index_probes_short_side(self, sweep_dbs):
        db = sweep_dbs[10]
        engine = JoinBasedSearch(db.columnar_index, JoinPlanner("index"))
        _, stats = engine.evaluate(["hifix", "losweep"], "elca",
                                   with_scores=False)
        assert stats.tuples_scanned == 0
        # Probes are bounded by |L1| per level (plus erased dupes).
        assert stats.lookups <= 10 * stats.levels_processed + 10

    def test_dynamic_work_bounded_by_best_forced_plan(self, sweep_dbs):
        for low, db in sweep_dbs.items():
            work = {}
            for policy in ("dynamic", "merge", "index"):
                engine = JoinBasedSearch(db.columnar_index,
                                         JoinPlanner(policy))
                _, stats = engine.evaluate(["hifix", "losweep"], "elca",
                                           with_scores=False)
                # Weigh probes like log-cost lookups (~10 comparisons).
                work[policy] = stats.tuples_scanned + 10 * stats.lookups
            assert work["dynamic"] <= 1.2 * min(work["merge"],
                                                work["index"]) + 50


class TestResultCounts:
    def test_result_count_grows_with_low_frequency(self, sweep_dbs):
        counts = [len(db.search(["hifix", "losweep"]))
                  for _, db in sorted(sweep_dbs.items())]
        assert counts[0] <= counts[1] <= counts[2]
