"""Tests for the join-based top-K keyword search (section IV-C)."""

import pytest

from repro.algorithms.base import sort_by_score
from repro.algorithms.oracle import SemanticsOracle
from repro.algorithms.topk_join import CLASSIC, GROUP
from repro.algorithms.topk_keyword import TopKKeywordSearch, search_topk


def reference_topk(db, terms, k, semantics="elca"):
    oracle = SemanticsOracle(db.tree, db.inverted_index)
    return sort_by_score(oracle.evaluate(terms, semantics))[:k]


class TestCorrectness:
    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    @pytest.mark.parametrize("k", [1, 2, 5, 100])
    def test_matches_reference_small(self, small_db, semantics, k):
        expected = reference_topk(small_db, ["xml", "data"], k, semantics)
        got = search_topk(small_db.columnar_index, ["xml", "data"], k,
                          semantics)
        assert [r.score for r in got] == pytest.approx(
            [r.score for r in expected])

    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    @pytest.mark.parametrize("terms", [
        ["alpha", "beta"], ["cx", "cy"], ["alpha", "beta", "gamma"],
        ["c3a", "c3b", "c3c"], ["rare", "gamma"],
    ])
    def test_matches_reference_corpus(self, corpus_db, semantics, terms):
        expected = reference_topk(corpus_db, terms, 10, semantics)
        got = search_topk(corpus_db.columnar_index, terms, 10, semantics)
        assert [round(r.score, 9) for r in got] == \
            [round(r.score, 9) for r in expected]

    def test_results_descend_by_score(self, corpus_db):
        got = search_topk(corpus_db.columnar_index, ["cx", "cy"], 10)
        scores = [r.score for r in got]
        assert scores == sorted(scores, reverse=True)

    @pytest.mark.parametrize("bound", [CLASSIC, GROUP])
    def test_both_bounds_same_results(self, corpus_db, bound):
        expected = reference_topk(corpus_db, ["cx", "cy"], 5)
        got = search_topk(corpus_db.columnar_index, ["cx", "cy"], 5,
                          bound_mode=bound)
        assert [round(r.score, 9) for r in got] == \
            [round(r.score, 9) for r in expected]

    def test_fewer_results_than_k(self, small_db):
        got = search_topk(small_db.columnar_index, ["xml", "data"], 50)
        full = reference_topk(small_db, ["xml", "data"], 50)
        assert len(got) == len(full)


class TestEdgeCases:
    def test_k_zero(self, small_db):
        assert len(search_topk(small_db.columnar_index, ["xml"], 0)) == 0

    def test_empty_query(self, small_db):
        assert len(search_topk(small_db.columnar_index, [], 5)) == 0

    def test_unknown_keyword(self, small_db):
        got = search_topk(small_db.columnar_index, ["xml", "zzz"], 5)
        assert len(got) == 0

    def test_invalid_semantics(self, small_db):
        with pytest.raises(ValueError):
            search_topk(small_db.columnar_index, ["xml"], 5, "nope")

    def test_single_keyword(self, fig1_db):
        expected = reference_topk(fig1_db, ["data"], 2)
        got = search_topk(fig1_db.columnar_index, ["data"], 2)
        assert [round(r.score, 9) for r in got] == \
            [round(r.score, 9) for r in expected]


class TestEarlyTermination:
    def test_correlated_query_terminates_early(self, corpus_db):
        """High correlation -> many results -> the scan must not drain
        every column (the win of Figure 10(b)-(c))."""
        engine = TopKKeywordSearch(corpus_db.columnar_index)
        result = engine.search(["cx", "cy"], 3)
        assert result.terminated_early

    def test_early_termination_reads_fewer_tuples(self, corpus_db):
        engine = TopKKeywordSearch(corpus_db.columnar_index)
        top3 = engine.search(["cx", "cy"], 3)
        everything = engine.search(["cx", "cy"], 10_000)
        assert top3.stats.tuples_scanned < everything.stats.tuples_scanned

    def test_uncorrelated_low_frequency_drains(self, corpus_db):
        """Few results -> the algorithm degenerates to a full scan (the
        regime where Figure 10(a) shows the general join winning)."""
        engine = TopKKeywordSearch(corpus_db.columnar_index)
        result = engine.search(["rare", "gamma"], 10)
        assert not result.terminated_early

    def test_stats_recorded(self, corpus_db):
        result = TopKKeywordSearch(corpus_db.columnar_index).search(
            ["alpha", "beta"], 5)
        assert result.stats.tuples_scanned > 0
        assert result.stats.threshold_checks > 0


class TestWitnesses:
    def test_witness_scores_align_with_terms(self, corpus_db):
        got = search_topk(corpus_db.columnar_index, ["cx", "cy"], 3)
        swapped = search_topk(corpus_db.columnar_index, ["cy", "cx"], 3)
        for a, b in zip(got, swapped):
            assert a.witness_scores == tuple(reversed(b.witness_scores))

    def test_score_is_sum_of_witnesses(self, corpus_db):
        for r in search_topk(corpus_db.columnar_index, ["cx", "cy"], 5):
            assert r.score == pytest.approx(sum(r.witness_scores))
