"""Tests for alternative monotone combining functions.

The paper only assumes Monotonicity of F (section II-B); these tests
exercise the implementation's claim that the algorithms are "not
restricted" to the sum: max and weighted-sum combiners must keep every
engine in agreement with the oracle.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import XMLDatabase
from repro.algorithms.base import sort_by_score
from repro.algorithms.topk_join import BoundOps
from repro.scoring.ranking import (MaxCombiner, RankingModel, SumCombiner,
                                   WeightedSumCombiner)
from tests.conftest import SMALL_XML


def db_with(combiner):
    return XMLDatabase.from_xml_text(
        SMALL_XML, ranking=RankingModel(combiner=combiner))


class TestCombinerAlgebra:
    def test_max_combine(self):
        assert MaxCombiner().combine([0.2, 0.9, 0.5]) == pytest.approx(0.9)

    def test_max_empty(self):
        assert MaxCombiner().combine([]) == 0.0

    def test_weighted_combine(self):
        c = WeightedSumCombiner([2.0, 0.5])
        assert c.combine([1.0, 4.0]) == pytest.approx(4.0)

    def test_weighted_wrong_arity(self):
        with pytest.raises(ValueError):
            WeightedSumCombiner([1.0]).combine([0.5, 0.5])

    def test_weighted_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedSumCombiner([1.0, -0.1])

    @given(st.lists(st.floats(0, 10), min_size=2, max_size=4),
           st.integers(0, 3), st.floats(0, 5))
    def test_monotonicity(self, scores, which, bump):
        """Raising any single keyword score never lowers F."""
        which = which % len(scores)
        bumped = list(scores)
        bumped[which] += bump
        for combiner in (SumCombiner(), MaxCombiner(),
                         WeightedSumCombiner([0.5] * len(scores))):
            assert combiner.combine(bumped) >= \
                combiner.combine(scores) - 1e-12


class TestBoundOps:
    def test_sum_fold(self):
        ops = BoundOps("sum")
        assert ops.fold(1.0, 2.0, 0) == pytest.approx(3.0)
        assert ops.complete([1.0, 2.0, 3.0]) == pytest.approx(6.0)

    def test_max_fold(self):
        ops = BoundOps("max")
        assert ops.fold(1.0, 2.0, 0) == pytest.approx(2.0)
        assert ops.complete([1.0, 5.0, 3.0]) == pytest.approx(5.0)

    def test_weighted_fold_uses_slot(self):
        ops = BoundOps("weighted", [2.0, 0.5])
        assert ops.fold(0.0, 1.0, 0) == pytest.approx(2.0)
        assert ops.fold(0.0, 1.0, 1) == pytest.approx(0.5)

    def test_bound_infeasible_on_exhausted_slot(self):
        ops = BoundOps("sum")
        assert ops.bound(1.0, [None, 0.5], [0, 1]) == -float("inf")

    def test_bound_folds_unseen(self):
        ops = BoundOps("sum")
        assert ops.bound(1.0, [0.3, 0.5], [1]) == pytest.approx(1.5)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            BoundOps("median")

    def test_weighted_requires_weights(self):
        with pytest.raises(ValueError):
            BoundOps("weighted")


@pytest.mark.parametrize("combiner_factory", [
    MaxCombiner,
    lambda: WeightedSumCombiner([2.0, 0.5]),
], ids=["max", "weighted"])
class TestEnginesAgreeUnderCombiner:
    def test_complete_algorithms(self, combiner_factory):
        db = db_with(combiner_factory())
        expected = db.search("xml data", algorithm="oracle")
        for algorithm in ("join", "stack", "index"):
            got = db.search("xml data", algorithm=algorithm)
            assert [(r.node.dewey, round(r.score, 9)) for r in got] == \
                [(r.node.dewey, round(r.score, 9)) for r in expected]

    def test_topk_algorithms(self, combiner_factory):
        db = db_with(combiner_factory())
        full = sort_by_score(db.search("xml data", algorithm="oracle"))
        for algorithm in ("topk-join", "rdil", "hybrid"):
            got = db.search_topk("xml data", 3, algorithm=algorithm)
            assert [round(r.score, 9) for r in got] == \
                [round(r.score, 9) for r in full[:3]], algorithm


class TestCombinerSemantics:
    def test_weighted_order_can_differ_from_sum(self, corpus_db):
        """Weights change the ranking: heavily weighting one keyword
        reorders results whose witnesses differ."""
        db = XMLDatabase.from_tree(
            corpus_db.tree,
            ranking=RankingModel(combiner=WeightedSumCombiner([5.0, 0.1])))
        weighted = db.search_topk(["alpha", "beta"], 5)
        plain = corpus_db.search_topk(["alpha", "beta"], 5)
        # The weighted scores must reflect the weights exactly.
        for r in weighted:
            assert r.score == pytest.approx(
                5.0 * r.witness_scores[0] + 0.1 * r.witness_scores[1])
        assert [r.score for r in weighted] != [r.score for r in plain]

    def test_weight_arity_checked_in_topk(self, small_db):
        db = db_with(WeightedSumCombiner([1.0, 1.0, 1.0]))
        with pytest.raises(ValueError):
            db.search_topk("xml data", 3)

    def test_unsupported_combiner_raises_in_topk(self, small_db):
        class MedianCombiner:
            def combine(self, scores):
                return sorted(scores)[len(scores) // 2]

            def upper_bound(self, bounds):
                return self.combine(list(bounds))

        db = db_with(MedianCombiner())
        with pytest.raises(NotImplementedError):
            db.search_topk("xml data", 3)

    def test_unsupported_combiner_ok_on_complete_path(self):
        class MinCombiner:  # monotone but exotic
            def combine(self, scores):
                return min(scores) if scores else 0.0

            def upper_bound(self, bounds):
                return self.combine(list(bounds))

        db = db_with(MinCombiner())
        results = db.search_ranked("xml data")
        assert results
        for r in results:
            assert r.score == pytest.approx(min(r.witness_scores))
