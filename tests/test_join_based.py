"""Tests for the join-based algorithm (`repro.algorithms.join_based`)."""

import pytest

from repro.algorithms.join_based import JoinBasedSearch, search
from repro.algorithms.oracle import SemanticsOracle
from repro.planner.plans import JoinPlanner


def engine(db, **kwargs):
    return JoinBasedSearch(db.columnar_index, **kwargs)


class TestAgainstOracle:
    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    def test_small_document(self, small_db, semantics):
        expected = small_db.search("xml data", semantics=semantics,
                                   algorithm="oracle")
        results, _ = engine(small_db).evaluate(["xml", "data"], semantics)
        assert [r.node.dewey for r in results] == \
            [r.node.dewey for r in expected]
        for got, exp in zip(results, expected):
            assert got.score == pytest.approx(exp.score)

    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    def test_figure1_tree(self, fig1_db, semantics):
        expected = fig1_db.search(["xml", "data"], semantics=semantics,
                                  algorithm="oracle")
        results, _ = engine(fig1_db).evaluate(["xml", "data"], semantics)
        assert [r.node.dewey for r in results] == \
            [r.node.dewey for r in expected]

    def test_single_keyword(self, fig1_db):
        expected = fig1_db.search(["data"], algorithm="oracle")
        results, _ = engine(fig1_db).evaluate(["data"], "elca")
        assert [r.node.dewey for r in results] == \
            [r.node.dewey for r in expected]


class TestEdgeCases:
    def test_empty_query(self, small_db):
        results, stats = engine(small_db).evaluate([], "elca")
        assert results == []
        assert stats.levels_processed == 0

    def test_unknown_keyword_short_circuits(self, small_db):
        results, stats = engine(small_db).evaluate(["xml", "zzz"], "elca")
        assert results == []
        assert stats.joins == 0

    def test_invalid_semantics(self, small_db):
        with pytest.raises(ValueError):
            engine(small_db).evaluate(["xml"], "nope")

    def test_without_scores(self, small_db):
        results, _ = engine(small_db).evaluate(["xml", "data"], "elca",
                                               with_scores=False)
        assert all(r.score == 0.0 for r in results)

    def test_repeated_keyword(self, small_db):
        # {w, w} reduces to {w}: same columns joined with themselves.
        single, _ = engine(small_db).evaluate(["xml"], "elca")
        double, _ = engine(small_db).evaluate(["xml", "xml"], "elca")
        assert [r.node.dewey for r in double] == \
            [r.node.dewey for r in single]


class TestConfigurations:
    @pytest.mark.parametrize("policy", ["merge", "index", "dynamic"])
    def test_planner_policies_agree(self, small_db, policy):
        baseline, _ = engine(small_db).evaluate(["xml", "data"], "elca")
        results, stats = engine(
            small_db, planner=JoinPlanner(policy)).evaluate(
            ["xml", "data"], "elca")
        assert [r.node.dewey for r in results] == \
            [r.node.dewey for r in baseline]
        if policy == "merge":
            assert stats.index_joins == 0
        if policy == "index":
            assert stats.merge_joins == 0

    @pytest.mark.parametrize("mode", ["bitmap", "interval"])
    def test_eraser_modes_agree(self, small_db, mode):
        baseline, _ = engine(small_db).evaluate(["xml", "data"], "elca")
        results, _ = engine(small_db, eraser_mode=mode).evaluate(
            ["xml", "data"], "elca")
        assert [r.node.dewey for r in results] == \
            [r.node.dewey for r in baseline]

    def test_witness_order_follows_caller_terms(self, small_db):
        r1, _ = engine(small_db).evaluate(["xml", "data"], "elca")
        r2, _ = engine(small_db).evaluate(["data", "xml"], "elca")
        for a, b in zip(r1, r2):
            assert a.witness_scores == tuple(reversed(b.witness_scores))
            assert a.score == pytest.approx(b.score)


class TestStats:
    def test_levels_processed_bottom_up(self, small_db):
        _, stats = engine(small_db).evaluate(["xml", "data"], "elca")
        assert stats.levels_processed >= 1
        assert stats.joins >= stats.levels_processed

    def test_erasures_recorded(self, small_db):
        _, stats = engine(small_db).evaluate(["xml", "data"], "elca")
        assert stats.erasures > 0

    def test_per_level_plan_trace(self, small_db):
        planner = JoinPlanner("dynamic")
        _, stats = engine(small_db, planner=planner).evaluate(
            ["xml", "data"], "elca")
        assert stats.per_level_plan
        assert all(plan in ("merge", "index")
                   for _, plan in stats.per_level_plan)


class TestConvenienceWrapper:
    def test_search_function(self, small_db):
        results = search(small_db.columnar_index, ["xml", "data"])
        expected = small_db.search("xml data", algorithm="oracle")
        assert [r.node.dewey for r in results] == \
            [r.node.dewey for r in expected]


class TestOnCorpora:
    @pytest.mark.parametrize("semantics", ["elca", "slca"])
    def test_planted_terms_match_oracle(self, corpus_db, semantics):
        oracle = SemanticsOracle(corpus_db.tree, corpus_db.inverted_index)
        for terms in (["alpha", "beta"], ["cx", "cy"],
                      ["alpha", "beta", "gamma"]):
            expected = oracle.evaluate(terms, semantics)
            results, _ = engine(corpus_db).evaluate(terms, semantics)
            assert [(r.node.dewey, round(r.score, 9)) for r in results] == \
                [(r.node.dewey, round(r.score, 9)) for r in expected]

    def test_rare_term_fast_path(self, corpus_db):
        results, stats = engine(corpus_db).evaluate(["rare", "gamma"],
                                                    "elca")
        oracle = SemanticsOracle(corpus_db.tree, corpus_db.inverted_index)
        expected = oracle.evaluate(["rare", "gamma"], "elca")
        assert [r.node.dewey for r in results] == \
            [r.node.dewey for r in expected]
