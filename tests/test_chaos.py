"""The chaos harness and the self-healing serve path end to end.

Unit half: `ChaosInjector` schedules are seeded and per-shard
deterministic, spec parsing round-trips, and the byte-fault corruption
is structurally detectable.  Integration half: a real daemon with
``workers=1`` pools under *scripted* faults -- worker kills heal via
pool rebuild + in-deadline retry, corrupt replies degrade to bounded
partials, repeated errors trip the breaker and the probe path closes
it again, and hedged requests rescue latency stragglers.  Scripts
(rather than rates) make every integration scenario deterministic.
"""

import time

import pytest

from repro.obs import MetricsRegistry
from repro.serve import ChaosInjector, ShardedDatabase
from repro.serve.chaos import (BYTE_FAULT, CHAOS_KINDS, SHARD_ERROR,
                               SHARD_LATENCY, WORKER_KILL, corrupt_light,
                               run_chaos_drive, sample_queries)
from repro.serve.supervisor import BreakerConfig
from tests.test_serve_daemon import DaemonHarness, oracle_ids, payload_ids


@pytest.fixture(scope="module")
def sharded(dblp_db):
    return ShardedDatabase.from_database(dblp_db, 2)


class TestChaosInjector:
    def test_schedules_are_seeded_and_per_shard_deterministic(self):
        def draws(seed):
            chaos = ChaosInjector(kill_rate=0.2, error_rate=0.2,
                                  latency_rate=0.2, seed=seed)
            return {sid: [chaos.next_fault(sid) for _ in range(50)]
                    for sid in (0, 1)}

        assert draws(3) == draws(3)
        assert draws(3) != draws(4)
        one = draws(3)
        assert one[0] != one[1], "shard streams must be decorrelated"

    def test_zero_rates_never_fault(self):
        chaos = ChaosInjector()
        assert all(chaos.next_fault(0) is None for _ in range(100))
        assert sum(chaos.injected.values()) == 0

    def test_roll_order_is_the_kind_order(self):
        # every rate at 1.0: the first kind in CHAOS_KINDS always wins
        chaos = ChaosInjector(kill_rate=1.0, error_rate=1.0,
                              latency_rate=1.0, byte_fault_rate=1.0)
        assert chaos.next_fault(0) == CHAOS_KINDS[0] == WORKER_KILL

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ChaosInjector(kill_rate=1.5)
        with pytest.raises(ValueError):
            ChaosInjector(latency_ms=-1)
        with pytest.raises(ValueError):
            ChaosInjector(script=["not-a-kind"])

    def test_from_spec_round_trip(self):
        chaos = ChaosInjector.from_spec(
            "kill=0.05, error=0.1,latency=0.2,latency-ms=50,"
            "byte=0.01,seed=3")
        assert chaos.describe() == {
            "kill": 0.05, "error": 0.1, "latency": 0.2, "byte": 0.01,
            "latency_ms": 50.0, "seed": 3}
        with pytest.raises(ValueError):
            ChaosInjector.from_spec("kill")
        with pytest.raises(ValueError):
            ChaosInjector.from_spec("nope=1")

    def test_script_is_consumed_per_shard(self):
        chaos = ChaosInjector(script=[WORKER_KILL, None, SHARD_ERROR])
        for sid in (0, 1):
            assert chaos.next_fault(sid) == WORKER_KILL
            assert chaos.next_fault(sid) is None
            assert chaos.next_fault(sid) == SHARD_ERROR
            assert chaos.next_fault(sid) is None  # exhausted: quiet
        assert chaos.injected[WORKER_KILL] == 2

    def test_injected_counts_feed_metrics(self):
        metrics = MetricsRegistry()
        chaos = ChaosInjector(error_rate=1.0, metrics=metrics)
        chaos.next_fault(0)
        assert metrics.counter("repro_chaos_injected_total",
                               {"kind": SHARD_ERROR}).value == 1

    def test_reset(self):
        chaos = ChaosInjector(kill_rate=0.5, seed=9)
        first = [chaos.next_fault(0) for _ in range(10)]
        chaos.reset()
        assert [chaos.next_fault(0) for _ in range(10)] == first
        assert chaos.injected[WORKER_KILL] == first.count(WORKER_KILL)

    def test_corrupt_light_is_structurally_detectable(self):
        light = [(2, 5, 1.0, (1.0,)), (2, 6, 0.5, (0.5,)),
                 (2, 7, 0.25, (0.25,))]
        bad = corrupt_light(light)
        assert any(len(entry) != 4 for entry in bad)
        assert corrupt_light([]) and len(corrupt_light([])[0]) != 4


class TestSampleQueries:
    def test_deterministic_and_fanout_exercising(self, sharded):
        queries = sample_queries(sharded, count=6, seed=1)
        assert queries == sample_queries(sharded, count=6, seed=1)
        assert len(queries) == 6
        vocabs = [set(s.columnar_index.vocabulary)
                  for s in sharded.shards]
        for query in queries:
            for term in query.split():
                assert all(term in vocab for vocab in vocabs)


class TestSelfHealingEndToEnd:
    """Scripted faults against a real daemon with 1-worker pools."""

    def test_worker_kill_heals_via_rebuild_and_retry(self, sharded,
                                                     dblp_db):
        chaos = ChaosInjector(script=[WORKER_KILL])
        with DaemonHarness(sharded, workers=1, chaos=chaos,
                           retry_attempts=2,
                           result_cache_size=0) as h:
            status, body = h.get_json("/topk?q=alpha+beta&k=5")
            assert status == 200
            assert body["degraded"] is False, \
                "retry against the rebuilt pool should fully recover"
            want = dblp_db.search_topk("alpha beta", 5)
            assert payload_ids(body) == oracle_ids(want.results)
            sup = h.daemon.supervisor
            assert sum(sup.rebuilds) == 2   # both shards' workers died
            retries = sum(
                h.daemon.metrics.counter("repro_serve_retries_total",
                                         {"shard": str(sid)}).value
                for sid in range(2))
            assert retries >= 1
            status, health = h.get_json("/healthz")
            assert status == 200 and health["status"] == "ok"

    def test_byte_fault_degrades_to_bounded_partial(self, sharded,
                                                    dblp_db):
        chaos = ChaosInjector(script=[BYTE_FAULT])
        with DaemonHarness(sharded, workers=1, chaos=chaos,
                           retry_attempts=1,
                           result_cache_size=0) as h:
            status, body = h.get_json("/topk?q=alpha+beta&k=5")
            assert status == 200
            assert body["degraded"] is True
            assert body["partial"] is True
            assert isinstance(body["bound"], float)
            full = oracle_ids(dblp_db.search_topk("alpha beta", 5).results)
            assert set(payload_ids(body)) <= set(full)
            for result in body["results"]:
                assert result["score"] > body["bound"]
            assert h.daemon.metrics.counter(
                "repro_serve_degraded_total").value == 1
            # script exhausted: the next request is exact again
            status, body = h.get_json("/topk?q=alpha+beta&k=5")
            assert status == 200 and body["degraded"] is False
            assert payload_ids(body) == full

    def test_degraded_responses_are_never_cached(self, sharded):
        chaos = ChaosInjector(script=[BYTE_FAULT])
        with DaemonHarness(sharded, workers=1, chaos=chaos,
                           retry_attempts=1) as h:
            _, degraded = h.get_json("/topk?q=alpha+beta&k=5")
            assert degraded["degraded"] is True
            _, clean = h.get_json("/topk?q=alpha+beta&k=5")
            assert clean["cached"] is False and clean["degraded"] is False

    def test_breaker_trips_then_probe_recloses(self, sharded, dblp_db):
        chaos = ChaosInjector(script=[SHARD_ERROR, SHARD_ERROR])
        breaker = BreakerConfig(consecutive_failures=2, open_ms=80.0,
                                jitter=0.0)
        with DaemonHarness(sharded, workers=1, chaos=chaos,
                           retry_attempts=1, breaker=breaker,
                           result_cache_size=0) as h:
            # two scripted failures per shard: breakers trip open
            for _ in range(2):
                status, body = h.get_json("/topk?q=alpha+beta&k=5")
                assert status == 200 and body["degraded"] is True
            sup = h.daemon.supervisor
            assert all(b.state == "open" for b in sup.breakers)
            status, health = h.get_json("/healthz")
            assert status == 200 and health["status"] == "degraded"
            # while open, calls are refused outright (skipped, degraded)
            status, body = h.get_json("/topk?q=alpha+beta&k=5")
            assert status == 200 and body["degraded"] is True
            skipped = sum(
                h.daemon.metrics.counter(
                    "repro_serve_shard_skipped_total",
                    {"shard": str(sid)}).value
                for sid in range(2))
            assert skipped >= 1
            # past the quarantine the probe succeeds (script exhausted)
            # and closes the breakers again
            time.sleep(0.15)
            status, body = h.get_json("/topk?q=alpha+beta&k=5")
            assert status == 200 and body["degraded"] is False
            want = dblp_db.search_topk("alpha beta", 5)
            assert payload_ids(body) == oracle_ids(want.results)
            assert all(b.state == "closed" for b in sup.breakers)
            status, health = h.get_json("/healthz")
            assert status == 200 and health["status"] == "ok"

    def test_deadline_too_tight_for_backoff_skips_the_retry(self,
                                                            sharded):
        chaos = ChaosInjector(script=[SHARD_ERROR, SHARD_ERROR])
        with DaemonHarness(sharded, workers=1, chaos=chaos,
                           retry_attempts=3, retry_backoff_ms=60_000,
                           result_cache_size=0) as h:
            status, body = h.get_json(
                "/topk?q=alpha+beta&k=5&timeout_ms=500&partial=1")
            assert status == 200 and body["degraded"] is True
            retries = sum(
                h.daemon.metrics.counter("repro_serve_retries_total",
                                         {"shard": str(sid)}).value
                for sid in range(2))
            assert retries == 0, \
                "backoff longer than the budget must not be slept"

    def test_hedged_request_rescues_a_latency_straggler(self, sharded,
                                                        dblp_db):
        chaos = ChaosInjector(script=[SHARD_LATENCY], latency_ms=800.0)
        with DaemonHarness(sharded, workers=2, chaos=chaos,
                           hedge_ms=40.0, result_cache_size=0) as h:
            start = time.perf_counter()
            status, body = h.get_json("/topk?q=alpha+beta&k=5")
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            assert status == 200 and body["degraded"] is False
            want = dblp_db.search_topk("alpha beta", 5)
            assert payload_ids(body) == oracle_ids(want.results)
            hedges = sum(
                h.daemon.metrics.counter("repro_serve_hedges_total",
                                         {"shard": str(sid)}).value
                for sid in range(2))
            assert hedges >= 1
            assert elapsed_ms < 750.0, \
                "the hedge should beat the 800ms straggler"

    def test_chaos_requires_worker_pools(self, sharded):
        from repro.serve import ServeDaemon

        with pytest.raises(ValueError):
            ServeDaemon(sharded, workers=0,
                        chaos=ChaosInjector(kill_rate=0.1),
                        metrics=MetricsRegistry())


class TestChaosDriveReport:
    def test_quiet_drive_reports_ok(self, sharded):
        chaos = ChaosInjector()     # zero rates: no faults at all
        queries = sample_queries(sharded, count=4, seed=0)
        report = run_chaos_drive(sharded, chaos, queries, workers=1,
                                 requests=16, clients=2,
                                 timeout_ms=5000.0)
        assert report["ok"], report["violations"]
        assert report["healed"] is True
        assert report["availability"] == 1.0
        assert report["degraded_responses"] == 0
        assert report["statuses"].get("200") == 16
