"""`repro doctor` -- index analytics for a saved database directory.

Reads the on-disk containers directly (no query engine, no index
objects): per-term postings sizes from the container framing, per-level
and per-codec compressed-vs-raw ratios from the format-v3 payloads,
shard skew from the ``shard-NN/`` layout, and -- given a captured
workload (``--workload``, `repro.serve.capture` JSONL) -- a
cache-efficiency estimate that says how much of the workload's postings
traffic a warm postings cache could absorb.

The report answers the operational questions the serving PRs keep
running into:

* which terms dominate the index (heavy hitters -- the queries that
  will always be slow);
* whether compression is pulling its weight per level and per codec;
* whether the shard partitioning is balanced (a skewed shard bounds
  the scatter's p99);
* whether a postings cache is worth its memory for a real workload.

``--check`` turns thresholds (max shard byte-skew, max single-term
index share) into exit codes, so CI can gate on index health the same
way it gates on perf.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

DOCTOR_SCHEMA = "repro.doctor/v1"


def _percentiles(values: Sequence[float]) -> Dict[str, float]:
    if not len(values):
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0,
                "max": 0.0}
    arr = np.asarray(values, dtype=np.float64)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
    }


def _scan_columnar(path: str):
    """``(format, algorithm, data, refs)`` for one columnar container.

    Detects the container flavour from its magic: ``JDX3`` (format v3)
    or ``JDXB`` (format v2 blocked).  v1 containers have no per-term
    framing to scan, so they are reported as unsupported.
    """
    from ..index.storage import (_MAGIC_COLUMNAR_BLOCKED,
                                 _MAGIC_COLUMNAR_V3, _MAGIC_COLUMNAR_V4,
                                 scan_blocked_container, scan_v3_container,
                                 scan_v4_container)
    from ..reliability.io import map_bytes

    mapped = map_bytes(path)
    data = mapped.view if hasattr(mapped, "view") else mapped
    magic = bytes(data[:4])
    if magic == _MAGIC_COLUMNAR_V4:
        algorithm, refs = scan_v4_container(data, file=path)
        return "v4", algorithm, data, refs, mapped
    if magic == _MAGIC_COLUMNAR_V3:
        algorithm, refs = scan_v3_container(data, file=path)
        return "v3", algorithm, data, refs, mapped
    if magic == _MAGIC_COLUMNAR_BLOCKED:
        algorithm, refs = scan_blocked_container(
            bytes(data), _MAGIC_COLUMNAR_BLOCKED, file=path)
        return "v2", algorithm, bytes(data), refs, mapped
    raise ValueError(
        f"{path!r} has magic {magic!r}; repro doctor reads format-v2 "
        "blocked (JDXB), format-v3 (JDX3) and format-v4 (JDX4) "
        "containers")


def _codec_level_stats(data, refs, fmt: str = "v3") -> Dict[str, Any]:
    """Per-level / per-codec compressed-vs-raw totals (v3/v4 only).

    Raw size uses the eager 4-byte value model
    (`repro.index.compression.uncompressed_size`), the same yardstick
    the build-time `measure_sizes` report uses, so the two agree.
    For v4 the per-level entries also carry a ``codecs`` histogram --
    the selector's choices (how many columns at that level landed on
    each codec), the quickest answer to "is FOR pulling its weight?".
    """
    from ..index.compression import decompress_column
    from ..index.storage import parse_v3_payload, parse_v4_payload

    parse_payload = parse_v4_payload if fmt == "v4" else parse_v3_payload
    by_level: Dict[int, Dict[str, Any]] = {}
    by_codec: Dict[str, Dict[str, int]] = {}
    for ref in refs:
        payload = data[ref.offset: ref.offset + ref.length]
        _lengths, _scores, level_payloads = parse_payload(
            ref.term, payload)
        for idx, (scheme, column) in enumerate(level_payloads):
            level = idx + 1
            compressed = int(len(column))
            values = decompress_column(scheme, column)
            raw = int(len(values)) * 4
            lv = by_level.setdefault(level, {"compressed": 0, "raw": 0,
                                             "postings": 0, "codecs": {}})
            lv["compressed"] += compressed
            lv["raw"] += raw
            lv["postings"] += int(len(values))
            lv["codecs"][scheme] = lv["codecs"].get(scheme, 0) + 1
            cd = by_codec.setdefault(scheme, {"compressed": 0, "raw": 0,
                                              "columns": 0})
            cd["compressed"] += compressed
            cd["raw"] += raw
            cd["columns"] += 1

    def ratio(entry):
        entry = dict(entry)
        entry["ratio"] = (entry["compressed"] / entry["raw"]
                          if entry["raw"] else 0.0)
        return entry

    return {
        "by_level": {str(level): ratio(entry)
                     for level, entry in sorted(by_level.items())},
        "by_codec": {codec: ratio(entry)
                     for codec, entry in sorted(by_codec.items())},
    }


def _term_stats(refs, heavy: int) -> Dict[str, Any]:
    # A sharded index splits one term's postings across shards; merge
    # by term before ranking, so heavy hitters reflect the whole-index
    # size of a term (the cost of a query using it), not one fragment.
    per_term: Dict[str, int] = {}
    for ref in refs:
        per_term[ref.term] = per_term.get(ref.term, 0) + int(ref.length)
    sizes = list(per_term.values())
    total = int(sum(sizes))
    ranked = sorted(per_term.items(), key=lambda kv: (-kv[1], kv[0]))
    return {
        "terms": len(per_term),
        "total_bytes": total,
        "size_bytes": _percentiles(sizes),
        "heavy_hitters": [{
            "term": term,
            "bytes": nbytes,
            "share": (nbytes / total if total else 0.0),
        } for term, nbytes in ranked[:heavy]],
    }


def _shard_dirs(path: str, meta: Dict[str, Any]) -> List[Tuple[str, str]]:
    """``(label, dir)`` pairs holding a columnar container each."""
    shards = meta.get("shards")
    if shards:
        return [(dirname, os.path.join(path, dirname))
                for dirname in shards.get("dirs", [])]
    return [("", path)]


def doctor_report(path: str, workload: Optional[str] = None,
                  heavy: int = 10, codecs: bool = True) -> Dict[str, Any]:
    """Build the full analytics report for a database directory."""
    meta_path = os.path.join(path, "meta.json")
    with open(meta_path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    report: Dict[str, Any] = {
        "schema": DOCTOR_SCHEMA,
        "db": path,
        "format_version": meta.get("format_version"),
        "sharded": bool(meta.get("shards")),
    }
    shard_entries: List[Dict[str, Any]] = []
    all_refs = []
    term_sizes: Dict[str, int] = {}
    keepalive = []   # MappedFile handles outlive the numpy views below
    for label, shard_dir in _shard_dirs(path, meta):
        columnar = os.path.join(shard_dir, "columnar.bin")
        fmt, _algorithm, data, refs, mapped = _scan_columnar(columnar)
        keepalive.append(mapped)
        report.setdefault("container_format", fmt)
        entry: Dict[str, Any] = {"dir": label or ".",
                                 "terms": len(refs),
                                 "postings_bytes": int(
                                     sum(r.length for r in refs))}
        dewey = os.path.join(shard_dir, "dewey.bin")
        if os.path.exists(dewey):
            entry["dewey_bytes"] = os.path.getsize(dewey)
        shard_entries.append(entry)
        all_refs.extend(refs)
        for ref in refs:
            term_sizes[ref.term] = term_sizes.get(ref.term, 0) + ref.length
        if codecs and fmt in ("v3", "v4"):
            merged = _codec_level_stats(data, refs, fmt=fmt)
            prior = report.get("compression")
            if prior is None:
                report["compression"] = merged
            else:
                for section in ("by_level", "by_codec"):
                    for key, entry2 in merged[section].items():
                        into = prior[section].setdefault(key, {})
                        for name, value in entry2.items():
                            if name == "ratio":
                                continue
                            if isinstance(value, dict):
                                sub = into.setdefault(name, {})
                                for codec, count in value.items():
                                    sub[codec] = sub.get(codec, 0) + count
                            else:
                                into[name] = into.get(name, 0) + value
                        into["ratio"] = (into["compressed"] / into["raw"]
                                         if into.get("raw") else 0.0)
    report["postings"] = _term_stats(all_refs, heavy)
    if report["sharded"] and len(shard_entries) > 1:
        term_counts = [e["terms"] for e in shard_entries]
        byte_counts = [e["postings_bytes"] for e in shard_entries]
        report["shards"] = {
            "count": len(shard_entries),
            "per_shard": shard_entries,
            "term_skew": (max(term_counts) / (sum(term_counts)
                          / len(term_counts)) if sum(term_counts) else 0.0),
            "byte_skew": (max(byte_counts) / (sum(byte_counts)
                          / len(byte_counts)) if sum(byte_counts) else 0.0),
        }
    elif report["sharded"]:
        report["shards"] = {"count": len(shard_entries),
                            "per_shard": shard_entries,
                            "term_skew": 1.0, "byte_skew": 1.0}
    if workload:
        report["cache"] = _cache_estimate(workload, term_sizes)
    return report


def _cache_estimate(workload_path: str,
                    term_sizes: Dict[str, int]) -> Dict[str, Any]:
    """Infinite-cache upper bound on what a postings cache saves.

    Every term fetch after the first is a potential hit; the bytes
    saved are that term's compressed postings size per avoided fetch.
    An upper bound, not a simulation -- it says whether a cache *can*
    help this workload, and how much memory the working set needs.
    """
    from ..serve.capture import read_workload

    _header, entries = read_workload(workload_path)
    fetches = 0
    freq: Dict[str, int] = {}
    for entry in entries:
        for term in entry.get("terms") or []:
            fetches += 1
            freq[term] = freq.get(term, 0) + 1
    unique = len(freq)
    saved = sum((count - 1) * term_sizes.get(term, 0)
                for term, count in freq.items())
    paid = sum(term_sizes.get(term, 0) for term in freq)
    hot = sorted(freq.items(),
                 key=lambda kv: (-(kv[1] - 1) * term_sizes.get(kv[0], 0),
                                 kv[0]))[:10]
    return {
        "workload": workload_path,
        "queries": len(entries),
        "term_fetches": fetches,
        "unique_terms": unique,
        "max_hit_ratio": ((fetches - unique) / fetches if fetches else 0.0),
        "working_set_bytes": paid,
        "max_bytes_saved": saved,
        "hot_terms": [{
            "term": term, "fetches": count,
            "bytes_saved": (count - 1) * term_sizes.get(term, 0),
        } for term, count in hot],
    }


def run_checks(report: Dict[str, Any],
               max_byte_skew: Optional[float] = None,
               max_term_skew: Optional[float] = None,
               max_term_share: Optional[float] = None) -> List[str]:
    """Threshold violations as human-readable failure strings."""
    failures: List[str] = []
    shards = report.get("shards")
    if max_byte_skew is not None and shards is not None:
        if shards["byte_skew"] > max_byte_skew:
            failures.append(
                f"shard byte skew {shards['byte_skew']:.2f} exceeds "
                f"--max-shard-byte-skew {max_byte_skew:.2f}")
    if max_term_skew is not None and shards is not None:
        if shards["term_skew"] > max_term_skew:
            failures.append(
                f"shard term skew {shards['term_skew']:.2f} exceeds "
                f"--max-shard-term-skew {max_term_skew:.2f}")
    if max_term_share is not None:
        for hitter in report["postings"]["heavy_hitters"]:
            if hitter["share"] > max_term_share:
                failures.append(
                    f"term {hitter['term']!r} holds "
                    f"{hitter['share']:.1%} of postings bytes, over "
                    f"--max-term-share {max_term_share:.1%}")
    return failures


def format_doctor_report(report: Dict[str, Any]) -> str:
    lines = [f"repro doctor: {report['db']} "
             f"(format v{report['format_version']}, "
             f"{'sharded' if report['sharded'] else 'single'})"]
    postings = report["postings"]
    size = postings["size_bytes"]
    lines.append(
        f"  postings: {postings['terms']} terms, "
        f"{postings['total_bytes']} bytes "
        f"(p50 {size['p50']:.0f}, p99 {size['p99']:.0f}, "
        f"max {size['max']:.0f})")
    for hitter in postings["heavy_hitters"][:5]:
        lines.append(f"    heavy: {hitter['term']!r} {hitter['bytes']}B "
                     f"({hitter['share']:.1%})")
    compression = report.get("compression")
    if compression:
        for level, entry in compression["by_level"].items():
            line = (f"  level {level}: {entry['postings']} postings, "
                    f"{entry['compressed']}/{entry['raw']}B "
                    f"(ratio {entry['ratio']:.2f})")
            hist = entry.get("codecs")
            if hist:
                mix = ", ".join(f"{codec} x{count}" for codec, count
                                in sorted(hist.items()))
                line += f" [{mix}]"
            lines.append(line)
        for codec, entry in compression["by_codec"].items():
            lines.append(
                f"  codec {codec}: {entry['columns']} columns, "
                f"{entry['compressed']}/{entry['raw']}B "
                f"(ratio {entry['ratio']:.2f})")
    shards = report.get("shards")
    if shards:
        lines.append(f"  shards: {shards['count']} "
                     f"(term skew {shards['term_skew']:.2f}, "
                     f"byte skew {shards['byte_skew']:.2f})")
        for entry in shards["per_shard"]:
            lines.append(f"    {entry['dir']}: {entry['terms']} terms, "
                         f"{entry['postings_bytes']}B postings")
    cache = report.get("cache")
    if cache:
        lines.append(
            f"  cache (from {cache['workload']}): "
            f"{cache['queries']} queries, {cache['term_fetches']} term "
            f"fetches, max hit ratio {cache['max_hit_ratio']:.1%}, "
            f"working set {cache['working_set_bytes']}B, "
            f"up to {cache['max_bytes_saved']}B saved")
        for hot in cache["hot_terms"][:5]:
            lines.append(f"    hot: {hot['term']!r} x{hot['fetches']} "
                         f"({hot['bytes_saved']}B saved)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro doctor",
        description="index analytics for a saved database directory")
    parser.add_argument("db", help="database directory")
    parser.add_argument("--workload", metavar="JSONL",
                        help="captured workload for the cache-efficiency "
                             "estimate")
    parser.add_argument("--heavy", type=int, default=10,
                        help="heavy hitters to list (default 10)")
    parser.add_argument("--no-codecs", action="store_true",
                        help="skip the per-level/per-codec scan (fast "
                             "mode; it decompresses every column)")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--out", metavar="PATH",
                        help="write the report JSON here")
    parser.add_argument("--check", action="store_true",
                        help="apply thresholds; exit 1 on violation")
    parser.add_argument("--max-shard-byte-skew", type=float, default=1.5,
                        help="max shard bytes max/mean ratio "
                             "(default 1.5, with --check)")
    parser.add_argument("--max-shard-term-skew", type=float, default=None)
    parser.add_argument("--max-term-share", type=float, default=None,
                        help="max single-term share of postings bytes")
    args = parser.parse_args(argv)

    report = doctor_report(args.db, workload=args.workload,
                           heavy=args.heavy, codecs=not args.no_codecs)
    failures: List[str] = []
    if args.check:
        failures = run_checks(
            report, max_byte_skew=args.max_shard_byte_skew,
            max_term_skew=args.max_shard_term_skew,
            max_term_share=args.max_term_share)
        report["checks"] = {"failures": failures, "ok": not failures}
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_doctor_report(report))
        for failure in failures:
            print(f"  CHECK FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
