"""Per-query resource accounting: what one query actually consumed.

The paper's claim is that top-K evaluation *touches less data* than
complete evaluation; `ResourceAccount` is the instrument that turns
that claim into per-query numbers.  A context-var carries the active
account down the stack, so the deep call sites that do the physical
work -- column decompression (`repro.index.lazydisk`), whole-file
copies (`repro.reliability.io`), postings-cache hits and misses
(`repro.cache`) -- charge the query that caused them without any of
those layers growing a ``stats`` parameter.

`XMLDatabase._complete_results` / `_topk_result` activate an account
around evaluation and fold its totals into the query's
`ExecutionStats` (the new ``bytes_*`` / ``cache_bytes_*`` counters)
plus the full breakdown as ``stats.resources``; the database publishes
the totals as ``repro_query_bytes_*`` / ``repro_query_postings_*``
metrics, the slow log and the daemon's access log attach the breakdown
per record, and the scatter path aggregates per-shard accounts per
request.

Context-vars are per-thread (and per-forked-process), so concurrent
batch workers and daemon shard workers each account their own queries
with no cross-talk.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Optional

_ACTIVE: "ContextVar[Optional[ResourceAccount]]" = ContextVar(
    "repro_resource_account", default=None)


class ResourceAccount:
    """Byte- and postings-level consumption of one query.

    Scalar totals (the `ExecutionStats` counter fields):

    * ``bytes_mapped`` -- compressed column payload bytes served from a
      format-v3 mmap (zero-copy views; the pages may already be
      resident);
    * ``bytes_copied`` -- payload bytes materialized as ``bytes``
      copies (v1/v2 column payloads, fault-injected reads);
    * ``bytes_decompressed`` -- decoded output bytes across all column
      decompressions;
    * ``postings_bytes_read`` -- compressed payload bytes fed to the
      decoders (mapped + copied column reads);
    * ``columns_decompressed`` -- column decompressions performed;
    * ``cache_bytes_saved`` / ``cache_bytes_paid`` -- compressed
      postings bytes a postings-cache hit avoided re-reading vs. bytes
      a miss paid to materialize.

    Breakdowns (the ``resources`` dict): decompressed output bytes per
    codec, postings scanned and compressed bytes per level.
    """

    __slots__ = ("bytes_mapped", "bytes_copied", "bytes_decompressed",
                 "postings_bytes_read", "columns_decompressed",
                 "cache_bytes_saved", "cache_bytes_paid",
                 "decode_cache_hits", "decode_cache_misses",
                 "by_codec", "level_postings", "level_bytes")

    def __init__(self):
        self.bytes_mapped = 0
        self.bytes_copied = 0
        self.bytes_decompressed = 0
        self.postings_bytes_read = 0
        self.columns_decompressed = 0
        self.cache_bytes_saved = 0
        self.cache_bytes_paid = 0
        self.decode_cache_hits = 0
        self.decode_cache_misses = 0
        self.by_codec: Dict[str, int] = {}
        self.level_postings: Dict[int, int] = {}
        self.level_bytes: Dict[int, int] = {}

    # -- charging sites ------------------------------------------------

    def record_column(self, level: int, codec: str, payload_bytes: int,
                      output_bytes: int, postings: int,
                      mapped: bool) -> None:
        """One column decompression: `payload_bytes` compressed input
        (`mapped` when served as a zero-copy view of an mmap),
        `output_bytes` decoded output, `postings` values scanned."""
        self.columns_decompressed += 1
        self.postings_bytes_read += payload_bytes
        if mapped:
            self.bytes_mapped += payload_bytes
        else:
            self.bytes_copied += payload_bytes
        self.bytes_decompressed += output_bytes
        self.by_codec[codec] = self.by_codec.get(codec, 0) + output_bytes
        level = int(level)
        self.level_postings[level] = (self.level_postings.get(level, 0)
                                      + postings)
        self.level_bytes[level] = (self.level_bytes.get(level, 0)
                                   + payload_bytes)

    def record_copy(self, nbytes: int) -> None:
        """A whole-payload ``bytes`` materialization (`read_bytes`)."""
        self.bytes_copied += nbytes

    def record_cache(self, hit: bool, nbytes: int) -> None:
        """Postings-cache attribution: a hit saves re-materializing
        `nbytes` of compressed postings, a miss pays them."""
        if hit:
            self.cache_bytes_saved += nbytes
        else:
            self.cache_bytes_paid += nbytes

    def record_decode_cache(self, hit: bool, nbytes: int) -> None:
        """Decoded-column-cache attribution: a hit saves re-decoding a
        column whose decoded arrays span `nbytes`, a miss pays that to
        populate the cache.  Bytes fold into the same
        ``cache_bytes_saved`` / ``cache_bytes_paid`` totals as the
        postings cache; the hit/miss split survives separately in the
        ``decode_cache`` breakdown."""
        if hit:
            self.cache_bytes_saved += nbytes
            self.decode_cache_hits += 1
        else:
            self.cache_bytes_paid += nbytes
            self.decode_cache_misses += 1

    # -- read-out ------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready breakdown (the ``stats.resources`` payload)."""
        return {
            "bytes_mapped": self.bytes_mapped,
            "bytes_copied": self.bytes_copied,
            "bytes_decompressed": self.bytes_decompressed,
            "postings_bytes_read": self.postings_bytes_read,
            "columns_decompressed": self.columns_decompressed,
            "cache_bytes_saved": self.cache_bytes_saved,
            "cache_bytes_paid": self.cache_bytes_paid,
            "decode_cache": {"hits": self.decode_cache_hits,
                             "misses": self.decode_cache_misses},
            "by_codec": dict(self.by_codec),
            "by_level_postings": {str(k): v for k, v
                                  in sorted(self.level_postings.items())},
            "by_level_bytes": {str(k): v for k, v
                               in sorted(self.level_bytes.items())},
        }


def active_account() -> Optional[ResourceAccount]:
    """The account charged by the current context, or None."""
    return _ACTIVE.get()


@contextmanager
def accounting(account: Optional[ResourceAccount] = None):
    """Activate `account` (a fresh one by default) for the duration.

    Yields the account; nesting replaces the outer account for the
    inner scope (the outer one resumes on exit), so a sub-evaluation
    can be accounted separately without double-charging.
    """
    if account is None:
        account = ResourceAccount()
    token = _ACTIVE.set(account)
    try:
        yield account
    finally:
        _ACTIVE.reset(token)


def fold_into_stats(stats, account: ResourceAccount) -> None:
    """Add `account`'s totals to an `ExecutionStats` and attach the
    full breakdown as ``stats.resources`` (merging with any existing
    breakdown, so shard/batch folds accumulate)."""
    stats.bytes_mapped += account.bytes_mapped
    stats.bytes_copied += account.bytes_copied
    stats.bytes_decompressed += account.bytes_decompressed
    stats.postings_bytes_read += account.postings_bytes_read
    stats.columns_decompressed += account.columns_decompressed
    stats.cache_bytes_saved += account.cache_bytes_saved
    stats.cache_bytes_paid += account.cache_bytes_paid
    stats.resources = merge_resources(stats.resources, account.as_dict())


def merge_resources(into: Optional[Dict[str, Any]],
                    other: Optional[Dict[str, Any]]
                    ) -> Optional[Dict[str, Any]]:
    """Recursively sum two ``as_dict`` breakdowns (batch / scatter
    aggregation).  Either side may be None; returns a new dict (or the
    surviving side unchanged when one is None)."""
    if not other:
        return into
    if not into:
        return dict(other)
    out: Dict[str, Any] = dict(into)
    for key, value in other.items():
        if isinstance(value, dict):
            out[key] = merge_resources(out.get(key), value)
        elif isinstance(value, (int, float)):
            out[key] = out.get(key, 0) + value
        else:
            out.setdefault(key, value)
    return out


def postings_nbytes(postings) -> int:
    """Approximate compressed footprint of one term's postings.

    Disk-backed postings report the exact sum of their compressed
    column payloads; eager in-memory postings fall back to the 4-byte
    value model (`storage` width) over their total value count.
    """
    payloads = getattr(postings, "_level_payloads", None)
    if payloads is not None:
        return int(sum(len(payload) for _scheme, payload in payloads))
    lengths = getattr(postings, "lengths", None)
    if lengths is not None:
        return int(sum(int(length) for length in lengths)) * 4
    return 0
