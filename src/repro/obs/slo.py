"""Rolling SLO tracking with multi-window burn rates.

Two objectives over the daemon's request stream, in the SRE workbook
shape:

* **availability** -- fraction of requests that did not fail.  A
  request is *bad* when the daemon answered 5xx (internal error) or
  504 (deadline exhausted).  429 sheds are *excluded* from the error
  budget by design: admission control rejecting work it chose not to
  accept is the overload policy working, not the service failing --
  they are still counted and reported (`shed`) so capacity problems
  stay visible.
* **latency** -- fraction of successful (200) requests answered under
  ``latency_target_ms``.

Each objective is evaluated over several rolling windows at once
(default 1 min / 5 min / 1 h) and reported as a **burn rate**: the
ratio of the observed bad fraction to the budgeted bad fraction
(``1 - target``).  Burn rate 1.0 means the error budget is being spent
exactly as fast as it accrues; a classic fast-burn alert is "short
*and* long window both well above 1", which is why the windows are
computed together -- `report()` emits an ``alerts`` list for any
objective/window pair burning faster than ``alert_burn_rate``.

Events are aggregated into per-second buckets (bounded by the longest
window), so the tracker's memory is O(window seconds), not O(requests).
The clock is injectable for tests, and `report_from_records` rebuilds
the same report offline from access-log JSONL records
(`repro slo <access-log.jsonl>`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

SLO_SCHEMA = "repro.obs.slo/v1"

DEFAULT_WINDOWS_S: Tuple[float, ...] = (60.0, 300.0, 3600.0)


@dataclass(frozen=True)
class SLOConfig:
    """The objectives and the windows they are judged over."""

    availability_target: float = 0.999
    latency_target_ms: float = 250.0
    #: fraction of successful requests that must beat `latency_target_ms`
    latency_target_ratio: float = 0.99
    windows_s: Tuple[float, ...] = DEFAULT_WINDOWS_S
    #: burn rates above this show up in the report's ``alerts`` list
    alert_burn_rate: float = 1.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "availability_target": self.availability_target,
            "latency_target_ms": self.latency_target_ms,
            "latency_target_ratio": self.latency_target_ratio,
            "windows_s": list(self.windows_s),
            "alert_burn_rate": self.alert_burn_rate,
        }


class _Bucket:
    __slots__ = ("total", "bad", "shed", "good", "slow", "degraded")

    def __init__(self) -> None:
        self.total = 0    # every terminal response
        self.bad = 0      # 5xx + 504: spends availability budget
        self.shed = 0     # 429: policy, reported but not budgeted
        self.good = 0     # 200s: the latency objective's denominator
        self.slow = 0     # 200s over the latency target
        self.degraded = 0  # 200s served from a reduced shard set; good
                           # for availability (bounded partials are the
                           # contract), tracked so brownouts are visible


def _classify(status: int) -> str:
    if status == 429:
        return "shed"
    if status == 504 or status >= 500:
        return "bad"
    return "ok"


class SLOTracker:
    """Per-second aggregation of request outcomes + burn-rate reports.

    The daemon calls `record` once per terminal response; `report`
    is what ``/slo`` serves.  ``clock`` must be monotonic-ish within a
    tracker's lifetime (tests inject a fake; the offline builder feeds
    wall timestamps through `ingest`).
    """

    def __init__(self, config: Optional[SLOConfig] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config or SLOConfig()
        self._clock = clock
        self._buckets: Dict[int, _Bucket] = {}
        self._max_window = max(self.config.windows_s)
        self.lifetime = _Bucket()

    def record(self, status: int, elapsed_ms: float,
               degraded: bool = False) -> None:
        self.ingest(self._clock(), status, elapsed_ms, degraded=degraded)

    def ingest(self, when: float, status: int, elapsed_ms: float,
               degraded: bool = False) -> None:
        """Record one response at an explicit timestamp."""
        second = int(when)
        bucket = self._buckets.get(second)
        if bucket is None:
            bucket = self._buckets[second] = _Bucket()
            self._prune(when)
        kind = _classify(status)
        for b in (bucket, self.lifetime):
            b.total += 1
            if kind == "bad":
                b.bad += 1
            elif kind == "shed":
                b.shed += 1
            else:
                b.good += 1
                if degraded:
                    b.degraded += 1
                if elapsed_ms > self.config.latency_target_ms:
                    b.slow += 1

    def _prune(self, now: float) -> None:
        horizon = int(now - self._max_window) - 1
        stale = [s for s in self._buckets if s < horizon]
        for s in stale:
            del self._buckets[s]

    def _window_counts(self, now: float, window_s: float) -> _Bucket:
        out = _Bucket()
        lo = now - window_s
        for second, bucket in self._buckets.items():
            if second + 1 > lo:  # bucket overlaps (now - window, now]
                out.total += bucket.total
                out.bad += bucket.bad
                out.shed += bucket.shed
                out.good += bucket.good
                out.slow += bucket.slow
                out.degraded += bucket.degraded
        return out

    def report(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The ``/slo`` payload: per-window compliance + burn rates."""
        now = self._clock() if now is None else now
        cfg = self.config
        avail_budget = max(1e-9, 1.0 - cfg.availability_target)
        lat_budget = max(1e-9, 1.0 - cfg.latency_target_ratio)
        windows: Dict[str, Dict[str, Any]] = {}
        alerts: List[Dict[str, Any]] = []
        for window_s in cfg.windows_s:
            counts = self._window_counts(now, window_s)
            budgeted = counts.total - counts.shed  # sheds spend no budget
            bad_ratio = counts.bad / budgeted if budgeted else 0.0
            slow_ratio = counts.slow / counts.good if counts.good else 0.0
            entry = {
                "requests": counts.total,
                "bad": counts.bad,
                "shed": counts.shed,
                "good": counts.good,
                "slow": counts.slow,
                "degraded": counts.degraded,
                "availability": 1.0 - bad_ratio,
                "availability_burn_rate": bad_ratio / avail_budget,
                "latency_compliance": 1.0 - slow_ratio,
                "latency_burn_rate": slow_ratio / lat_budget,
            }
            key = f"{window_s:g}s"
            windows[key] = entry
            for objective, burn in (
                    ("availability", entry["availability_burn_rate"]),
                    ("latency", entry["latency_burn_rate"])):
                if burn > cfg.alert_burn_rate:
                    alerts.append({"objective": objective, "window": key,
                                   "burn_rate": round(burn, 4)})
        return {
            "schema": SLO_SCHEMA,
            "config": cfg.as_dict(),
            "lifetime": {
                "requests": self.lifetime.total,
                "bad": self.lifetime.bad,
                "shed": self.lifetime.shed,
                "good": self.lifetime.good,
                "slow": self.lifetime.slow,
                "degraded": self.lifetime.degraded,
            },
            "windows": windows,
            "alerts": alerts,
        }


def report_from_records(records: Iterable[Dict[str, Any]],
                        config: Optional[SLOConfig] = None
                        ) -> Dict[str, Any]:
    """The same report, rebuilt offline from access-log records.

    Windows are anchored at the newest record's ``wall_time`` (the
    "now" of the log), so a log analysed hours later reports what the
    daemon would have reported at its last request.
    """
    rows: List[Tuple[float, int, float, bool]] = []
    for rec in records:
        status = rec.get("status")
        if status is None:
            continue
        rows.append((float(rec.get("wall_time") or 0.0), int(status),
                     float(rec.get("elapsed_ms") or 0.0),
                     bool(rec.get("degraded"))))
    rows.sort(key=lambda row: row[0])
    anchor = rows[-1][0] if rows else 0.0
    tracker = SLOTracker(config, clock=lambda: anchor)
    for when, status, elapsed_ms, degraded in rows:
        tracker.ingest(when, status, elapsed_ms, degraded=degraded)
    return tracker.report(now=anchor)


def format_slo_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering for `repro slo`."""
    cfg = report.get("config", {})
    life = report.get("lifetime", {})
    lines = [
        f"SLO report ({report.get('schema', SLO_SCHEMA)})",
        f"  objectives: availability >= {cfg.get('availability_target')}"
        f" (5xx/504 spend budget; 429 sheds excluded),",
        f"              latency p{100 * cfg.get('latency_target_ratio', 0):g}"
        f" <= {cfg.get('latency_target_ms')} ms over 200s",
        f"  lifetime: {life.get('requests', 0)} requests"
        f" ({life.get('good', 0)} ok, {life.get('bad', 0)} bad,"
        f" {life.get('shed', 0)} shed, {life.get('slow', 0)} slow)",
        "",
        f"  {'window':>8}  {'req':>6}  {'avail':>8}  {'burn':>8}  "
        f"{'lat-comp':>8}  {'burn':>8}",
    ]
    for key, win in report.get("windows", {}).items():
        lines.append(
            f"  {key:>8}  {win.get('requests', 0):>6}  "
            f"{win.get('availability', 1.0):>8.5f}  "
            f"{win.get('availability_burn_rate', 0.0):>8.2f}  "
            f"{win.get('latency_compliance', 1.0):>8.5f}  "
            f"{win.get('latency_burn_rate', 0.0):>8.2f}")
    alerts = report.get("alerts", [])
    if alerts:
        lines.append("")
        for alert in alerts:
            lines.append(f"  ALERT {alert['objective']}: burn rate "
                         f"{alert['burn_rate']} over {alert['window']}")
    else:
        lines.append("")
        lines.append("  no objective burning faster than budget")
    return "\n".join(lines)
