"""Slow-query log: capture the outliers with enough context to diagnose.

A `SlowQueryLog` keeps a bounded ring of `SlowQueryRecord`s for every
query whose wall time crosses the threshold: the normalized terms, the
semantics/algorithm/k, the `ExecutionStats` counters, and -- when the
database runs with a live `Tracer` -- the query's span tree.  With
``path`` set, records are also appended to a JSONL file as they happen,
so a long-running server leaves a greppable trail.

::

    log = SlowQueryLog(threshold_ms=50, path="slow.jsonl")
    db = XMLDatabase.from_tree(tree, slow_log=log)
    ...
    for record in log.records():
        print(record.elapsed_ms, record.terms)
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from .tracing import Span, _jsonable


@dataclass
class SlowQueryRecord:
    """One over-threshold query with its diagnostic context."""

    terms: List[str]
    semantics: str
    algorithm: str
    k: Optional[int]
    elapsed_ms: float
    stats: Dict[str, Any] = field(default_factory=dict)
    trace: Optional[Dict[str, Any]] = None
    wall_time: float = 0.0  # time.time() at record, for log correlation
    # Exclusive per-phase milliseconds from the phase profiler
    # (repro.obs.profiler), when one was active for the query.
    phases: Optional[Dict[str, float]] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "terms": list(self.terms),
            "semantics": self.semantics,
            "algorithm": self.algorithm,
            "k": self.k,
            "elapsed_ms": self.elapsed_ms,
            "stats": _jsonable(self.stats),
            "trace": self.trace,
            "wall_time": self.wall_time,
            "phases": self.phases,
        }


class SlowQueryLog:
    """Bounded, thread-safe ring of slow-query records.

    Parameters
    ----------
    threshold_ms:
        Queries at or above this wall time are recorded.
    capacity:
        Ring size; the oldest record is dropped when full.
    path:
        Optional JSONL file every record is appended to.
    """

    def __init__(self, threshold_ms: float = 100.0, capacity: int = 128,
                 path: Optional[str] = None):
        self.threshold_ms = float(threshold_ms)
        self.path = path
        self._records: Deque[SlowQueryRecord] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self.dropped = 0  # records evicted from the ring

    def maybe_record(self, elapsed_ms: float, terms: List[str],
                     semantics: str, algorithm: str,
                     k: Optional[int] = None,
                     stats: Optional[Dict[str, Any]] = None,
                     trace_root: Optional[Span] = None,
                     phases: Optional[Dict[str, float]] = None,
                     trace_dict: Optional[Dict[str, Any]] = None) -> bool:
        """Record the query if it crossed the threshold; True if kept.

        ``trace_dict`` accepts an already-serialized span tree (the
        daemon's stitched cross-process traces are dicts, never `Span`
        objects) and wins over ``trace_root`` when both are given.
        """
        if elapsed_ms < self.threshold_ms:
            return False
        if trace_dict is not None:
            trace = trace_dict
        else:
            trace = (trace_root.to_dict()
                     if trace_root is not None else None)
        record = SlowQueryRecord(
            terms=list(terms), semantics=semantics, algorithm=algorithm,
            k=k, elapsed_ms=float(elapsed_ms),
            stats=dict(stats) if stats else {},
            trace=trace,
            wall_time=time.time(),
            phases=dict(phases) if phases else None)
        with self._lock:
            if len(self._records) == self._records.maxlen:
                self.dropped += 1
            self._records.append(record)
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(record.as_dict(),
                                            sort_keys=True) + "\n")
        return True

    def records(self) -> List[SlowQueryRecord]:
        """A copy of the retained records, oldest first."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
