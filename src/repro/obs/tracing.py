"""Low-overhead span tracing for the query pipeline.

A `Tracer` records a tree of `Span`s -- named, monotonic-clock-timed
regions with free-form tags -- per query: parse, postings fetch, each
level's join (tagged with the section III-C plan choice and the
input/output cardinalities), semantic check + scoring, erasure, and
top-K termination.  The default everywhere is `NULL_TRACER`, whose
`span` returns a shared no-op context manager, so instrumented code
pays one attribute lookup and two no-op calls per span when tracing is
off -- the hot path only ever creates O(levels) spans per query, never
O(candidates) (guarded by ``tests/test_observability.py``).

::

    tracer = Tracer()
    with tracer.span("query", terms="xml data"):
        with tracer.span("join", level=3, plan=["merge"]):
            ...
    print(render_trace(tracer.last_root()))
    open("trace.jsonl", "w").write(trace_to_jsonl(tracer.roots()))

Spans are kept on a per-thread stack, so the threaded
`XMLDatabase.search_batch` path records one coherent tree per query per
worker thread.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple


class Span:
    """One named, timed region of the pipeline (a tree node)."""

    __slots__ = ("name", "tags", "start", "end", "children", "_tracer")

    def __init__(self, name: str, tags: Dict[str, Any], tracer: "Tracer"):
        self.name = name
        self.tags = tags
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self._tracer = tracer

    @property
    def duration_ms(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return (end - self.start) * 1000.0

    def tag(self, **tags: Any) -> "Span":
        """Attach (or overwrite) tags; chainable."""
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        self._tracer._finish(self)

    def walk(self) -> Iterable["Span"]:
        """The subtree in depth-first pre-order (= recording order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span named `name` in the subtree, in recording order."""
        return [s for s in self.walk() if s.name == name]

    def to_dict(self, origin: Optional[float] = None) -> Dict[str, Any]:
        """Nested dict form (relative timestamps in ms)."""
        origin = self.start if origin is None else origin
        end = self.end if self.end is not None else self.start
        return {
            "name": self.name,
            "start_ms": (self.start - origin) * 1000.0,
            "duration_ms": (end - self.start) * 1000.0,
            "tags": dict(self.tags),
            "children": [c.to_dict(origin) for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} {self.duration_ms:.3f}ms {self.tags}>"


class _NullSpan:
    """The shared do-nothing span returned by `NullTracer.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def tag(self, **tags: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every `span` is the shared no-op span."""

    enabled = False

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return NULL_SPAN

    def roots(self) -> List[Span]:
        return []

    def last_root(self) -> Optional[Span]:
        return None

    def reset(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Records span trees; finished root spans accumulate in `roots()`.

    ``capacity`` bounds the retained roots (oldest dropped first), so a
    long-lived tracer on a serving database cannot grow without bound.
    """

    enabled = True

    def __init__(self, capacity: int = 256):
        self.capacity = int(capacity)
        self._local = threading.local()
        self._roots: List[Span] = []
        self._lock = threading.Lock()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **tags: Any) -> Span:
        span = Span(name, tags, self)
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        # Close any dangling descendants first (e.g. a generator that was
        # abandoned mid-span), then pop the span itself.
        while stack and stack[-1] is not span:
            dangling = stack.pop()
            if dangling.end is None:
                dangling.end = span.end
        if stack and stack[-1] is span:
            stack.pop()
        if not stack:
            with self._lock:
                self._roots.append(span)
                while len(self._roots) > self.capacity:
                    self._roots.pop(0)

    def roots(self) -> List[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def last_root(self) -> Optional[Span]:
        with self._lock:
            return self._roots[-1] if self._roots else None

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
        self._local = threading.local()


# ---------------------------------------------------------------------------
# renderers / exporters
# ---------------------------------------------------------------------------

def render_trace(root: Span, min_ms: float = 0.0) -> str:
    """A text tree of the span hierarchy with durations and tags.

    ``min_ms`` hides spans (and their subtrees) faster than the cutoff
    -- a poor man's flame-graph zoom for deep traces.
    """
    total = root.duration_ms or 1e-9
    lines: List[str] = []

    def fmt_tags(tags: Dict[str, Any]) -> str:
        if not tags:
            return ""
        parts = ", ".join(f"{k}={v}" for k, v in tags.items())
        return f"  [{parts}]"

    def emit(span: Span, depth: int) -> None:
        if span.duration_ms < min_ms and depth > 0:
            return
        share = 100.0 * span.duration_ms / total
        lines.append(f"{'  ' * depth}{span.name:<18} "
                     f"{span.duration_ms:>9.3f} ms  {share:>5.1f}%"
                     f"{fmt_tags(span.tags)}")
        for child in span.children:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)


def trace_to_jsonl(roots: Iterable[Span]) -> str:
    """One JSON object per span (flattened, ``id``/``parent_id`` links).

    The classic trace-export shape: every line is independently
    parseable, ids are stable within the export, timestamps are
    milliseconds relative to the first root's start.
    """
    lines: List[str] = []
    next_id = [0]
    roots = list(roots)
    origin = roots[0].start if roots else 0.0

    def emit(span: Span, parent_id: Optional[int]) -> None:
        span_id = next_id[0]
        next_id[0] += 1
        end = span.end if span.end is not None else span.start
        lines.append(json.dumps({
            "id": span_id,
            "parent_id": parent_id,
            "name": span.name,
            "start_ms": (span.start - origin) * 1000.0,
            "duration_ms": (end - span.start) * 1000.0,
            "tags": _jsonable(span.tags),
        }, sort_keys=True))
        for child in span.children:
            emit(child, span_id)

    for root in roots:
        emit(root, None)
    return "\n".join(lines) + ("\n" if lines else "")


def _jsonable(tags: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in tags.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [_jsonable({"v": v})["v"] for v in value]
        elif isinstance(value, dict):
            out[key] = _jsonable(value)
        else:
            out[key] = str(value)
    return out


def spans_per_level_plan(root: Span) -> List[Tuple[int, str]]:
    """The per-level join choices recorded in a span tree.

    Walks the tree in recording order collecting ``plan`` tags (the
    section III-C merge/index decisions) from spans that carry both a
    ``level`` and a ``plan`` tag; the result is directly comparable to
    `ExecutionStats.per_level_plan`.
    """
    plan: List[Tuple[int, str]] = []
    for span in root.walk():
        if "level" in span.tags and "plan" in span.tags:
            level = int(span.tags["level"])
            plan.extend((level, algorithm)
                        for algorithm in span.tags["plan"])
    return plan
