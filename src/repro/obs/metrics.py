"""Process-wide metrics: counters, gauges and latency histograms.

A `MetricsRegistry` is a thread-safe, label-aware instrument store that
the serving layer (`XMLDatabase`, `QueryCache`, `repro.diskdb`,
`search_batch`) publishes into: query latency, per-level join counts,
cache hit ratios, bytes read/written, batch queue depth.  Two read
paths:

* `snapshot()` -- a plain nested dict (counters / gauges / histograms
  with p50/p95/p99), embedded into ``BENCH_*.json`` files by the bench
  harness and serialized by the ``repro trace`` CLI verb;
* `render_prometheus()` -- Prometheus text exposition format, ready to
  serve from a ``/metrics`` endpoint.

Histograms combine fixed buckets (cheap, mergeable, Prometheus-shaped)
with a bounded reservoir sample for percentile estimation; both updates
are O(log buckets) / O(1) per observation.

The module-level default registry (`get_registry`) is what everything
publishes into unless handed an explicit registry, so one snapshot sees
the whole process.
"""

from __future__ import annotations

import bisect
import random
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

# Exponential-ish latency ladder in milliseconds: microseconds through
# tens of seconds, the range a query or a batch can realistically span.
DEFAULT_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
                   500.0, 1000.0, 5000.0, 30000.0)

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(labels: LabelPairs) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down; optionally computed on read.

    `set_fn` installs a zero-argument callable evaluated at snapshot
    time -- the hook behind derived gauges like cache hit ratio.
    """

    __slots__ = ("_value", "_fn", "_lock")

    def __init__(self):
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_fn(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    def clear_fn(self) -> None:
        """Detach a derived-value hook (back to the stored value)."""
        self._fn = None

    def track(self):
        """Context manager: +1 on entry, -1 on exit (queue depths,
        in-flight request gauges -- exception-safe by construction)."""
        return _GaugeTrack(self)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value


class _GaugeTrack:
    __slots__ = ("_gauge",)

    def __init__(self, gauge: Gauge):
        self._gauge = gauge

    def __enter__(self):
        self._gauge.inc()
        return self._gauge

    def __exit__(self, *exc_info):
        self._gauge.dec()
        return False


class Histogram:
    """Fixed buckets + a bounded reservoir for percentile estimation.

    Buckets give the Prometheus-shaped cumulative counts; the reservoir
    (uniform sample of all observations, deterministic seed so repeated
    runs snapshot identically) supports `percentile` without retaining
    every sample.

    Accuracy contract: percentiles are **rank-accurate to within +/-7
    percentile points**.  The reservoir is a uniform sample, so the
    value reported for the p-th percentile is a true sample value whose
    actual rank lies in [p-7, p+7] with high probability -- the
    binomial rank error of a 512-observation sample is
    sqrt(p(1-p)/512) <= 2.2 points (one sigma), and 7 points is the
    3-sigma bound.  This holds for any shape (bimodal, heavy-tailed);
    what it does NOT promise is value-accuracy -- where the
    distribution is steep (a heavy tail's p99), a few points of rank
    can be a large factor in value.  Consumers needing tail *values*
    should read the bucket counts instead.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total",
                 "_reservoir", "_reservoir_size", "_rng", "_lock",
                 "_exemplars")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS,
                 reservoir_size: int = 512, seed: int = 0x5EED):
        self.bounds = tuple(sorted(float(b) for b in buckets))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +inf bucket
        self.count = 0
        self.total = 0.0
        self._reservoir: List[float] = []
        self._reservoir_size = int(reservoir_size)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        # bucket index -> (value, trace_id): the most recent exemplar
        # that landed in the bucket, linking the histogram back to a
        # concrete trace (OpenMetrics exemplar semantics).
        self._exemplars: Dict[int, Tuple[float, str]] = {}

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        value = float(value)
        with self._lock:
            index = bisect.bisect_left(self.bounds, value)
            self.bucket_counts[index] += 1
            if exemplar is not None:
                self._exemplars[index] = (value, str(exemplar))
            self.count += 1
            self.total += value
            if len(self._reservoir) < self._reservoir_size:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self._reservoir_size:
                    self._reservoir[slot] = value

    def _bound_name(self, index: int) -> str:
        return (f"{self.bounds[index]:g}" if index < len(self.bounds)
                else "+Inf")

    def exemplars(self) -> Dict[str, Dict[str, Any]]:
        """Per-bucket exemplars keyed by upper bound: the trace id of
        the last observation recorded into that bucket."""
        with self._lock:
            items = dict(self._exemplars)
        return {self._bound_name(i): {"value": v, "trace_id": t}
                for i, (v, t) in sorted(items.items())}

    def percentile(self, p: float) -> float:
        """Estimated p-th percentile (0 < p <= 100) from the reservoir."""
        with self._lock:
            sample = sorted(self._reservoir)
        if not sample:
            return 0.0
        rank = max(0, min(len(sample) - 1,
                          int(round(p / 100.0 * (len(sample) - 1)))))
        return sample[rank]

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self.bucket_counts)
            count, total = self.count, self.total
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, n in zip(self.bounds, counts):
            running += n
            cumulative[f"{bound:g}"] = running
        cumulative["+Inf"] = count
        out = {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": cumulative,
        }
        exemplars = self.exemplars()
        if exemplars:  # key omitted when unused: snapshots stay stable
            out["exemplars"] = exemplars
        return out


class MetricsRegistry:
    """Thread-safe get-or-create store of named, labelled instruments."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelPairs], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelPairs], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelPairs], Histogram] = {}

    def counter(self, name: str,
                labels: Optional[Dict[str, str]] = None) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str,
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str,
                  labels: Optional[Dict[str, str]] = None,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    def reset(self) -> None:
        """Drop every instrument (tests and bench runs start clean)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- read paths ---------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as one nested dict (JSON-ready)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name + _label_suffix(labels): c.value
                for (name, labels), c in sorted(counters.items())},
            "gauges": {
                name + _label_suffix(labels): g.value
                for (name, labels), g in sorted(gauges.items())},
            "histograms": {
                name + _label_suffix(labels): h.as_dict()
                for (name, labels), h in sorted(histograms.items())},
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition (type lines + samples)."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        lines: List[str] = []
        typed: set = set()

        def type_line(name: str, kind: str) -> None:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for (name, labels), counter in counters:
            type_line(name, "counter")
            lines.append(f"{name}{_label_suffix(labels)} {counter.value:g}")
        for (name, labels), gauge in gauges:
            type_line(name, "gauge")
            lines.append(f"{name}{_label_suffix(labels)} {gauge.value:g}")
        for (name, labels), histogram in histograms:
            type_line(name, "histogram")
            data = histogram.as_dict()
            exemplars = data.get("exemplars", {})
            for bound, cumulative in data["buckets"].items():
                bucket_labels = labels + (("le", bound),)
                line = (f"{name}_bucket{_label_suffix(bucket_labels)} "
                        f"{cumulative}")
                exemplar = exemplars.get(bound)
                if exemplar is not None:
                    # OpenMetrics exemplar: `# {trace_id="..."} value`
                    line += (f' # {{trace_id="{exemplar["trace_id"]}"}}'
                             f' {exemplar["value"]:g}')
                lines.append(line)
            lines.append(f"{name}_sum{_label_suffix(labels)} "
                         f"{data['sum']:g}")
            lines.append(f"{name}_count{_label_suffix(labels)} "
                         f"{data['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY
