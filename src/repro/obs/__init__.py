"""Observability: span tracing, metrics registry and the slow-query log.

Three independent instruments threaded through the query pipeline:

* `tracing` -- `Tracer`/`Span` context managers recording where time
  goes inside one query (parse, postings fetch, per-level joins tagged
  with the section III-C plan choice, erasure, scoring, top-K
  termination), with a text tree renderer and JSONL export;
* `metrics` -- a process-wide `MetricsRegistry` of counters, gauges and
  p50/p95/p99 histograms, with `snapshot()` and Prometheus exposition;
* `slowlog` -- a bounded `SlowQueryLog` capturing query, stats and
  trace of outliers.

Everything defaults off (`NULL_TRACER`, no slow log) so the serving hot
path is unchanged unless observability is asked for.
"""

from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, get_registry)
from .slowlog import SlowQueryLog, SlowQueryRecord
from .tracing import (NULL_TRACER, NullTracer, Span, Tracer, render_trace,
                      spans_per_level_plan, trace_to_jsonl)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "Tracer",
    "get_registry",
    "render_trace",
    "spans_per_level_plan",
    "trace_to_jsonl",
]
