"""Observability: span tracing, metrics registry and the slow-query log.

Three independent instruments threaded through the query pipeline:

* `tracing` -- `Tracer`/`Span` context managers recording where time
  goes inside one query (parse, postings fetch, per-level joins tagged
  with the section III-C plan choice, erasure, scoring, top-K
  termination), with a text tree renderer and JSONL export;
* `metrics` -- a process-wide `MetricsRegistry` of counters, gauges and
  p50/p95/p99 histograms, with `snapshot()` and Prometheus exposition;
* `slowlog` -- a bounded `SlowQueryLog` capturing query, stats and
  trace of outliers.

Tracing and the slow log default off (`NULL_TRACER`, no slow log) so
the serving hot path is unchanged unless asked for; the phase profiler
defaults *on* (its per-query cost is a handful of `perf_counter`
calls, held to the <=5% overhead guard).

Two further instruments added by the plan-quality PR:

* `audit` -- EXPLAIN ANALYZE for the section III-C optimizer:
  per-level predicted vs. actual cardinality, q-error and plan regret
  (`PlanAudit`, via ``explain(analyze=True)`` / ``repro audit``);
* `profiler` -- always-on exclusive-time phase attribution
  (parse/fetch/decompress/join/erase/rank-join), published as
  ``repro_phase_time_ms`` histograms and attached to slow-log entries.
"""

from .account import (ResourceAccount, accounting, active_account,
                      merge_resources, postings_nbytes)
from .audit import (AuditingJoinPlanner, JoinObservation, LevelAudit,
                    PlanAudit, PlanAuditor, audit_query, q_error)
from .doctor import (DOCTOR_SCHEMA, doctor_report, format_doctor_report,
                     run_checks)
from .distributed import (TRACE_WIRE_VERSION, AccessLog, TailSampler,
                          TraceContext, TraceStore, count_spans,
                          format_access_record, make_span, new_trace_id,
                          read_jsonl, render_stitched, span_to_wire,
                          stitch_trace)
from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, get_registry)
from .slo import (DEFAULT_WINDOWS_S, SLO_SCHEMA, SLOConfig, SLOTracker,
                  format_slo_report, report_from_records)
from .profiler import (NULL_PROFILER, PHASES, NullPhaseProfiler,
                       PhaseProfiler, QueryProfile, SamplingProfiler,
                       active_profile, profile_phase)
from .slowlog import SlowQueryLog, SlowQueryRecord
from .tracing import (NULL_TRACER, NullTracer, Span, Tracer, render_trace,
                      spans_per_level_plan, trace_to_jsonl)

__all__ = [
    "AccessLog",
    "AuditingJoinPlanner",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_WINDOWS_S",
    "DOCTOR_SCHEMA",
    "Gauge",
    "Histogram",
    "JoinObservation",
    "LevelAudit",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullPhaseProfiler",
    "NullTracer",
    "PHASES",
    "PhaseProfiler",
    "PlanAudit",
    "PlanAuditor",
    "QueryProfile",
    "ResourceAccount",
    "SLOConfig",
    "SLOTracker",
    "SLO_SCHEMA",
    "SamplingProfiler",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "TRACE_WIRE_VERSION",
    "TailSampler",
    "TraceContext",
    "TraceStore",
    "Tracer",
    "accounting",
    "active_account",
    "active_profile",
    "audit_query",
    "count_spans",
    "doctor_report",
    "format_access_record",
    "format_doctor_report",
    "format_slo_report",
    "get_registry",
    "make_span",
    "merge_resources",
    "new_trace_id",
    "postings_nbytes",
    "profile_phase",
    "q_error",
    "read_jsonl",
    "render_stitched",
    "render_trace",
    "report_from_records",
    "run_checks",
    "span_to_wire",
    "spans_per_level_plan",
    "stitch_trace",
    "trace_to_jsonl",
]
