"""Distributed tracing for the sharded serve path (`docs/OBSERVABILITY.md`).

The PR-2 `Tracer` records span trees inside one process; this module
carries them *across* the daemon's process boundaries and stitches the
pieces back into one request-scoped trace:

* `TraceContext` -- the wire-format trace context (``trace_id``, parent
  span id, sampling decision) that travels alongside the
  `Deadline.to_wire` envelope into every shard worker;
* span trees cross the boundary as the plain-dict form of
  `Span.to_dict` (relative-millisecond timestamps, so a clock-domain
  change between processes cannot skew them) and `stitch_trace` grafts
  each shard's tree under the daemon's scatter span;
* `TailSampler` makes the retention decision *after* the request
  finished -- tail-based sampling: slow, error and shed requests are
  always kept, the healthy fast majority is downsampled;
* `TraceStore` is the bounded in-memory ring behind ``/debug/traces``
  (optionally mirrored to a JSONL file that ``repro trace --from-log``
  renders);
* `AccessLog` is the per-request structured JSONL log: one line per
  request with trace id, status, queue wait, per-shard latency
  breakdown and outcome -- the greppable record that links a p99
  exemplar back to what actually happened.

Stitched traces are nested dicts (the `Span.to_dict` shape plus
provenance tags), not `Span` objects: the daemon handles many requests
concurrently on one event-loop thread, so the thread-local span stack
of a live `Tracer` cannot hold them apart -- assembling dicts from
measured timing facts keeps concurrent requests' traces independent by
construction.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence

from .tracing import Span, _jsonable

#: Bumped when the wire shape of contexts or span trees changes; a
#: worker from a different version refuses to guess.
TRACE_WIRE_VERSION = 1


def new_trace_id() -> str:
    """A 16-hex-digit request-unique trace id."""
    return os.urandom(8).hex()


class TraceContext:
    """What identifies a request across process hops.

    ``trace_id`` names the whole request; ``parent_span`` names the
    daemon-side span a remote tree should hang under; ``sampled`` is
    the *head* decision ("collect spans at all"), distinct from the
    tail retention decision `TailSampler` makes after the outcome is
    known.  The wire form is a small JSON-safe dict, shipped in the
    same payload tuple as the deadline envelope.
    """

    __slots__ = ("trace_id", "parent_span", "sampled")

    def __init__(self, trace_id: Optional[str] = None,
                 parent_span: str = "request", sampled: bool = True):
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.parent_span = parent_span
        self.sampled = bool(sampled)

    def child(self, parent_span: str) -> "TraceContext":
        """The same trace, re-parented for the next hop."""
        return TraceContext(self.trace_id, parent_span, self.sampled)

    def to_wire(self) -> Dict[str, Any]:
        return {"v": TRACE_WIRE_VERSION, "trace_id": self.trace_id,
                "parent_span": self.parent_span, "sampled": self.sampled}

    @classmethod
    def from_wire(cls, wire: Optional[Dict[str, Any]]
                  ) -> Optional["TraceContext"]:
        """Rebuild a context; None (or a future version) disables
        collection rather than guessing at an unknown shape."""
        if not wire or wire.get("v") != TRACE_WIRE_VERSION:
            return None
        return cls(wire.get("trace_id"), wire.get("parent_span", "request"),
                   wire.get("sampled", True))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceContext {self.trace_id} parent={self.parent_span} "
                f"sampled={self.sampled}>")


# ---------------------------------------------------------------------------
# dict-form spans: construction, grafting, rendering
# ---------------------------------------------------------------------------

def make_span(name: str, start_ms: float = 0.0, duration_ms: float = 0.0,
              tags: Optional[Dict[str, Any]] = None,
              children: Optional[List[Dict[str, Any]]] = None
              ) -> Dict[str, Any]:
    """One dict-form span (the `Span.to_dict` shape)."""
    return {"name": name, "start_ms": float(start_ms),
            "duration_ms": float(duration_ms),
            "tags": _jsonable(tags or {}),
            "children": list(children or [])}


def span_to_wire(span: Span) -> Dict[str, Any]:
    """A local `Span` tree as its wire (dict) form -- timestamps
    relative to the tree's own root, so the receiving clock domain is
    irrelevant."""
    return span.to_dict()


def shift_span(span: Dict[str, Any], offset_ms: float) -> Dict[str, Any]:
    """The span tree with every ``start_ms`` moved by ``offset_ms`` --
    how a remote tree (relative to its own start) is placed onto the
    stitched request timeline."""
    return {
        "name": span.get("name", "?"),
        "start_ms": float(span.get("start_ms", 0.0)) + offset_ms,
        "duration_ms": float(span.get("duration_ms", 0.0)),
        "tags": dict(span.get("tags", {})),
        "children": [shift_span(c, offset_ms)
                     for c in span.get("children", [])],
    }


def stitch_trace(trace_id: str, endpoint: str, terms: Sequence[str],
                 semantics: str, k: Optional[int], status: int,
                 outcome: str, elapsed_ms: float, queue_wait_ms: float,
                 shards: Sequence[Dict[str, Any]] = (),
                 scatter_ms: Optional[float] = None,
                 merge_ms: float = 0.0, cached: bool = False,
                 wall_time: float = 0.0,
                 extra_tags: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """Fold daemon timing facts + per-shard span trees into one trace.

    ``shards`` entries are the per-shard outcome dicts the scatter
    collected: ``{"shard", "elapsed_ms", "partial", "bound",
    "retrievals", "emitted", "trace"}`` where ``trace`` is the worker's
    wire span tree (or None on the inline path).  The stitched shape::

        request
          queue_wait
          scatter            (pool or inline evaluation)
            shard (xN)       tagged shard id, latency, retrievals
              <worker tree>  postings_fetch / rank_join / ...
          merge              rehydrate + k-way merge + root graft

    Every request gets exactly one stitched trace whatever its fate --
    a cache hit, a shed 429 and a 504 stitch to a request span with the
    outcome tagged and no scatter children.
    """
    children: List[Dict[str, Any]] = []
    cursor = 0.0
    if queue_wait_ms > 0.0 or not cached:
        children.append(make_span("queue_wait", 0.0, queue_wait_ms))
        cursor = queue_wait_ms
    if cached:
        children.append(make_span("cache_hit", cursor,
                                  max(0.0, elapsed_ms - cursor)))
    elif status == 200 or shards:
        if scatter_ms is None:
            scatter_ms = max(0.0, elapsed_ms - cursor - merge_ms)
        shard_children = []
        for info in shards:
            tags = {key: info.get(key) for key in
                    ("shard", "partial", "bound", "retrievals", "emitted")
                    if info.get(key) is not None}
            tags["elapsed_ms"] = info.get("elapsed_ms", 0.0)
            sub = info.get("trace")
            grafted = [shift_span(sub, 0.0)] if sub else []
            shard_children.append(make_span(
                "shard", cursor, float(info.get("elapsed_ms", 0.0)),
                tags, grafted))
        children.append(make_span("scatter", cursor, scatter_ms, {},
                                  shard_children))
        cursor += scatter_ms
        if merge_ms > 0.0:
            children.append(make_span("merge", cursor, merge_ms))
    tags: Dict[str, Any] = {
        "trace_id": trace_id, "endpoint": endpoint,
        "terms": list(terms), "semantics": semantics,
        "status": status, "outcome": outcome, "cached": cached,
    }
    if k is not None:
        tags["k"] = k
    if extra_tags:
        tags.update(extra_tags)
    root = make_span("request", 0.0, elapsed_ms, tags, children)
    return {"trace_id": trace_id, "status": int(status),
            "outcome": outcome, "elapsed_ms": float(elapsed_ms),
            "wall_time": float(wall_time), "root": root}


def render_stitched(trace: Dict[str, Any], min_ms: float = 0.0) -> str:
    """Text tree of a stitched trace (dict spans), `render_trace`
    style: duration, share of the request, tags."""
    root = trace.get("root", trace)
    total = float(root.get("duration_ms", 0.0)) or 1e-9
    lines: List[str] = []

    def fmt_tags(tags: Dict[str, Any]) -> str:
        if not tags:
            return ""
        parts = ", ".join(f"{k}={v}" for k, v in tags.items())
        return f"  [{parts}]"

    def emit(span: Dict[str, Any], depth: int) -> None:
        duration = float(span.get("duration_ms", 0.0))
        if duration < min_ms and depth > 0:
            return
        share = 100.0 * duration / total
        lines.append(f"{'  ' * depth}{span.get('name', '?'):<18} "
                     f"{duration:>9.3f} ms  {share:>5.1f}%"
                     f"{fmt_tags(span.get('tags', {}))}")
        for child in span.get("children", []):
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)


def count_spans(trace: Dict[str, Any], name: Optional[str] = None) -> int:
    """Spans in a stitched trace, optionally only those named `name`."""
    root = trace.get("root", trace)

    def walk(span: Dict[str, Any]) -> int:
        own = 1 if name is None or span.get("name") == name else 0
        return own + sum(walk(c) for c in span.get("children", []))

    return walk(root)


# ---------------------------------------------------------------------------
# tail-based sampling and retention
# ---------------------------------------------------------------------------

class TailSampler:
    """Keep-or-drop decided *after* the request outcome is known.

    The whole point of tail sampling: the traces worth money are the
    outliers, and you only know a request was an outlier once it is
    over.  Slow (>= ``slow_ms``), error (5xx), shed (429), timed-out
    (504) and partial requests are always retained; the healthy fast
    majority is downsampled at ``sample_rate`` (seeded RNG, so a test
    run retains a reproducible subset).
    """

    ALWAYS_KEEP_OUTCOMES = frozenset(
        {"error", "shed", "deadline", "partial"})

    def __init__(self, slow_ms: float = 250.0, sample_rate: float = 1.0,
                 seed: int = 0xACE5):
        self.slow_ms = float(slow_ms)
        self.sample_rate = min(1.0, max(0.0, float(sample_rate)))
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def keep(self, status: int, outcome: str, elapsed_ms: float) -> bool:
        if status >= 400 or outcome in self.ALWAYS_KEEP_OUTCOMES:
            return True
        if elapsed_ms >= self.slow_ms:
            return True
        if self.sample_rate >= 1.0:
            return True
        with self._lock:
            return self._rng.random() < self.sample_rate


class TraceStore:
    """Bounded trace_id -> stitched-trace ring behind ``/debug/traces``.

    ``path`` mirrors every retained trace to a JSONL file (one trace
    per line) so a long-lived daemon leaves a trail `repro trace
    --from-log` can render after the ring has rolled over.
    """

    def __init__(self, capacity: int = 256, path: Optional[str] = None):
        self.capacity = max(1, int(capacity))
        self.path = path
        self._traces: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.added = 0
        self.dropped = 0

    def add(self, trace: Dict[str, Any]) -> None:
        with self._lock:
            self._traces[trace["trace_id"]] = trace
            self.added += 1
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
                self.dropped += 1
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(trace, sort_keys=True) + "\n")

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._traces.get(trace_id)

    def traces(self) -> List[Dict[str, Any]]:
        """Retained traces, oldest first."""
        with self._lock:
            return list(self._traces.values())

    def summaries(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Newest-first id/status/latency lines for the list endpoint."""
        with self._lock:
            items = list(self._traces.values())
        items.reverse()
        if limit is not None:
            items = items[:limit]
        out = []
        for trace in items:
            root = trace.get("root", {})
            tags = root.get("tags", {})
            out.append({
                "trace_id": trace["trace_id"],
                "status": trace.get("status"),
                "outcome": trace.get("outcome"),
                "elapsed_ms": trace.get("elapsed_ms"),
                "endpoint": tags.get("endpoint"),
                "terms": tags.get("terms"),
                "shards": count_spans(trace, "shard"),
                "wall_time": trace.get("wall_time"),
            })
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


# ---------------------------------------------------------------------------
# structured access log
# ---------------------------------------------------------------------------

class AccessLog:
    """One structured record per request, ring-buffered + optional JSONL.

    The record schema (all keys always present, so downstream `jq` and
    the offline SLO builder never branch on shape)::

        {"wall_time", "trace_id", "endpoint", "terms", "semantics",
         "k", "status", "outcome", "cached", "queue_wait_ms",
         "elapsed_ms", "result_count", "partial", "bound",
         "degraded", "chaos",
         "shards": [{"shard", "elapsed_ms", "retrievals", "emitted",
                     "partial"}]}

    ``degraded`` marks 200s served from a reduced shard set (with a
    conservative bound); ``chaos`` lists the fault kinds the chaos
    harness injected into the request, when any.

    Every request that reached query handling is logged -- including
    shed 429s and timed-out 504s, whose records carry their status and
    empty shard breakdowns.
    """

    FIELDS = ("wall_time", "trace_id", "endpoint", "terms", "semantics",
              "k", "status", "outcome", "cached", "queue_wait_ms",
              "elapsed_ms", "result_count", "partial", "bound",
              "degraded", "chaos", "account", "shards")

    def __init__(self, capacity: int = 1024, path: Optional[str] = None):
        self.path = path
        self._records: Deque[Dict[str, Any]] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self.written = 0

    def record(self, **entry: Any) -> Dict[str, Any]:
        full = {field: entry.get(field) for field in self.FIELDS}
        full["terms"] = list(full.get("terms") or [])
        full["shards"] = list(full.get("shards") or [])
        with self._lock:
            self._records.append(full)
            self.written += 1
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(_jsonable(full),
                                            sort_keys=True) + "\n")
        return full

    def records(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL file leniently: malformed lines are skipped (a
    line truncated by a dying daemon must not make the log unreadable)."""
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                out.append(entry)
    return out


def format_access_record(record: Dict[str, Any]) -> str:
    """One human-readable access-log line."""
    wall = record.get("wall_time")
    stamp = (time.strftime("%H:%M:%S", time.localtime(wall))
             if wall else "--:--:--")
    shards = record.get("shards") or []
    shard_bits = " ".join(
        f"s{s.get('shard')}={s.get('elapsed_ms', 0):.1f}ms"
        f"/{s.get('retrievals', 0)}r" for s in shards)
    k = record.get("k")
    return (f"{stamp} {record.get('status')} {record.get('outcome'):<9} "
            f"{record.get('endpoint') or '?':<7} "
            f"trace={record.get('trace_id')} "
            f"q={' '.join(record.get('terms') or [])!r}"
            f"{f' k={k}' if k is not None else ''} "
            f"wait={record.get('queue_wait_ms') or 0:.1f}ms "
            f"total={record.get('elapsed_ms') or 0:.1f}ms "
            f"results={record.get('result_count')}"
            f"{' partial' if record.get('partial') else ''}"
            f"{' cached' if record.get('cached') else ''}"
            f"{'  [' + shard_bits + ']' if shard_bits else ''}")
