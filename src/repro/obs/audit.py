"""Plan-quality auditing: EXPLAIN ANALYZE for the section III-C optimizer.

The dynamic planner (`repro.planner.plans.JoinPlanner`) picks merge vs.
index join per pairwise intersection from a cost model, and the hybrid
plan leans on cardinality estimates (`repro.planner.cardinality`) --
but nothing in the pipeline ever checks whether those predictions were
*right*.  This module closes the loop:

* `AuditingJoinPlanner` -- a drop-in `JoinPlanner` that records, per
  pairwise join, the probe/target sizes, the modeled merge and index
  costs, the algorithm chosen, the actual wall time, and (in shadow
  mode) the measured wall time of the algorithm *not* chosen;
* `PlanAuditor` -- collects per-level predicted cardinality
  (containment + sampled, via `CardinalityEstimator.estimate_detail`)
  and, through the engine's observer hook, the actual intermediate
  size and wall time of every level;
* `PlanAudit` / `LevelAudit` -- the per-query verdict: per-level
  q-error, regret (actual cost of the chosen plan minus the cost of
  the alternative -- shadow-measured when available, otherwise the
  model calibrated by the observed run), and which levels were
  mispredicted and why.

Front doors: ``db.explain(query, analyze=True)``,
``db.search(query, audit=True, with_stats=True)`` (the audit rides on
``ExecutionStats.audit``) and the ``repro audit`` CLI verb.

Misprediction flags per level:

* ``cardinality`` -- q-error above the threshold (default 4.0): the
  estimator missed the intermediate size by that factor in either
  direction, the classic silent plan killer;
* ``plan`` -- re-running the cost model on the sizes actually observed
  prefers the algorithm that was *not* chosen (only forced/stale
  policies can trigger this: the dynamic policy is model-optimal on
  observed sizes by construction);
* ``regret`` -- the alternative plan was materially cheaper in wall
  time (shadow-measured, or model-calibrated), beyond both the
  relative and absolute noise floors.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..planner.cardinality import CardinalityEstimator
from ..planner.plans import (INDEX, MERGE, JoinPlanner, alternative_of,
                             index_intersect, merge_intersect, modeled_cost)

SHADOW_MODES = ("off", "sampled", "all")

# A level is mispredicted on q-error when the estimate is off by this
# factor in either direction.
DEFAULT_Q_THRESHOLD = 4.0
# Regret flags need the alternative to be at least this fraction
# cheaper *and* the saving to clear an absolute floor, so timing noise
# on microsecond joins cannot flag a level.
REGRET_FRACTION = 0.25
REGRET_FLOOR_MS = 0.05


@dataclass
class JoinObservation:
    """One pairwise intersection as the planner executed it."""

    level: Optional[int]
    probe_size: int
    target_size: int
    output_size: int
    algorithm: str
    predicted_merge_cost: float
    predicted_index_cost: float
    actual_ms: float
    shadow_ms: Optional[float] = None  # measured alternative, if run

    @property
    def chosen_cost(self) -> float:
        return modeled_cost(self.algorithm, self.probe_size,
                            self.target_size)

    @property
    def alternative(self) -> str:
        return alternative_of(self.algorithm)

    @property
    def alternative_cost(self) -> float:
        return modeled_cost(self.alternative, self.probe_size,
                            self.target_size)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "level": self.level,
            "probe_size": self.probe_size,
            "target_size": self.target_size,
            "output_size": self.output_size,
            "algorithm": self.algorithm,
            "predicted_merge_cost": self.predicted_merge_cost,
            "predicted_index_cost": self.predicted_index_cost,
            "actual_ms": self.actual_ms,
            "shadow_ms": self.shadow_ms,
        }


class AuditingJoinPlanner(JoinPlanner):
    """A `JoinPlanner` that measures every decision it makes.

    Wraps a base planner's *policy* (so forced merge/index ablation
    plans can be audited too) and records a `JoinObservation` per
    pairwise intersection.  ``shadow`` controls whether the algorithm
    that was **not** chosen also runs, on the same inputs, purely for
    timing:

    * ``"off"`` (default) -- never; regret falls back to the cost
      model calibrated by the observed run;
    * ``"sampled"`` -- per level with probability ``shadow_rate``
      (seeded, deterministic);
    * ``"all"`` -- every join (doubles join work; diagnosis runs only).

    Shadow runs never touch `ExecutionStats`, so audited counters stay
    comparable to unaudited runs.
    """

    def __init__(self, base: Optional[JoinPlanner] = None,
                 shadow: str = "off", shadow_rate: float = 0.25,
                 seed: int = 0):
        if shadow not in SHADOW_MODES:
            raise ValueError(f"unknown shadow mode {shadow!r}; "
                             f"one of {SHADOW_MODES}")
        base = base if base is not None else JoinPlanner()
        super().__init__(base.policy)
        self.shadow = shadow
        self.shadow_rate = float(shadow_rate)
        self.records: List[JoinObservation] = []
        self._rng = random.Random(seed)
        self._level: Optional[int] = None
        self._shadow_level = False

    def intersect_all(self, columns, stats=None, level=None):
        self._level = level
        self._shadow_level = (
            self.shadow == "all"
            or (self.shadow == "sampled"
                and self._rng.random() < self.shadow_rate))
        try:
            return super().intersect_all(columns, stats, level)
        finally:
            self._level = None

    def intersect(self, a: np.ndarray, b: np.ndarray, stats=None
                  ) -> np.ndarray:
        probe, target = (a, b) if len(a) <= len(b) else (b, a)
        algorithm = self.choose(len(probe), len(target))
        if stats is not None:
            stats.joins += 1
        run = index_intersect if algorithm == INDEX else merge_intersect
        start = time.perf_counter()
        result = run(probe, target, stats)
        actual_ms = (time.perf_counter() - start) * 1000.0
        shadow_ms: Optional[float] = None
        if self._shadow_level:
            alt = merge_intersect if algorithm == INDEX else index_intersect
            shadow_start = time.perf_counter()
            alt(probe, target, None)  # stats=None: shadow work is free
            shadow_ms = (time.perf_counter() - shadow_start) * 1000.0
        self.records.append(JoinObservation(
            level=self._level,
            probe_size=len(probe),
            target_size=len(target),
            output_size=len(result),
            algorithm=algorithm,
            predicted_merge_cost=modeled_cost(MERGE, len(probe),
                                              len(target)),
            predicted_index_cost=modeled_cost(INDEX, len(probe),
                                              len(target)),
            actual_ms=actual_ms,
            shadow_ms=shadow_ms,
        ))
        return result


@dataclass
class LevelAudit:
    """Predicted vs. actual for one level of the bottom-up join."""

    level: int
    predicted: float            # combined estimate the planner would use
    containment: float          # closed-form independence estimate
    sampled: float              # probe-refined estimate (0.0 = no hits)
    actual: int                 # |intersection| the join produced
    q_error: float
    level_ms: float             # wall time of the whole level
    join_ms: float              # wall time inside the pairwise joins
    shadow_ms: Optional[float]  # measured alternative-plan join time
    modeled_chosen_cost: float
    modeled_alternative_cost: float
    regret_ms: float
    joins: List[JoinObservation] = field(default_factory=list)
    flags: List[str] = field(default_factory=list)

    @property
    def mispredicted(self) -> bool:
        return bool(self.flags)

    @property
    def plan(self) -> List[str]:
        return [obs.algorithm for obs in self.joins]

    def format(self) -> str:
        joins = "+".join(self.plan) or "-"
        shadow = (f" shadow={self.shadow_ms:.3f}ms"
                  if self.shadow_ms is not None else "")
        flags = f"  !! {','.join(self.flags)}" if self.flags else ""
        return (f"level {self.level}: est={self.predicted:.1f} "
                f"(containment={self.containment:.1f} "
                f"sampled={self.sampled:.1f}) actual={self.actual} "
                f"q_err={self.q_error:.2f} plan=[{joins}] "
                f"join={self.join_ms:.3f}ms{shadow} "
                f"regret={self.regret_ms:+.3f}ms{flags}")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "level": self.level,
            "predicted": self.predicted,
            "containment": self.containment,
            "sampled": self.sampled,
            "actual": self.actual,
            "q_error": self.q_error,
            "level_ms": self.level_ms,
            "join_ms": self.join_ms,
            "shadow_ms": self.shadow_ms,
            "modeled_chosen_cost": self.modeled_chosen_cost,
            "modeled_alternative_cost": self.modeled_alternative_cost,
            "regret_ms": self.regret_ms,
            "plan": self.plan,
            "flags": list(self.flags),
            "joins": [obs.as_dict() for obs in self.joins],
        }


def q_error(predicted: float, actual: float) -> float:
    """The optimizer-literature q-error: max ratio in either direction.

    Both sides are floored at 1.0 (the smallest meaningful
    cardinality), so an estimate of 0.4 against an actual of 0 is a
    perfect 1.0, not a division blow-up.
    """
    hi = max(predicted, float(actual), 1.0)
    lo = max(min(predicted, float(actual)), 1.0)
    return hi / lo


@dataclass
class PlanAudit:
    """EXPLAIN ANALYZE output for one join-based evaluation."""

    terms: tuple
    semantics: str
    policy: str
    shadow: str
    levels: List[LevelAudit] = field(default_factory=list)
    q_threshold: float = DEFAULT_Q_THRESHOLD

    @property
    def mispredicted_levels(self) -> List[LevelAudit]:
        return [lvl for lvl in self.levels if lvl.mispredicted]

    @property
    def max_q_error(self) -> float:
        return max((lvl.q_error for lvl in self.levels), default=1.0)

    @property
    def total_regret_ms(self) -> float:
        return sum(lvl.regret_ms for lvl in self.levels)

    def verdict(self) -> str:
        bad = self.mispredicted_levels
        if not bad:
            return (f"plan OK: {len(self.levels)} levels, "
                    f"max q-error {self.max_q_error:.2f}")
        reasons = sorted({flag for lvl in bad for flag in lvl.flags})
        return (f"{len(bad)}/{len(self.levels)} levels mispredicted "
                f"({', '.join(reasons)}): max q-error "
                f"{self.max_q_error:.2f}, total regret "
                f"{self.total_regret_ms:+.3f} ms")

    def format(self) -> str:
        lines = [
            f"audit: {' '.join(self.terms)} [{self.semantics}] "
            f"policy={self.policy} shadow={self.shadow}",
        ]
        lines.extend(lvl.format() for lvl in self.levels)
        lines.append(self.verdict())
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "terms": list(self.terms),
            "semantics": self.semantics,
            "policy": self.policy,
            "shadow": self.shadow,
            "q_threshold": self.q_threshold,
            "max_q_error": self.max_q_error,
            "total_regret_ms": self.total_regret_ms,
            "verdict": self.verdict(),
            "levels": [lvl.as_dict() for lvl in self.levels],
        }

    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.as_dict(), **kwargs)


class PlanAuditor:
    """Collects one query's audit through the engine's observer hook.

    Usage (what `explain(analyze=True)` does under the hood)::

        auditor = PlanAuditor()
        engine = JoinBasedSearch(index, auditor.planner)
        _results, stats = engine.evaluate(terms, observer=auditor.observer)
        audit = auditor.finish(terms, "elca")

    The auditor's planner must be the engine's planner -- that is where
    the per-join observations come from; the observer supplies the
    per-level predicted/actual cardinalities and wall times.
    """

    def __init__(self, planner: Optional[JoinPlanner] = None,
                 estimator: Optional[CardinalityEstimator] = None,
                 shadow: str = "off", shadow_rate: float = 0.25,
                 seed: int = 0,
                 q_threshold: float = DEFAULT_Q_THRESHOLD):
        self.planner = AuditingJoinPlanner(planner, shadow=shadow,
                                           shadow_rate=shadow_rate,
                                           seed=seed)
        self.estimator = (estimator if estimator is not None
                          else CardinalityEstimator(seed=seed))
        self.q_threshold = float(q_threshold)
        self._level_rows: List[Dict[str, Any]] = []
        self._mark = time.perf_counter()

    def observer(self, level, columns, joined, emitted) -> None:
        """The `JoinBasedSearch.evaluate` observer callback.

        Level wall time is the delta since the previous observer call
        (levels whose columns were empty fold into the next processed
        level -- they cost almost nothing).
        """
        now = time.perf_counter()
        level_ms = (now - self._mark) * 1000.0
        self._mark = now
        detail = self.estimator.estimate_detail(
            [c.distinct for c in columns])
        self._level_rows.append({
            "level": level,
            "detail": detail,
            "actual": int(len(joined)),
            "level_ms": level_ms,
        })

    def finish(self, terms: Sequence[str], semantics: str) -> PlanAudit:
        """Assemble the `PlanAudit` after the evaluation ran."""
        audit = PlanAudit(terms=tuple(terms), semantics=semantics,
                          policy=self.planner.policy,
                          shadow=self.planner.shadow,
                          q_threshold=self.q_threshold)
        by_level: Dict[int, List[JoinObservation]] = {}
        for obs in self.planner.records:
            if obs.level is not None:
                by_level.setdefault(obs.level, []).append(obs)
        for row in self._level_rows:
            audit.levels.append(self._level_audit(row, by_level))
        return audit

    def _level_audit(self, row: Dict[str, Any],
                     by_level: Dict[int, List[JoinObservation]]
                     ) -> LevelAudit:
        detail = row["detail"]
        joins = by_level.get(row["level"], [])
        join_ms = sum(obs.actual_ms for obs in joins)
        chosen_cost = sum(obs.chosen_cost for obs in joins)
        alternative_cost = sum(obs.alternative_cost for obs in joins)
        shadowed = [obs for obs in joins if obs.shadow_ms is not None]
        shadow_ms: Optional[float] = None
        if shadowed and len(shadowed) == len(joins):
            shadow_ms = sum(obs.shadow_ms for obs in joins)
            regret_ms = join_ms - shadow_ms
        elif chosen_cost > 0:
            # Calibrate model units to wall time with the run we did
            # observe: ms/unit from the chosen plan, applied to the
            # alternative's modeled cost.
            regret_ms = join_ms - (alternative_cost
                                   * (join_ms / chosen_cost))
        else:
            regret_ms = 0.0
        level = LevelAudit(
            level=row["level"],
            predicted=detail.combined,
            containment=detail.containment,
            sampled=detail.sampled,
            actual=row["actual"],
            q_error=q_error(detail.combined, row["actual"]),
            level_ms=row["level_ms"],
            join_ms=join_ms,
            shadow_ms=shadow_ms,
            modeled_chosen_cost=chosen_cost,
            modeled_alternative_cost=alternative_cost,
            regret_ms=regret_ms,
            joins=joins,
        )
        if level.q_error > self.q_threshold:
            level.flags.append("cardinality")
        if any(obs.chosen_cost > obs.alternative_cost for obs in joins):
            level.flags.append("plan")
        if (regret_ms > REGRET_FRACTION * max(join_ms, 1e-9)
                and regret_ms > REGRET_FLOOR_MS):
            level.flags.append("regret")
        return level


def audit_query(index, terms: Sequence[str], semantics: str = "elca",
                planner: Optional[JoinPlanner] = None,
                estimator: Optional[CardinalityEstimator] = None,
                shadow: str = "off", shadow_rate: float = 0.25,
                seed: int = 0,
                q_threshold: float = DEFAULT_Q_THRESHOLD) -> PlanAudit:
    """One-shot EXPLAIN ANALYZE of the join-based evaluation.

    Runs the real engine over `index` with an `AuditingJoinPlanner`
    and returns the assembled `PlanAudit`.  ``planner`` supplies the
    policy to audit (e.g. a forced ``JoinPlanner("merge")`` ablation);
    ``estimator`` the cardinality model under test.
    """
    from ..algorithms.join_based import JoinBasedSearch

    auditor = PlanAuditor(planner, estimator, shadow=shadow,
                          shadow_rate=shadow_rate, seed=seed,
                          q_threshold=q_threshold)
    engine = JoinBasedSearch(index, auditor.planner)
    engine.evaluate(list(terms), semantics, with_scores=False,
                    observer=auditor.observer)
    return auditor.finish(list(terms), semantics)
