"""Always-on phase profiling for the query pipeline.

Spans (`repro.obs.tracing`) answer "what did *this* query do"; the
phase profiler answers "where does query time go" cheaply enough to
leave on in production.  Each query runs under a `QueryProfile` that
attributes wall time *exclusively* to the innermost active phase --
``parse``, ``fetch``, ``decompress``, ``join``, ``score``, ``erase``,
``rank_join``, ``topk`` -- with everything unattributed landing in
``other``.  Per-phase totals are published as
``repro_phase_time_ms{phase=...}`` histograms and attached to slow-log
entries, so an outlier query shows *which* phase blew up.

The instrumentation points call the module-level `profile_phase`;
when no profile is active on the thread (the default for library
callers that bypass `XMLDatabase`) it returns a shared no-op, the same
discipline as `NULL_TRACER` -- the hot path pays one thread-local read.

`SamplingProfiler` is the optional statistical cross-check: a
SIGPROF/`signal.setitimer` sampler that interrupts the main thread on
CPU time and counts which phase the interrupt landed in.  It validates
the deterministic attribution without trusting it (the two disagree if
a phase boundary is misplaced), at the cost of being main-thread-only
-- which is why the always-on mechanism is the perf_counter one.
"""

from __future__ import annotations

import signal
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, get_registry

PHASES = ("parse", "fetch", "decompress", "join", "score", "erase",
          "rank_join", "topk", "other")

_ACTIVE = threading.local()  # .profile -> QueryProfile | None


class QueryProfile:
    """Exclusive per-phase wall time of one query, in milliseconds.

    Phases nest: entering ``join`` inside ``erase`` charges the elapsed
    ``erase`` time so far and starts charging ``join``; exiting resumes
    the outer phase.  Time outside any phase is ``other``.  The
    attribution is exact (no sampling error) and costs two
    `time.perf_counter` calls per phase boundary.
    """

    __slots__ = ("exclusive_ms", "_stack", "_t0", "_last", "total_ms")

    def __init__(self):
        self.exclusive_ms: Dict[str, float] = {}
        self._stack: List[str] = []
        self._t0 = time.perf_counter()
        self._last = self._t0
        self.total_ms: float = 0.0

    def _charge(self, now: float) -> None:
        owner = self._stack[-1] if self._stack else "other"
        elapsed = (now - self._last) * 1000.0
        if elapsed > 0.0:
            self.exclusive_ms[owner] = \
                self.exclusive_ms.get(owner, 0.0) + elapsed
        self._last = now

    def enter(self, phase: str) -> None:
        self._charge(time.perf_counter())
        self._stack.append(phase)

    def exit(self) -> None:
        self._charge(time.perf_counter())
        if self._stack:
            self._stack.pop()

    def finish(self) -> None:
        now = time.perf_counter()
        self._charge(now)
        self.total_ms = (now - self._t0) * 1000.0

    @property
    def current_phase(self) -> str:
        return self._stack[-1] if self._stack else "other"

    @property
    def phases(self) -> Dict[str, float]:
        """Per-phase exclusive milliseconds (a copy, safe to keep)."""
        return dict(self.exclusive_ms)

    def as_dict(self) -> Dict[str, Any]:
        return {"total_ms": self.total_ms, "phases": self.phases}


class _PhaseSpan:
    """Context manager charging its block to one phase."""

    __slots__ = ("_profile", "_phase")

    def __init__(self, profile: QueryProfile, phase: str):
        self._profile = profile
        self._phase = phase

    def __enter__(self) -> "_PhaseSpan":
        self._profile.enter(self._phase)
        return self

    def __exit__(self, *exc) -> None:
        self._profile.exit()


class _NoopSpan:
    """Shared do-nothing span for threads with no active profile."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


def active_profile() -> Optional[QueryProfile]:
    """The profile collecting on this thread, if any."""
    return getattr(_ACTIVE, "profile", None)


def profile_phase(phase: str):
    """Attribute the ``with`` block to `phase` on the active profile.

    The instrumentation call sites use this unconditionally; with no
    profile active on the thread it returns a shared no-op object, so
    the disabled cost is one thread-local read plus a constructor-free
    context entry.
    """
    profile = getattr(_ACTIVE, "profile", None)
    if profile is None:
        return _NOOP_SPAN
    return _PhaseSpan(profile, phase)


class _ProfileScope:
    """Activates a `QueryProfile` on the current thread for one query."""

    __slots__ = ("_profiler", "_profile", "_previous")

    def __init__(self, profiler: "PhaseProfiler"):
        self._profiler = profiler
        self._profile: Optional[QueryProfile] = None
        self._previous: Optional[QueryProfile] = None

    def __enter__(self) -> QueryProfile:
        self._previous = getattr(_ACTIVE, "profile", None)
        self._profile = QueryProfile()
        _ACTIVE.profile = self._profile
        return self._profile

    def __exit__(self, *exc) -> None:
        _ACTIVE.profile = self._previous
        profile = self._profile
        profile.finish()
        self._profiler._publish(profile)


class PhaseProfiler:
    """The always-on profiler `XMLDatabase` runs every query under.

    ``profile()`` opens the per-query scope::

        with profiler.profile() as prof:
            ...run the query...
        prof.phases   # {"join": 1.2, "erase": 0.4, "other": 0.1}

    On scope exit the per-phase totals are published into ``metrics``
    as ``repro_phase_time_ms{phase=...}`` histograms (one observation
    per query per touched phase).  Scopes are per-thread and nest
    safely (the inner query is charged to its own profile).
    """

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else get_registry()

    def profile(self) -> _ProfileScope:
        return _ProfileScope(self)

    def _publish(self, profile: QueryProfile) -> None:
        for phase, ms in profile.exclusive_ms.items():
            self.metrics.histogram("repro_phase_time_ms",
                                   {"phase": phase}).observe(ms)


class _NullScope:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        pass


_NULL_SCOPE = _NullScope()


class NullPhaseProfiler:
    """Disabled profiler: ``profile()`` yields ``None`` and records
    nothing.  Pass as ``profiler=NULL_PROFILER`` to switch the database
    back to the PR-2 behaviour."""

    enabled = False

    def profile(self) -> _NullScope:
        return _NULL_SCOPE

    def _publish(self, profile: QueryProfile) -> None:  # pragma: no cover
        pass


NULL_PROFILER = NullPhaseProfiler()


class SamplingProfiler:
    """SIGPROF statistical sampler over the active phase stack.

    Arms ``signal.setitimer(ITIMER_PROF, interval)``; every time the
    process consumes `interval` seconds of CPU, the handler reads the
    phase active on the **main** thread and bumps its sample count.
    Diagnosis tool, not production default: signals only interrupt the
    main thread, so it must be started there, and it sees only that
    thread's profile.

    ::

        sampler = SamplingProfiler(interval=0.001)
        with sampler:
            ...main-thread queries...
        sampler.counts  # {"join": 412, "erase": 80, "other": 13}
    """

    def __init__(self, interval: float = 0.001):
        self.interval = float(interval)
        self.counts: Dict[str, int] = {}
        self.samples = 0
        self._armed = False
        self._previous_handler = None

    def _handler(self, signum, frame) -> None:
        profile = getattr(_ACTIVE, "profile", None)
        phase = profile.current_phase if profile is not None else "other"
        self.counts[phase] = self.counts.get(phase, 0) + 1
        self.samples += 1

    def start(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            raise RuntimeError(
                "SamplingProfiler uses SIGPROF and must start on the "
                "main thread")
        self._previous_handler = signal.signal(signal.SIGPROF,
                                               self._handler)
        signal.setitimer(signal.ITIMER_PROF, self.interval, self.interval)
        self._armed = True

    def stop(self) -> None:
        if not self._armed:
            return
        signal.setitimer(signal.ITIMER_PROF, 0.0)
        signal.signal(signal.SIGPROF, self._previous_handler)
        self._armed = False

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def distribution(self) -> Dict[str, float]:
        """Sample shares per phase (fractions summing to 1.0)."""
        if not self.samples:
            return {}
        return {phase: count / self.samples
                for phase, count in self.counts.items()}
