"""Query-serving caches: LRU postings and query-result caching.

The index structures are immutable once built, so serving many queries
is a caching problem, not a concurrency problem.  `QueryCache` bundles
the two caches `XMLDatabase` wires in:

* a **postings cache** (term -> `ColumnarPostings`), worthwhile when
  postings are expensive to materialize (the lazy disk-backed index
  decompresses per column) and as the shared warm set of a batch;
* a **result cache** keyed by ``(terms, semantics, algorithm, k)``; a
  hit skips level evaluation entirely.

A third, independent cache serves the disk-backed index:
`DecodedColumnCache` is a byte-budget LRU of decoded columns keyed by
``(namespace, term, level)``, wired into `LazyColumnarPostings` so hot
terms skip per-column decompression on repeat queries while cold
decoded arrays get evicted instead of pinned forever.

Both are bounded LRUs with hit/miss/eviction counters; every operation
takes the cache lock, so a `QueryCache` can be shared by the threads of
`XMLDatabase.search_batch`.  Entries are treated as immutable: callers
get shallow copies of cached result lists, and must not mutate the
`SearchResult` objects themselves.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import (Any, Dict, Hashable, List, Optional, Sequence, Tuple)

from .obs.account import active_account, postings_nbytes

_MISSING = object()


@dataclass
class CacheStats:
    """Counters of one LRU cache since construction (or `clear`)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


class LRUCache:
    """A bounded, thread-safe least-recently-used map.

    ``capacity <= 0`` disables storage: every `get` is a miss and `put`
    is a no-op, which keeps the calling code branch-free.
    """

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self.stats = CacheStats()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.stats = CacheStats()

    def remove(self, key: Hashable) -> bool:
        """Drop one entry if present.  Not counted as an eviction --
        evictions measure capacity pressure, and explicit invalidation
        is a correctness action, not pressure."""
        with self._lock:
            return self._data.pop(key, _MISSING) is not _MISSING

    def keys(self) -> List[Hashable]:
        """Snapshot of the current keys (LRU order, oldest first)."""
        with self._lock:
            return list(self._data.keys())


class DecodedColumnCache:
    """A byte-budget LRU of *decoded* columns, shared across the lazy
    postings of one database.

    The disk-backed index otherwise caches every decoded column forever
    inside the postings object that produced it -- correct, but
    unbounded.  This cache replaces that per-postings dict with one
    bounded pool: entries are `(namespace, term, level) -> Column`, the
    budget counts the decoded arrays' ``nbytes``, and eviction is
    least-recently-used.  Hot terms keep skipping decompression on
    repeat queries; cold terms stop pinning their decoded columns.

    ``capacity_bytes <= 0`` disables storage (every `get` misses, `put`
    is a no-op).  A single oversized column (larger than the whole
    budget) is never admitted.  All operations take the cache lock, so
    one instance can serve concurrent batch / daemon workers.
    """

    def __init__(self, capacity_bytes: int = 32 * 1024 * 1024,
                 metrics=None):
        self.capacity_bytes = int(capacity_bytes)
        self.current_bytes = 0
        self.stats = CacheStats()
        self._data: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._lock = threading.Lock()
        self.metrics = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics) -> None:
        """Publish lookup counters / occupancy gauges into `metrics`."""
        self.metrics = metrics
        self._hit_counter = metrics.counter(
            "repro_cache_requests_total",
            {"cache": "decoded", "outcome": "hit"})
        self._miss_counter = metrics.counter(
            "repro_cache_requests_total",
            {"cache": "decoded", "outcome": "miss"})
        metrics.gauge("repro_cache_hit_ratio",
                      {"cache": "decoded"}).set_fn(self.hit_ratio)

    def hit_ratio(self) -> float:
        total = self.stats.hits + self.stats.misses
        return self.stats.hits / total if total else 0.0

    def get(self, key: Hashable):
        """The cached `Column` for `key`, or ``None`` on a miss."""
        with self._lock:
            entry = self._data.get(key, _MISSING)
            if entry is _MISSING:
                self.stats.misses += 1
                if self.metrics is not None:
                    self._miss_counter.inc()
                return None
            self._data.move_to_end(key)
            self.stats.hits += 1
            if self.metrics is not None:
                self._hit_counter.inc()
            return entry[0]

    def put(self, key: Hashable, column, nbytes: Optional[int] = None
            ) -> None:
        """Admit `column` at a cost of `nbytes` (defaults to the sum of
        its decoded arrays' ``nbytes``), evicting LRU entries until the
        budget holds."""
        if self.capacity_bytes <= 0:
            return
        if nbytes is None:
            nbytes = int(column.values.nbytes) + int(column.seq_idx.nbytes)
        nbytes = int(nbytes)
        if nbytes > self.capacity_bytes:
            return
        with self._lock:
            old = self._data.pop(key, None)
            if old is not None:
                self.current_bytes -= old[1]
            self._data[key] = (column, nbytes)
            self.current_bytes += nbytes
            while self.current_bytes > self.capacity_bytes and self._data:
                _, (_, dropped) = self._data.popitem(last=False)
                self.current_bytes -= dropped
                self.stats.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.current_bytes = 0
            self.stats = CacheStats()

    def as_dict(self) -> Dict[str, int]:
        snapshot = self.stats.as_dict()
        snapshot["bytes"] = self.current_bytes
        snapshot["capacity_bytes"] = self.capacity_bytes
        snapshot["entries"] = len(self)
        return snapshot


ResultKey = Tuple[Tuple[str, ...], str, str, Optional[int]]


def result_key(terms: Sequence[str], semantics: str, algorithm: str,
               k: Optional[int] = None) -> ResultKey:
    """Canonical result-cache key; `None` k marks a complete evaluation."""
    return (tuple(terms), semantics, algorithm, k)


class QueryCache:
    """The postings + result cache pair served to `XMLDatabase`.

    Parameters
    ----------
    postings_capacity:
        Max distinct terms whose postings stay resident (LRU).
    result_capacity:
        Max cached query results (LRU over `result_key` entries).
    metrics:
        Optional `repro.obs.MetricsRegistry`; when given, every lookup
        publishes ``repro_cache_requests_total{cache=..., outcome=...}``
        counters next to the local `CacheStats`, so a process-wide
        snapshot sees the hit ratio without holding the cache object.
    """

    def __init__(self, postings_capacity: int = 256,
                 result_capacity: int = 1024,
                 metrics=None):
        self.postings = LRUCache(postings_capacity)
        self.results = LRUCache(result_capacity)
        self.metrics = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics) -> None:
        """Publish lookup counters into `metrics` from now on."""
        self.metrics = metrics
        self._postings_hit = metrics.counter(
            "repro_cache_requests_total",
            {"cache": "postings", "outcome": "hit"})
        self._postings_miss = metrics.counter(
            "repro_cache_requests_total",
            {"cache": "postings", "outcome": "miss"})
        self._results_hit = metrics.counter(
            "repro_cache_requests_total",
            {"cache": "results", "outcome": "hit"})
        self._results_miss = metrics.counter(
            "repro_cache_requests_total",
            {"cache": "results", "outcome": "miss"})
        metrics.gauge("repro_cache_hit_ratio",
                      {"cache": "results"}).set_fn(self.result_hit_ratio)
        metrics.gauge("repro_cache_hit_ratio",
                      {"cache": "postings"}).set_fn(self.postings_hit_ratio)

    def result_hit_ratio(self) -> float:
        stats = self.results.stats
        total = stats.hits + stats.misses
        return stats.hits / total if total else 0.0

    def postings_hit_ratio(self) -> float:
        stats = self.postings.stats
        total = stats.hits + stats.misses
        return stats.hits / total if total else 0.0

    def query_postings(self, index, terms: Sequence[str]) -> List:
        """`ColumnarIndex.query_postings` through the postings LRU.

        Mirrors the index method exactly: per-term postings (empty ones
        included) sorted shortest-first with a stable sort, so join
        order is unchanged by caching.
        """
        account = active_account()
        postings = []
        for term in terms:
            cached = self.postings.get(term, _MISSING)
            if cached is _MISSING:
                if self.metrics is not None:
                    self._postings_miss.inc()
                cached = index.term_postings(term)
                self.postings.put(term, cached)
                if account is not None:
                    account.record_cache(False, postings_nbytes(cached))
            else:
                if self.metrics is not None:
                    self._postings_hit.inc()
                if account is not None:
                    account.record_cache(True, postings_nbytes(cached))
            postings.append(cached)
        postings.sort(key=len)
        return postings

    def get_results(self, key: ResultKey):
        """Cached result list for `key`, copied, or ``None`` on miss."""
        cached = self.results.get(key, _MISSING)
        if cached is _MISSING:
            if self.metrics is not None:
                self._results_miss.inc()
            return None
        if self.metrics is not None:
            self._results_hit.inc()
        return list(cached)

    def put_results(self, key: ResultKey, results: Sequence,
                    partial: bool = False) -> None:
        """Store a result list -- unless it is ``partial``.

        A deadline-truncated result set is valid only for the budget
        that produced it; caching it would serve degraded answers to
        unbudgeted callers, so partial entries are dropped silently.
        """
        if partial:
            return
        self.results.put(key, list(results))

    def clear(self) -> None:
        """Drop both caches and restart their local stats.

        Metric consistency contract: the process-wide
        ``repro_cache_requests_total`` counters are *monotone* and keep
        counting across a clear (Prometheus counters never go down);
        the ``repro_cache_hit_ratio`` gauges are derived through
        `set_fn` hooks that read the live `CacheStats` at snapshot
        time, so they restart from 0 with the fresh stats instead of
        reporting the dead cache's ratio forever.
        """
        self.postings.clear()
        self.results.clear()

    def invalidate(self, term: str) -> int:
        """Drop everything derived from `term`: its postings entry and
        every cached result whose query used it.  Returns the number of
        entries dropped.  The daemon's index-reload hook: when one
        term's postings change, unrelated cached results survive.
        """
        dropped = 1 if self.postings.remove(term) else 0
        for key in self.results.keys():
            terms = key[0] if isinstance(key, tuple) and key else ()
            if term in terms:
                dropped += 1 if self.results.remove(key) else 0
        return dropped

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {"postings": self.postings.stats.as_dict(),
                "results": self.results.stats.as_dict()}
