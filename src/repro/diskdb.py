"""Directory-based persistence for `XMLDatabase`.

An indexed database saves to a directory::

    mydb/
      document.xml    the XML document (canonical serialization)
      meta.json       format version, JDewey gap, ranking/tokenizer
                      config, checksum manifest
      columnar.bin    the JDewey columnar index (exact scores)
      dewey.bin       the document-ordered Dewey index (exact scores)

Opening re-parses the document and re-derives the JDewey numbering
(deterministic given the document and the recorded gap), then installs
the stored postings directly, so queries on the opened database return
byte-identical results to the original without re-tokenizing.

Format v2 (`repro.reliability`) adds integrity and atomicity:

* the index files are *blocked* containers -- every term's payload
  carries a CRC, so a lazy reader can verify exactly the bytes it
  touches -- and ``meta.json`` records a whole-file digest per file;
* `save_database` stages everything in a sibling temp directory,
  fsyncs, then `os.replace`-s file by file with ``meta.json`` strictly
  last.  A crash before the manifest lands leaves either the old
  database intact or a directory whose stale manifest disagrees with
  the new data files -- both detected at load, never absorbed;
* `load_database` verifies digests (`verify="eager"`/``"lazy"``/
  ``"off"``) raising `DatabaseCorruptError` naming the offending file
  (and keyword, for per-block failures), and can route all reads
  through a `FaultInjector` plus bounded `RetryPolicy` so transient
  I/O errors heal and permanent ones surface typed.

Format v3 keeps the v2 guarantees and makes the columnar file
*block-aligned* (``JDX3``, `repro.index.storage`): every per-term,
per-level payload is offset-indexed and 8-byte-padded, so
`load_database` memory-maps ``columnar.bin`` (`reliability.io.map_bytes`)
and the lazy reader materializes columns as ``np.frombuffer`` views --
no whole-payload ``bytes`` copy, and forked `search_batch` workers
share the mapping copy-on-write.  The Dewey file stays in the v2
blocked format.  Saving v3 is opt-in
(``save_database(..., format_version=3)``); the default stays v2.

Version-1 directories (no checksums, bare blobs) still load, and can
still be written (``format_version=1``) for round-trip testing.

Only the default `TfIdfScorer`/`SumCombiner` ranking configuration (any
damping base) round-trips from metadata; databases built with custom
scorers must be reopened with the matching `RankingModel` passed to
`load_database`.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Optional

from .api import XMLDatabase
from .index import storage
from .index.columnar import ColumnarIndex
from .index.inverted import InvertedIndex
from .index.lazydisk import LazyColumnarIndex
from .index.tokenizer import Tokenizer
from .obs.metrics import get_registry
from .reliability.checksum import (ALGORITHMS, DEFAULT_ALGORITHM,
                                   hex_digest)
from .reliability.checksum import verify as digest_matches
from .reliability.errors import (DatabaseCorruptError, DatabaseFormatError,
                                 RetryExhaustedError)
from .reliability.faults import FaultInjector
from .reliability.io import fsync_dir, map_bytes, read_bytes, write_bytes
from .reliability.retry import DEFAULT_POLICY, RetryPolicy
from .scoring.ranking import DampingFunction, RankingModel
from .xmltree.parser import parse_xml

FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2, 3, 4)

_DOCUMENT = "document.xml"
_META = "meta.json"
_COLUMNAR = "columnar.bin"
_DEWEY = "dewey.bin"

_VERIFY_MODES = ("eager", "lazy", "off")


def _fault_hook(stage: str) -> None:
    """Kill-point seam for the atomic-save tests.

    `save_database` calls this after each commit stage
    (``"tmp-written"``, ``"data-replaced"``, ``"meta-replaced"``); the
    crash-consistency tests monkeypatch it to abort mid-save and then
    assert the directory either still loads as the old database or
    fails loudly with a typed error.  A no-op in production.
    """


def _commit_atomically(path: str, data_files, meta_blob: bytes,
                       fsync: bool) -> None:
    """Stage `data_files` (relative-path, blob) plus ``meta.json`` in a
    sibling temp directory and move them into place, manifest strictly
    last.  Relative paths may contain one level of subdirectory (the
    shard layout), created under both the stage and the target."""
    parent = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(parent, exist_ok=True)
    tmp_dir = tempfile.mkdtemp(prefix=os.path.basename(path) + ".tmp-",
                               dir=parent)
    try:
        for name, blob in data_files:
            staged = os.path.join(tmp_dir, name)
            os.makedirs(os.path.dirname(staged), exist_ok=True)
            write_bytes(staged, blob, fsync=fsync)
        write_bytes(os.path.join(tmp_dir, _META), meta_blob, fsync=fsync)
        _fault_hook("tmp-written")
        os.makedirs(path, exist_ok=True)
        for name, _blob in data_files:
            target = os.path.join(path, name)
            os.makedirs(os.path.dirname(target), exist_ok=True)
            os.replace(os.path.join(tmp_dir, name), target)
        if fsync:
            fsync_dir(path)
        _fault_hook("data-replaced")
        # Manifest strictly last: its digests vouch for the data files,
        # so any interleaving of crash and rename is detectable.
        os.replace(os.path.join(tmp_dir, _META), os.path.join(path, _META))
        if fsync:
            fsync_dir(path)
        _fault_hook("meta-replaced")
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)


def save_database(db: XMLDatabase, path: str,
                  algorithm: Optional[str] = None,
                  fsync: bool = True,
                  format_version: Optional[int] = None,
                  shards: Optional[int] = None) -> None:
    """Write `db` (document + both indexes) to directory `path`, atomically.

    Builds any index not yet built.  All files are staged in a sibling
    temp directory (same filesystem, so `os.replace` is atomic), fsynced,
    then moved into place with ``meta.json`` last -- the manifest's
    arrival commits the save.  ``algorithm`` picks the checksum
    (default `repro.reliability.DEFAULT_ALGORITHM`); ``fsync=False``
    trades durability for speed (tests, throwaway dirs).

    ``format_version`` selects the on-disk format: 2 (default, blocked
    checksummed containers), 3 (block-aligned columnar container that
    loads zero-copy from an mmap), 4 (the v3 container with per-column
    adaptive codec selection over rle/delta/varint/for) or 1 (legacy
    bare blobs, no checksums -- kept writable for round-trip tests).

    Bytes written are published as ``repro_disk_bytes_written_total``
    in the process metrics registry.

    ``shards=N`` writes the *sharded* layout instead
    (`docs/SERVING.md`): one format-v3 columnar container and one
    blocked Dewey container per shard under ``shard-XX/``
    subdirectories, partitioned by root-child subtree
    (`repro.serve.sharding`), plus a shard manifest in ``meta.json``.
    Opening a sharded directory returns a
    `repro.serve.ShardedDatabase`.
    """
    metrics = get_registry()
    algorithm = algorithm if algorithm is not None else DEFAULT_ALGORITHM
    if shards is not None:
        if format_version not in (None, 3, 4):
            raise ValueError("sharded databases require format version 3 "
                             f"or 4 (got {format_version!r})")
        shard_version = 3 if format_version is None else int(format_version)
        return _save_sharded(db, path, int(shards), algorithm, fsync,
                             metrics, shard_version)
    version = FORMAT_VERSION if format_version is None else int(format_version)
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unknown format version {version!r}; "
                         f"one of {_SUPPORTED_VERSIONS}")
    document = db.tree.to_xml().encode("utf-8")
    if version == 1:
        columnar_blob = storage.serialize_columnar_index(
            db.columnar_index, score_mode=storage.SCORES_EXACT)
        dewey_blob = storage.serialize_inverted_index(
            db.inverted_index, score_mode=storage.SCORES_EXACT)
    else:
        if version == 4:
            columnar_blob = storage.serialize_columnar_index_v4(
                db.columnar_index, score_mode=storage.SCORES_EXACT,
                algorithm=algorithm)
        elif version == 3:
            columnar_blob = storage.serialize_columnar_index_v3(
                db.columnar_index, score_mode=storage.SCORES_EXACT,
                algorithm=algorithm)
        else:
            columnar_blob = storage.serialize_columnar_index_blocked(
                db.columnar_index, score_mode=storage.SCORES_EXACT,
                algorithm=algorithm)
        dewey_blob = storage.serialize_inverted_index_blocked(
            db.inverted_index, score_mode=storage.SCORES_EXACT,
            algorithm=algorithm)
    meta = {
        "format_version": version,
        "jdewey_gap": db.encoder.gap,
        "n_docs": db.inverted_index.n_docs,
        "damping_base": db.ranking.damping.base,
        "tokenizer": {
            "stopwords": sorted(db.tokenizer.stopwords),
            "min_length": db.tokenizer.min_length,
        },
        "n_nodes": len(db.tree),
    }
    if version >= 2:
        meta["checksum"] = {
            "algorithm": algorithm,
            "files": {
                _DOCUMENT: hex_digest(document, algorithm),
                _COLUMNAR: hex_digest(columnar_blob, algorithm),
                _DEWEY: hex_digest(dewey_blob, algorithm),
            },
        }
    meta_blob = json.dumps(meta, indent=2, sort_keys=True).encode("utf-8")
    data_files = [(_DOCUMENT, document), (_COLUMNAR, columnar_blob),
                  (_DEWEY, dewey_blob)]
    _commit_atomically(path, data_files, meta_blob, fsync)
    metrics.counter("repro_disk_bytes_written_total").inc(
        len(document) + len(columnar_blob) + len(dewey_blob)
        + len(meta_blob))
    metrics.counter("repro_db_saves_total").inc()


def _shard_dir(sid: int) -> str:
    return f"shard-{sid:02d}"


def _save_sharded(db: XMLDatabase, path: str, n_shards: int,
                  algorithm: str, fsync: bool, metrics,
                  version: int = 3) -> None:
    """Write the sharded layout: one v3/v4 columnar + one blocked Dewey
    container per root-child-subtree shard, one shared document, one
    manifest.  Same atomic commit discipline as the flat layout."""
    from .serve.sharding import partition_columnar, partition_inverted

    if n_shards < 1:
        raise ValueError("shards must be >= 1")
    serialize_columnar = (storage.serialize_columnar_index_v4
                          if version == 4
                          else storage.serialize_columnar_index_v3)
    document = db.tree.to_xml().encode("utf-8")
    columnar = db.columnar_index
    inverted = db.inverted_index
    col_shards = partition_columnar(
        {t: columnar.term_postings(t) for t in columnar.vocabulary},
        db.tree, n_shards)
    dew_shards = partition_inverted(
        {t: inverted.term_list(t) for t in inverted.vocabulary}, n_shards)

    data_files = [(_DOCUMENT, document)]
    for sid in range(n_shards):
        col_blob = serialize_columnar(
            storage.PostingsView(col_shards[sid]),
            score_mode=storage.SCORES_EXACT, algorithm=algorithm)
        dew_blob = storage.serialize_inverted_index_blocked(
            storage.PostingsView(dew_shards[sid]),
            score_mode=storage.SCORES_EXACT, algorithm=algorithm)
        data_files.append((os.path.join(_shard_dir(sid), _COLUMNAR),
                           col_blob))
        data_files.append((os.path.join(_shard_dir(sid), _DEWEY),
                           dew_blob))
    meta = {
        "format_version": version,
        "jdewey_gap": db.encoder.gap,
        "n_docs": inverted.n_docs,
        "damping_base": db.ranking.damping.base,
        "tokenizer": {
            "stopwords": sorted(db.tokenizer.stopwords),
            "min_length": db.tokenizer.min_length,
        },
        "n_nodes": len(db.tree),
        "shards": {
            "count": n_shards,
            "strategy": "root-child-mod",
            "dirs": [_shard_dir(sid) for sid in range(n_shards)],
        },
        "checksum": {
            "algorithm": algorithm,
            "files": {name: hex_digest(blob, algorithm)
                      for name, blob in data_files},
        },
    }
    meta_blob = json.dumps(meta, indent=2, sort_keys=True).encode("utf-8")
    _commit_atomically(path, data_files, meta_blob, fsync)
    metrics.counter("repro_disk_bytes_written_total").inc(
        sum(len(blob) for _name, blob in data_files) + len(meta_blob))
    metrics.counter("repro_db_saves_total").inc()


def load_database(path: str,
                  ranking: Optional[RankingModel] = None,
                  cache=None,
                  postings_cache_size: int = 256,
                  result_cache_size: int = 1024,
                  verify: str = "eager",
                  lazy: bool = False,
                  injector: Optional[FaultInjector] = None,
                  retry: Optional[RetryPolicy] = None,
                  vectorized: bool = True,
                  decoded_cache_bytes: int = 32 * 1024 * 1024,
                  **db_kwargs):
    """Open a directory written by `save_database`.

    Returns an `XMLDatabase`, or a `repro.serve.ShardedDatabase` when
    the manifest carries a shard layout (``save_database(shards=N)``);
    both answer the same search surface.  For a sharded directory the
    ``cache`` argument is ignored (each shard keeps its own caches).

    ``cache`` / ``postings_cache_size`` / ``result_cache_size`` and any
    extra keyword arguments (``tracer``, ``metrics``, ``slow_log``, ...)
    are forwarded to the `XMLDatabase` constructor.  Bytes read are
    published as ``repro_disk_bytes_read_total``.

    Reliability knobs (`repro.reliability`):

    * ``verify`` -- ``"eager"`` (default) checks every whole-file
      digest at load; ``"lazy"`` defers the columnar index to per-block
      checks on first touch (only meaningful with ``lazy=True``);
      ``"off"`` skips verification.
    * ``lazy`` -- serve the columnar index from the compressed blob
      (`LazyColumnarIndex`), decompressing columns on demand.
    * ``injector`` / ``retry`` -- route every file read through a
      `FaultInjector` and a bounded `RetryPolicy` (defaults to
      `DEFAULT_POLICY` when an injector is installed), so transient
      faults heal; exhausted retries surface as `DatabaseCorruptError`.
      For a format-v3 database an installed injector downgrades the
      columnar mmap to a plain (fault-observable) read.
    * ``vectorized`` -- use the numpy batched column decoders
      (default); ``False`` falls back to the scalar reference decoders.
    * ``decoded_cache_bytes`` -- byte budget of the shared
      decoded-column LRU on the lazy path (default 32 MiB; ``0``
      disables it, reverting to unbounded per-postings caching).  One
      cache serves all shards of a sharded database; hot terms skip
      column decompression on repeat queries and bill the saving to the
      query's `ResourceAccount`.

    A format-v3 database maps ``columnar.bin`` instead of reading it:
    the returned database holds the mapping for its lifetime and column
    decompression runs on zero-copy views of it.

    Raises `DatabaseFormatError` on missing files, version mismatch, or
    a document that no longer matches the stored indexes, and
    `DatabaseCorruptError` (a subclass) when bytes fail their checksum
    or do not parse.
    """
    if verify not in _VERIFY_MODES:
        raise ValueError(f"unknown verify mode {verify!r}; "
                         f"one of {_VERIFY_MODES}")
    metrics = get_registry()
    bytes_read = metrics.counter("repro_disk_bytes_read_total")
    decoded_cache = None
    if lazy and decoded_cache_bytes > 0:
        from .cache import DecodedColumnCache

        decoded_cache = DecodedColumnCache(decoded_cache_bytes,
                                           metrics=metrics)
    if retry is None and injector is not None:
        retry = DEFAULT_POLICY

    def read_file(name: str, op: str) -> bytes:
        try:
            return read_bytes(os.path.join(path, name), injector=injector,
                              retry=retry, metrics=metrics, op=op)
        except RetryExhaustedError as exc:
            raise DatabaseCorruptError(
                f"could not read {name}: {exc}", file=name) from exc

    meta_path = os.path.join(path, _META)
    if not os.path.exists(meta_path):
        raise DatabaseFormatError(f"{path!r} has no {_META} "
                                  "(incomplete or not a database)")
    try:
        meta = json.loads(read_file(_META, "read-meta").decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise DatabaseFormatError(
            f"{_META} does not parse ({exc}); interrupted save?") from exc
    version = meta.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise DatabaseFormatError(
            f"format version {version!r} unsupported "
            f"(expected one of {_SUPPORTED_VERSIONS})")
    # Pull every field up-front so a mangled manifest surfaces as one
    # typed error instead of a raw KeyError/TypeError deep in the load.
    try:
        manifest = meta.get("checksum", {})
        algorithm = manifest.get("algorithm")
        digests = manifest.get("files", {})
        n_nodes = int(meta["n_nodes"])
        n_docs = int(meta["n_docs"])
        jdewey_gap = int(meta["jdewey_gap"])
        damping_base = float(meta["damping_base"])
        tokenizer_cfg = meta["tokenizer"]
        stopwords = list(tokenizer_cfg["stopwords"])
        min_length = int(tokenizer_cfg["min_length"])
    except (KeyError, TypeError, ValueError) as exc:
        raise DatabaseFormatError(
            f"{_META} is missing or has an invalid field: {exc!r}") from exc
    if version >= 2 and verify != "off" and algorithm not in ALGORITHMS:
        raise DatabaseFormatError(
            f"manifest names unknown checksum algorithm {algorithm!r}")

    def verify_file(name: str, blob: bytes) -> None:
        if verify == "off" or version < 2:
            return
        expected = digests.get(name)
        if expected is None or not digest_matches(blob, expected, algorithm):
            metrics.counter("repro_checksum_failures_total",
                            {"file": name}).inc()
            raise DatabaseCorruptError(
                f"whole-file digest mismatch for {name} "
                f"({algorithm}); the file was corrupted or belongs to "
                "an interrupted save", file=name)

    doc_blob = read_file(_DOCUMENT, "read-document")
    bytes_read.inc(len(doc_blob))
    verify_file(_DOCUMENT, doc_blob)
    try:
        tree = parse_xml(doc_blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError, IndexError, KeyError) as exc:
        raise DatabaseCorruptError(
            f"{_DOCUMENT} does not parse: {exc}", file=_DOCUMENT) from exc
    if len(tree) != n_nodes:
        raise DatabaseFormatError(
            f"document has {len(tree)} nodes, metadata says {n_nodes}")

    try:
        tokenizer = Tokenizer(stopwords=stopwords, min_length=min_length)
        if ranking is None:
            ranking = RankingModel(damping=DampingFunction(damping_base))
    except (TypeError, ValueError) as exc:
        raise DatabaseFormatError(
            f"{_META} carries an invalid configuration: {exc}") from exc

    def make_db(db_cache):
        try:
            return XMLDatabase(tree, tokenizer=tokenizer, ranking=ranking,
                               jdewey_gap=jdewey_gap, cache=db_cache,
                               postings_cache_size=postings_cache_size,
                               result_cache_size=result_cache_size,
                               **db_kwargs)
        except (TypeError, ValueError) as exc:
            raise DatabaseFormatError(
                f"{_META} carries an invalid configuration: {exc}") from exc

    def load_indexes(db: XMLDatabase, columnar_rel: str = _COLUMNAR,
                     dewey_rel: str = _DEWEY) -> None:
        """Read one (columnar, dewey) container pair into `db` -- the
        flat layout's two files, or one shard's subdirectory pair."""
        if version >= 3:
            # Zero-copy path: mmap the columnar container.  With a
            # fault injector installed `map_bytes` degrades to the
            # copying read so the fault matrix stays observable.
            try:
                columnar_source = map_bytes(
                    os.path.join(path, columnar_rel), injector=injector,
                    retry=retry, metrics=metrics, op="read-columnar")
            except RetryExhaustedError as exc:
                raise DatabaseCorruptError(
                    f"could not read {columnar_rel}: {exc}",
                    file=columnar_rel) from exc
            columnar_blob = getattr(columnar_source, "view",
                                    columnar_source)
        else:
            columnar_source = columnar_blob = read_file(columnar_rel,
                                                        "read-columnar")
        dewey_blob = read_file(dewey_rel, "read-dewey")
        bytes_read.inc(len(columnar_blob) + len(dewey_blob))
        verify_file(dewey_rel, dewey_blob)
        if not lazy:
            # The lazy path skips the whole-file pass on the columnar
            # blob on purpose: its per-block CRCs cover exactly the
            # bytes a query touches, when it touches them.
            verify_file(columnar_rel, columnar_blob)

        if version >= 2:
            # Block CRCs are not re-checked here -- the whole-file
            # digest above already covered every byte (unless
            # verify="off", which asked for no checks at all).
            dewey_lists = storage.deserialize_inverted_index_blocked(
                dewey_blob, verify=False, file=dewey_rel)
        else:
            dewey_lists = storage.guarded_deserialize_inverted(
                dewey_blob, file=dewey_rel)
        db._inverted = InvertedIndex.from_lists(
            tree, dewey_lists, tokenizer, ranking, n_docs)

        if lazy:
            lazy_index = LazyColumnarIndex(
                columnar_source, tree, tokenizer, ranking,
                verify=verify if version >= 2 else "off",
                source=columnar_rel, metrics=metrics,
                vectorized=vectorized, decoded_cache=decoded_cache)
            lazy_index.n_docs = n_docs
            db._columnar = lazy_index
        else:
            if version == 4:
                columnar_postings = storage.deserialize_columnar_index_v4(
                    columnar_blob, verify=False, file=columnar_rel,
                    vectorized=vectorized)
            elif version == 3:
                columnar_postings = storage.deserialize_columnar_index_v3(
                    columnar_blob, verify=False, file=columnar_rel,
                    vectorized=vectorized)
            elif version == 2:
                columnar_postings = \
                    storage.deserialize_columnar_index_blocked(
                        columnar_blob, verify=False, file=columnar_rel)
            else:
                columnar_postings = storage.guarded_deserialize_columnar(
                    columnar_blob, file=columnar_rel)
            db._columnar = ColumnarIndex.from_postings(
                tree, columnar_postings, tokenizer, ranking, n_docs)
            _verify_consistency(db)

    shards_meta = meta.get("shards")
    if shards_meta is not None:
        from .serve.merge import ShardedDatabase

        try:
            shard_count = int(shards_meta["count"])
            shard_dirs = [str(d) for d in shards_meta["dirs"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise DatabaseFormatError(
                f"{_META} has an invalid shard manifest: {exc!r}") from exc
        if shard_count < 1 or shard_count != len(shard_dirs):
            raise DatabaseFormatError(
                f"{_META} shard manifest is inconsistent: count="
                f"{shard_count} with {len(shard_dirs)} directories")
        # Each shard gets its own caches (`cache` is ignored): result
        # keys carry no shard id, so one shared cache would hand shard
        # A's answers to shard B.
        shard_dbs = []
        for shard_dir in shard_dirs:
            shard_db = make_db(None)
            load_indexes(shard_db,
                         columnar_rel=os.path.join(shard_dir, _COLUMNAR),
                         dewey_rel=os.path.join(shard_dir, _DEWEY))
            shard_dbs.append(shard_db)
        metrics.counter("repro_db_loads_total").inc()
        return ShardedDatabase(tree, shard_dbs, manifest=shards_meta)

    db = make_db(cache)
    load_indexes(db)
    metrics.counter("repro_db_loads_total").inc()
    return db


def _verify_consistency(db: XMLDatabase) -> None:
    """Spot-check that the stored postings match the re-encoded tree.

    The JDewey re-encoding is deterministic, so a mismatch means the
    document file was edited after the indexes were written.  Skipped
    on the lazy load path (it would materialize sequences).
    """
    columnar = db._columnar
    for term in columnar.vocabulary[:5]:
        for seq in columnar.term_postings(term).seqs[:3]:
            level, number = len(seq), seq[-1]
            try:
                node = columnar.node_at(level, number)
            except KeyError:
                raise DatabaseFormatError(
                    f"stored posting for {term!r} points at a node "
                    f"(level={level}, number={number}) absent from the "
                    "document; files are out of sync")
            if node.jdewey != seq:
                raise DatabaseFormatError(
                    f"stored posting for {term!r} disagrees with the "
                    "re-encoded document; files are out of sync")
