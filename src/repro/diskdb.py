"""Directory-based persistence for `XMLDatabase`.

An indexed database saves to a directory::

    mydb/
      document.xml    the XML document (canonical serialization)
      meta.json       format version, JDewey gap, ranking/tokenizer config
      columnar.bin    the JDewey columnar index (exact scores)
      dewey.bin       the document-ordered Dewey index (exact scores)

Opening re-parses the document and re-derives the JDewey numbering
(deterministic given the document and the recorded gap), then installs
the stored postings directly, so queries on the opened database return
byte-identical results to the original without re-tokenizing.

Only the default `TfIdfScorer`/`SumCombiner` ranking configuration (any
damping base) round-trips from metadata; databases built with custom
scorers must be reopened with the matching `RankingModel` passed to
`load_database`.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from .api import XMLDatabase
from .index import storage
from .obs.metrics import get_registry
from .index.columnar import ColumnarIndex
from .index.inverted import InvertedIndex
from .index.tokenizer import Tokenizer
from .scoring.ranking import DampingFunction, RankingModel
from .xmltree.parser import parse_xml

FORMAT_VERSION = 1

_DOCUMENT = "document.xml"
_META = "meta.json"
_COLUMNAR = "columnar.bin"
_DEWEY = "dewey.bin"


class DatabaseFormatError(ValueError):
    """Raised when a database directory is missing pieces or mismatched."""


def save_database(db: XMLDatabase, path: str) -> None:
    """Write `db` (document + both indexes) to directory `path`.

    Builds any index not yet built; existing files are overwritten.
    Bytes written are published as
    ``repro_disk_bytes_written_total`` in the process metrics registry.
    """
    metrics = get_registry()
    bytes_written = metrics.counter("repro_disk_bytes_written_total")
    os.makedirs(path, exist_ok=True)
    meta = {
        "format_version": FORMAT_VERSION,
        "jdewey_gap": db.encoder.gap,
        "n_docs": db.inverted_index.n_docs,
        "damping_base": db.ranking.damping.base,
        "tokenizer": {
            "stopwords": sorted(db.tokenizer.stopwords),
            "min_length": db.tokenizer.min_length,
        },
        "n_nodes": len(db.tree),
    }
    document = db.tree.to_xml()
    with open(os.path.join(path, _DOCUMENT), "w", encoding="utf-8") as f:
        f.write(document)
    bytes_written.inc(len(document.encode("utf-8")))
    columnar_blob = storage.serialize_columnar_index(
        db.columnar_index, score_mode=storage.SCORES_EXACT)
    with open(os.path.join(path, _COLUMNAR), "wb") as f:
        f.write(columnar_blob)
    dewey_blob = storage.serialize_inverted_index(
        db.inverted_index, score_mode=storage.SCORES_EXACT)
    with open(os.path.join(path, _DEWEY), "wb") as f:
        f.write(dewey_blob)
    bytes_written.inc(len(columnar_blob) + len(dewey_blob))
    # Metadata last: its presence marks a complete save.
    with open(os.path.join(path, _META), "w", encoding="utf-8") as f:
        json.dump(meta, f, indent=2, sort_keys=True)
    metrics.counter("repro_db_saves_total").inc()


def load_database(path: str,
                  ranking: Optional[RankingModel] = None,
                  cache=None,
                  postings_cache_size: int = 256,
                  result_cache_size: int = 1024,
                  **db_kwargs) -> XMLDatabase:
    """Open a directory written by `save_database`.

    ``cache`` / ``postings_cache_size`` / ``result_cache_size`` and any
    extra keyword arguments (``tracer``, ``metrics``, ``slow_log``, ...)
    are forwarded to the `XMLDatabase` constructor.  Bytes read are
    published as ``repro_disk_bytes_read_total``.

    Raises `DatabaseFormatError` on missing files, version mismatch, or
    a document that no longer matches the stored indexes.
    """
    metrics = get_registry()
    bytes_read = metrics.counter("repro_disk_bytes_read_total")
    meta_path = os.path.join(path, _META)
    if not os.path.exists(meta_path):
        raise DatabaseFormatError(f"{path!r} has no {_META} "
                                  "(incomplete or not a database)")
    with open(meta_path, "r", encoding="utf-8") as f:
        meta = json.load(f)
    if meta.get("format_version") != FORMAT_VERSION:
        raise DatabaseFormatError(
            f"format version {meta.get('format_version')!r} unsupported "
            f"(expected {FORMAT_VERSION})")

    with open(os.path.join(path, _DOCUMENT), "r", encoding="utf-8") as f:
        document = f.read()
    bytes_read.inc(len(document.encode("utf-8")))
    tree = parse_xml(document)
    if len(tree) != meta["n_nodes"]:
        raise DatabaseFormatError(
            f"document has {len(tree)} nodes, metadata says "
            f"{meta['n_nodes']}")

    tokenizer = Tokenizer(stopwords=meta["tokenizer"]["stopwords"],
                          min_length=meta["tokenizer"]["min_length"])
    if ranking is None:
        ranking = RankingModel(
            damping=DampingFunction(meta["damping_base"]))
    db = XMLDatabase(tree, tokenizer=tokenizer, ranking=ranking,
                     jdewey_gap=meta["jdewey_gap"], cache=cache,
                     postings_cache_size=postings_cache_size,
                     result_cache_size=result_cache_size,
                     **db_kwargs)

    with open(os.path.join(path, _COLUMNAR), "rb") as f:
        columnar_blob = f.read()
    with open(os.path.join(path, _DEWEY), "rb") as f:
        dewey_blob = f.read()
    bytes_read.inc(len(columnar_blob) + len(dewey_blob))
    columnar_postings = storage.deserialize_columnar_index(columnar_blob)
    dewey_lists = storage.deserialize_inverted_index(dewey_blob)
    db._columnar = ColumnarIndex.from_postings(
        tree, columnar_postings, tokenizer, ranking, meta["n_docs"])
    db._inverted = InvertedIndex.from_lists(
        tree, dewey_lists, tokenizer, ranking, meta["n_docs"])
    _verify_consistency(db)
    metrics.counter("repro_db_loads_total").inc()
    return db


def _verify_consistency(db: XMLDatabase) -> None:
    """Spot-check that the stored postings match the re-encoded tree.

    The JDewey re-encoding is deterministic, so a mismatch means the
    document file was edited after the indexes were written.
    """
    columnar = db._columnar
    for term in columnar.vocabulary[:5]:
        for seq in columnar.term_postings(term).seqs[:3]:
            level, number = len(seq), seq[-1]
            try:
                node = columnar.node_at(level, number)
            except KeyError:
                raise DatabaseFormatError(
                    f"stored posting for {term!r} points at a node "
                    f"(level={level}, number={number}) absent from the "
                    "document; files are out of sync")
            if node.jdewey != seq:
                raise DatabaseFormatError(
                    f"stored posting for {term!r} disagrees with the "
                    "re-encoded document; files are out of sync")
