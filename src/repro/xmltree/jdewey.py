"""JDewey encoding (paper section III-A).

The JDewey numbering assigns every node an integer that is

1. unique among all the nodes at the same tree level, and
2. order-preserving across levels: if ``v1`` and ``v2`` are at the same
   level and ``jnum(v1) > jnum(v2)``, every child of ``v1`` has a larger
   number than every child of ``v2``.

A node's *JDewey sequence* is the vector of JDewey numbers on its
root-to-node path.  Requirement (2) gives the column-sortedness property
(Property 3.1 of the paper): if two sequences are ordered, they are
ordered component-wise, so every column of a sequence-sorted inverted
list is itself sorted.

`JDeweyEncoder` owns the assignment and the maintenance described in the
paper: ``gap`` extra numbers are reserved after every node's child block
so that insertions are cheap, and when a block overflows, a partial
re-encode relocates the smallest safe ancestor's subtree to the numeric
end of its levels (the paper's "only the subtree rooted at 1.1 needs to
be re-encoded" example).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .tree import Node, XMLTree

JDeweySeq = Tuple[int, ...]


def jdewey_sort_key(seq: Sequence[int]) -> Tuple[int, ...]:
    """Sort key for the JDewey order.

    The paper's order is ``S1 < S2`` iff some component differs with
    ``S1(j) < S2(j)`` or ``S1`` is a prefix of ``S2`` -- exactly Python's
    tuple order, so the key is the tuple itself.
    """
    return tuple(seq)


def check_componentwise(s1: Sequence[int], s2: Sequence[int]) -> bool:
    """Property 3.1: if ``s1 <= s2`` then they compare component-wise."""
    if tuple(s1) > tuple(s2):
        s1, s2 = s2, s1
    limit = min(len(s1), len(s2))
    return all(s1[i] <= s2[i] for i in range(limit))


class _Block:
    """The reserved child-number block of one parent node."""

    __slots__ = ("start", "end", "next_free")

    def __init__(self, start: int, end: int):
        self.start = start
        self.end = end          # exclusive
        self.next_free = start

    @property
    def exhausted(self) -> bool:
        return self.next_free >= self.end


class JDeweyEncoder:
    """Assigns and maintains JDewey numbers for one `XMLTree`.

    Parameters
    ----------
    gap:
        Number of spare child slots reserved per parent (0 = densest
        numbering, best for static documents and for the index-size
        experiment; >0 trades number magnitude for cheap insertion).
    """

    def __init__(self, tree: XMLTree, gap: int = 0):
        if not tree.frozen:
            raise ValueError("encode a frozen tree (call tree.freeze())")
        self.tree = tree
        self.gap = gap
        self._level_next: List[int] = []      # next unused number per level
        self._blocks: Dict[int, _Block] = {}  # id(parent) -> child block
        self._jnum: Dict[int, int] = {}       # id(node) -> own number
        self.reencode_count = 0               # partial re-encodes performed
        self._encode_all()

    # ------------------------------------------------------------------
    # initial encoding
    # ------------------------------------------------------------------

    def _next_at_level(self, level: int, count: int) -> int:
        """Reserve `count` consecutive numbers at `level`; return the first."""
        while len(self._level_next) < level:
            self._level_next.append(1)
        start = self._level_next[level - 1]
        self._level_next[level - 1] = start + count
        return start

    def _encode_all(self) -> None:
        root = self.tree.root
        self._assign(root, self._next_at_level(1, 1 + self.gap))
        # Level-order walk so each level's numbers follow document order.
        frontier: List[Node] = [root]
        while frontier:
            next_frontier: List[Node] = []
            for parent in frontier:
                self._encode_children(parent)
                next_frontier.extend(parent.children)
            frontier = next_frontier

    def _encode_children(self, parent: Node) -> None:
        n = len(parent.children)
        if n == 0 and self.gap == 0:
            return
        # Level from the JDewey sequence, not the Dewey id: nodes inserted
        # after freeze() have no Dewey id, but their parents are always
        # encoded first.
        level = len(parent.jdewey) + 1
        start = self._next_at_level(level, n + self.gap)
        block = _Block(start, start + n + self.gap)
        self._blocks[id(parent)] = block
        for child in parent.children:
            self._assign(child, block.next_free)
            block.next_free += 1

    def _assign(self, node: Node, number: int) -> None:
        self._jnum[id(node)] = number
        parent_seq = node.parent.jdewey if node.parent is not None else ()
        node.jdewey = parent_seq + (number,)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def number_of(self, node: Node) -> int:
        return self._jnum[id(node)]

    def sequence_of(self, node: Node) -> JDeweySeq:
        return node.jdewey

    def level_width(self, level: int) -> int:
        """Largest number handed out at `level` (storage-size proxy)."""
        if level > len(self._level_next):
            return 0
        return self._level_next[level - 1] - 1

    # ------------------------------------------------------------------
    # maintenance: insert / delete
    # ------------------------------------------------------------------

    def insert(self, parent: Node, node: Node,
               position: Optional[int] = None) -> Node:
        """Insert `node` as a child of `parent`, keeping the invariants.

        Numbers inside a parent's reserved block are interchangeable (the
        invariant only constrains numbers *across* parents), so any free
        slot works regardless of the sibling position.  When the block is
        exhausted the smallest safe ancestor subtree is re-encoded at the
        numeric end of its levels, exactly as section III-A describes.
        """
        node.parent = parent
        if position is None:
            parent.children.append(node)
        else:
            parent.children.insert(position, node)

        block = self._blocks.get(id(parent))
        if block is None or block.exhausted or node.children:
            # No free slot -- or the insert carries a whole subtree, whose
            # descendants would need number space *between* existing
            # blocks at every level below; only a relocation to the
            # numeric end of each level (the partial re-encode) provides
            # that consistently.
            anchor = self._safe_ancestor(parent)
            self._reencode_subtree(anchor)
            return node
        self._assign(node, block.next_free)
        block.next_free += 1
        return node

    def delete(self, node: Node) -> None:
        """Remove `node`'s subtree.  Its numbers are simply retired."""
        parent = node.parent
        if parent is None:
            raise ValueError("cannot delete the root")
        parent.children.remove(node)
        for n in node.iter_subtree():
            self._jnum.pop(id(n), None)
            self._blocks.pop(id(n), None)
        node.parent = None

    def _safe_ancestor(self, start: Node) -> Node:
        """Lowest ancestor-or-self whose relocation preserves invariant (2).

        Moving node ``a`` to the numeric end of its level is safe when
        ``a``'s parent carries the largest number at *its* level (then no
        larger-numbered parent exists whose children would have to exceed
        ``a``'s new number).  The walk terminates at a child of the root,
        since the root is trivially the maximum of level 1.
        """
        a = start
        while a.parent is not None and a.parent.parent is not None:
            parent_num = self._jnum[id(a.parent)]
            parent_level = len(a.parent.jdewey)
            level_max = self._level_next[parent_level - 1] - 1
            if parent_num == level_max:
                return a
            a = a.parent
        return a if a.parent is not None else a

    def _reencode_subtree(self, anchor: Node) -> None:
        """Relocate `anchor`'s subtree to the numeric end of each level."""
        self.reencode_count += 1
        if anchor.parent is not None:
            self._assign(anchor,
                         self._next_at_level(len(anchor.jdewey), 1))
        self._encode_descendants(anchor)

    def _encode_descendants(self, top: Node) -> None:
        frontier = [top]
        while frontier:
            next_frontier: List[Node] = []
            for parent in frontier:
                self._blocks.pop(id(parent), None)
                self._encode_children(parent)
                next_frontier.extend(parent.children)
            frontier = next_frontier

    # ------------------------------------------------------------------
    # validation (used heavily by tests)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check both JDewey requirements; raise AssertionError on failure."""
        by_level: Dict[int, List[Node]] = {}
        for node in self.tree.root.iter_subtree():
            by_level.setdefault(len(node.jdewey), []).append(node)
        for level, nodes in by_level.items():
            numbers = [self._jnum[id(n)] for n in nodes]
            if len(set(numbers)) != len(numbers):
                raise AssertionError(f"duplicate JDewey number at level {level}")
        for level, nodes in sorted(by_level.items()):
            ordered = sorted(nodes, key=lambda n: self._jnum[id(n)])
            for v1, v2 in zip(ordered, ordered[1:]):
                if not v1.children or not v2.children:
                    continue
                max_c1 = max(self._jnum[id(c)] for c in v1.children)
                min_c2 = min(self._jnum[id(c)] for c in v2.children)
                if not max_c1 < min_c2:
                    raise AssertionError(
                        f"order violation between {v1!r} and {v2!r}")
        for node in self.tree.root.iter_subtree():
            expected = (node.parent.jdewey if node.parent else ()) + (
                self._jnum[id(node)],)
            if node.jdewey != expected:
                raise AssertionError(f"stale sequence on {node!r}")


def lca_from_sequences(s1: Sequence[int], s2: Sequence[int]
                       ) -> Optional[Tuple[int, int]]:
    """LCA of two nodes from their JDewey sequences.

    Returns ``(level, number)`` -- the largest ``i`` with
    ``s1[i] == s2[i]`` identifies the LCA (paper section III-A) -- or
    None if the sequences share no component (different trees).
    """
    limit = min(len(s1), len(s2))
    level = 0
    for i in range(limit):
        if s1[i] == s2[i]:
            level = i + 1
        else:
            break
    if level == 0:
        return None
    return level, s1[level - 1]


def encode_tree(tree: XMLTree, gap: int = 0) -> JDeweyEncoder:
    """Assign JDewey numbers to every node of `tree`; returns the encoder."""
    return JDeweyEncoder(tree, gap=gap)


def sequences_in_order(nodes: Iterable[Node]) -> List[JDeweySeq]:
    """JDewey sequences of `nodes`, sorted in JDewey order."""
    return sorted((n.jdewey for n in nodes), key=jdewey_sort_key)
