"""XML substrate: tree model, parser, Dewey and JDewey encodings."""

from .tree import Node, XMLTree, build_tree
from .parser import XMLParseError, parse_xml, parse_xml_file
from . import dewey
from .jdewey import (JDeweyEncoder, encode_tree, jdewey_sort_key,
                     lca_from_sequences)

__all__ = [
    "Node",
    "XMLTree",
    "build_tree",
    "XMLParseError",
    "parse_xml",
    "parse_xml_file",
    "dewey",
    "JDeweyEncoder",
    "encode_tree",
    "jdewey_sort_key",
    "lca_from_sequences",
]
