"""In-memory XML tree model.

The tree is the substrate every other subsystem builds on: nodes carry a
tag, optional text, and children.  After a tree is frozen (`XMLTree.freeze`)
every node additionally carries

* a *Dewey id* -- the classic path-of-sibling-ordinals identifier used by
  the stack-based and index-based baselines, and
* a *JDewey sequence* -- the per-level numbering introduced by the paper
  (see `repro.xmltree.jdewey`).

Only elements participate in the structural encodings; text is attached to
its owning element (mixed content is concatenated).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

Dewey = Tuple[int, ...]
JDeweySeq = Tuple[int, ...]


class Node:
    """One element of an XML tree.

    Attributes
    ----------
    tag:
        Element name.
    text:
        Concatenated character data directly inside this element (not
        including descendants' text).
    children:
        Child elements in document order.
    dewey:
        Dewey id, assigned by `XMLTree.freeze`.  The root is ``(1,)``.
    jdewey:
        JDewey sequence, assigned by a `JDeweyEncoder`.  ``jdewey[i]`` is
        the JDewey number of this node's ancestor at depth ``i + 1`` (the
        last entry is the node's own number).
    """

    __slots__ = ("tag", "text", "children", "parent", "dewey", "jdewey",
                 "attributes")

    def __init__(self, tag: str, text: str = "",
                 attributes: Optional[Dict[str, str]] = None):
        self.tag = tag
        self.text = text
        self.attributes: Dict[str, str] = attributes or {}
        self.children: List["Node"] = []
        self.parent: Optional["Node"] = None
        self.dewey: Dewey = ()
        self.jdewey: JDeweySeq = ()

    def add_child(self, child: "Node") -> "Node":
        """Append `child` and return it (convenient for chaining)."""
        child.parent = self
        self.children.append(child)
        return child

    @property
    def level(self) -> int:
        """Depth of the node; the root is at level 1."""
        return len(self.dewey)

    def iter_subtree(self) -> Iterator["Node"]:
        """Yield this node and all descendants in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def subtree_text(self) -> str:
        """All character data in the subtree, in document order."""
        return " ".join(n.text for n in self.iter_subtree() if n.text)

    def is_ancestor_of(self, other: "Node") -> bool:
        """True iff `self` is a proper ancestor of `other` (Dewey test)."""
        d1, d2 = self.dewey, other.dewey
        return len(d1) < len(d2) and d2[: len(d1)] == d1

    def path(self) -> List["Node"]:
        """Nodes from the root down to this node, inclusive."""
        nodes: List[Node] = []
        cur: Optional[Node] = self
        while cur is not None:
            nodes.append(cur)
            cur = cur.parent
        nodes.reverse()
        return nodes

    def to_xml(self, indent: bool = False) -> str:
        """Serialize this node's subtree (the result fragment a keyword
        search returns to the user)."""
        parts: List[str] = []
        _serialize_node(self, parts, 0, indent)
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dewey = ".".join(map(str, self.dewey)) if self.dewey else "?"
        return f"<Node {self.tag} dewey={dewey}>"


class XMLTree:
    """A frozen XML document.

    Construct via `XMLTree(root)` and call `freeze()` once the structure is
    final; freezing assigns Dewey ids and builds the document-order node
    list.  JDewey numbers are assigned separately by
    `repro.xmltree.jdewey.JDeweyEncoder` because the encoder owns gap
    policy and re-encoding state.
    """

    def __init__(self, root: Node):
        self.root = root
        self.nodes: List[Node] = []
        self._by_dewey: Dict[Dewey, Node] = {}
        self._frozen = False

    def freeze(self) -> "XMLTree":
        """Assign Dewey ids and index the nodes.  Idempotent.

        Iterative so that pathologically deep documents (a chain of
        thousands of elements) do not hit the recursion limit.
        """
        self.nodes = []
        self._by_dewey = {}
        stack = [(self.root, (1,))]
        while stack:
            node, dewey = stack.pop()
            node.dewey = dewey
            self.nodes.append(node)
            self._by_dewey[dewey] = node
            for i in range(len(node.children), 0, -1):
                stack.append((node.children[i - 1], dewey + (i,)))
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def depth(self) -> int:
        """Maximum level over all nodes (root = 1)."""
        return max(len(n.dewey) for n in self.nodes)

    def node_by_dewey(self, dewey: Sequence[int]) -> Node:
        """Look up a node by its Dewey id.  Raises KeyError if absent."""
        return self._by_dewey[tuple(dewey)]

    def iter_document_order(self) -> Iterator[Node]:
        return iter(self.nodes)

    def find_all(self, predicate: Callable[[Node], bool]) -> List[Node]:
        """All nodes satisfying `predicate`, in document order."""
        return [n for n in self.nodes if predicate(n)]

    def to_xml(self, indent: bool = False) -> str:
        """Serialize back to XML text (used by tests and examples)."""
        return self.root.to_xml(indent)


def _serialize_node(node: Node, parts: List[str], depth: int,
                    indent: bool) -> None:
    pad = "  " * depth if indent else ""
    nl = "\n" if indent else ""
    attrs = "".join(
        f' {k}="{_escape_attr(v)}"' for k, v in node.attributes.items())
    if not node.children and not node.text:
        parts.append(f"{pad}<{node.tag}{attrs}/>{nl}")
        return
    parts.append(f"{pad}<{node.tag}{attrs}>")
    if node.text:
        parts.append(_escape_text(node.text))
    if node.children:
        parts.append(nl)
        for child in node.children:
            _serialize_node(child, parts, depth + 1, indent)
        parts.append(pad)
    parts.append(f"</{node.tag}>{nl}")


def _escape_text(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _escape_attr(text: str) -> str:
    return _escape_text(text).replace('"', "&quot;")


def build_tree(spec) -> XMLTree:
    """Build a frozen tree from a nested tuple spec.

    The spec format is ``(tag, text, [children...])`` where ``text`` and
    the child list are optional::

        build_tree(("bib", [("paper", "XML data", [])]))

    Handy for tests and documentation examples.
    """
    root = _node_from_spec(spec)
    return XMLTree(root).freeze()


def _node_from_spec(spec) -> Node:
    if isinstance(spec, str):
        return Node(spec)
    tag = spec[0]
    text = ""
    children: Sequence = ()
    for part in spec[1:]:
        if isinstance(part, str):
            text = part
        else:
            children = part
    node = Node(tag, text)
    for child_spec in children:
        node.add_child(_node_from_spec(child_spec))
    return node
