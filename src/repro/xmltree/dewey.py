"""Dewey id utilities.

Dewey ids are the classic XML node labels used by the stack-based and
index-based baselines: the root is ``(1,)`` and a node's id is its
parent's id extended with the node's 1-based sibling ordinal.  Ancestor /
descendant tests and LCA computation reduce to prefix operations, and
document order equals lexicographic order of the ids.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

Dewey = Tuple[int, ...]


def common_prefix(d1: Sequence[int], d2: Sequence[int]) -> Dewey:
    """Longest common prefix of two Dewey ids (= the LCA's Dewey id)."""
    limit = min(len(d1), len(d2))
    i = 0
    while i < limit and d1[i] == d2[i]:
        i += 1
    return tuple(d1[:i])


def lca(*deweys: Sequence[int]) -> Dewey:
    """Dewey id of the LCA of the given nodes.

    With ids from one tree the result is never empty (all ids share the
    root component).
    """
    if not deweys:
        raise ValueError("lca() needs at least one Dewey id")
    result: Sequence[int] = deweys[0]
    for d in deweys[1:]:
        result = common_prefix(result, d)
    return tuple(result)


def is_prefix(prefix: Sequence[int], dewey: Sequence[int]) -> bool:
    """True iff `prefix` is a (non-strict) prefix of `dewey`."""
    return len(prefix) <= len(dewey) and tuple(dewey[: len(prefix)]) == tuple(prefix)


def is_ancestor(d1: Sequence[int], d2: Sequence[int]) -> bool:
    """True iff the node with id `d1` is a *proper* ancestor of `d2`."""
    return len(d1) < len(d2) and is_prefix(d1, d2)


def is_ancestor_or_self(d1: Sequence[int], d2: Sequence[int]) -> bool:
    return is_prefix(d1, d2)


def compare(d1: Sequence[int], d2: Sequence[int]) -> int:
    """Document-order comparison: -1, 0 or 1.

    A node precedes its descendants (prefix sorts first), matching both
    document order and tuple comparison in Python.
    """
    t1, t2 = tuple(d1), tuple(d2)
    if t1 == t2:
        return 0
    return -1 if t1 < t2 else 1


def subtree_upper_bound(dewey: Sequence[int]) -> Dewey:
    """Smallest Dewey id greater than every id in `dewey`'s subtree.

    Useful for binary-searching the contiguous descendant range in a
    document-ordered list: descendants of ``d`` occupy
    ``[d, subtree_upper_bound(d))``.
    """
    if not dewey:
        raise ValueError("empty Dewey id")
    return tuple(dewey[:-1]) + (dewey[-1] + 1,)


def format_dewey(dewey: Sequence[int]) -> str:
    """Render as the dotted form used in the paper, e.g. ``1.1.2``."""
    return ".".join(map(str, dewey))


def parse_dewey(text: str) -> Dewey:
    """Inverse of `format_dewey`."""
    if not text:
        raise ValueError("empty Dewey string")
    return tuple(int(part) for part in text.split("."))


def encoded_size_bytes(dewey: Sequence[int]) -> int:
    """Bytes needed to store the id with varint components.

    Models the storage cost of a Dewey id in an inverted list: each
    component is a LEB128-style varint (7 payload bits per byte).
    """
    total = 0
    for component in dewey:
        total += varint_size(component)
    return total


def varint_size(value: int) -> int:
    """Size in bytes of an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varints are unsigned")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


class DeweyRange:
    """The contiguous document-order range covered by a subtree.

    ``DeweyRange(d)`` matches exactly the ids with prefix ``d``; the class
    provides the comparison keys for `bisect` over sorted Dewey lists.
    """

    __slots__ = ("low", "high")

    def __init__(self, dewey: Sequence[int]):
        self.low: Dewey = tuple(dewey)
        self.high: Dewey = subtree_upper_bound(dewey)

    def __contains__(self, dewey: Sequence[int]) -> bool:
        return self.low <= tuple(dewey) < self.high

    def slice_of(self, sorted_deweys: List[Dewey]) -> Tuple[int, int]:
        """Index range [lo, hi) of this subtree within a sorted list."""
        import bisect

        lo = bisect.bisect_left(sorted_deweys, self.low)
        hi = bisect.bisect_left(sorted_deweys, self.high)
        return lo, hi


def closest_in_list(sorted_deweys: List[Dewey], target: Sequence[int]
                    ) -> Tuple[Optional[Dewey], Optional[Dewey]]:
    """Nearest neighbours of `target` in a document-ordered Dewey list.

    Returns ``(left, right)`` where ``left`` is the rightmost id <= target
    and ``right`` the leftmost id >= target (either may be None at the
    list boundary).  This is the `lm`/`rm` primitive of the index-based
    baseline [Xu & Papakonstantinou 2005].
    """
    import bisect

    t = tuple(target)
    pos = bisect.bisect_left(sorted_deweys, t)
    if pos < len(sorted_deweys) and sorted_deweys[pos] == t:
        return t, t
    left = sorted_deweys[pos - 1] if pos > 0 else None
    right = sorted_deweys[pos] if pos < len(sorted_deweys) else None
    return left, right
