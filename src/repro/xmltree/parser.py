"""A small, dependency-free XML parser.

The paper parses DBLP/XMark with Xerces; parsing is a substrate, not a
measured component, so this module implements the subset of XML the
reproduction needs: elements, attributes, character data, comments,
CDATA, processing instructions, and the five predefined entities.
Namespaces are treated lexically (prefixes kept in tag names), DTDs are
skipped.

`parse_xml` returns a frozen `XMLTree`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .tree import Node, XMLTree


class XMLParseError(ValueError):
    """Raised on malformed input, with a character offset."""

    def __init__(self, message: str, pos: int):
        super().__init__(f"{message} (at offset {pos})")
        self.pos = pos


_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}


def _decode_entities(text: str, base_pos: int) -> str:
    if "&" not in text:
        return text
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XMLParseError("unterminated entity reference", base_pos + i)
        name = text[i + 1: end]
        if name.startswith("#"):
            try:
                if name[1:2] in ("x", "X"):
                    code = int(name[2:], 16)
                else:
                    code = int(name[1:])
                out.append(chr(code))
            except (ValueError, OverflowError):
                raise XMLParseError(
                    f"invalid character reference &{name};", base_pos + i)
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLParseError(f"unknown entity &{name};", base_pos + i)
        i = end + 1
    return "".join(out)


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.n = len(text)

    def fail(self, message: str) -> None:
        raise XMLParseError(message, self.pos)

    def skip_ws(self) -> None:
        while self.pos < self.n and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def skip_prolog(self) -> None:
        """Skip the XML declaration, DTD, comments and PIs before the root."""
        while True:
            self.skip_ws()
            if self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos)
                if end == -1:
                    self.fail("unterminated processing instruction")
                self.pos = end + 2
            elif self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end == -1:
                    self.fail("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<!DOCTYPE", self.pos):
                self._skip_doctype()
            else:
                return

    def _skip_doctype(self) -> None:
        depth = 0
        while self.pos < self.n:
            ch = self.text[self.pos]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                self.pos += 1
                return
            self.pos += 1
        self.fail("unterminated DOCTYPE")

    def parse_name(self) -> str:
        start = self.pos
        while self.pos < self.n and self.text[self.pos] not in " \t\r\n/>=":
            self.pos += 1
        if self.pos == start:
            self.fail("expected a name")
        return self.text[start: self.pos]

    def parse_attributes(self) -> Dict[str, str]:
        attrs: Dict[str, str] = {}
        while True:
            self.skip_ws()
            if self.pos >= self.n or self.text[self.pos] in "/>":
                return attrs
            name = self.parse_name()
            self.skip_ws()
            if self.pos >= self.n or self.text[self.pos] != "=":
                self.fail(f"expected '=' after attribute {name!r}")
            self.pos += 1
            self.skip_ws()
            quote = self.text[self.pos] if self.pos < self.n else ""
            if quote not in "'\"":
                self.fail("expected a quoted attribute value")
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end == -1:
                self.fail("unterminated attribute value")
            attrs[name] = _decode_entities(self.text[self.pos: end], self.pos)
            self.pos = end + 1

    def parse_element(self) -> Node:
        if self.text[self.pos] != "<":
            self.fail("expected '<'")
        self.pos += 1
        tag = self.parse_name()
        attrs = self.parse_attributes()
        node = Node(tag, attributes=attrs)
        self.skip_ws()
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            return node
        if self.pos >= self.n or self.text[self.pos] != ">":
            self.fail(f"malformed start tag <{tag}>")
        self.pos += 1
        text_parts: List[str] = []
        while True:
            if self.pos >= self.n:
                self.fail(f"unexpected end of input inside <{tag}>")
            if self.text.startswith("</", self.pos):
                self.pos += 2
                close = self.parse_name()
                if close != tag:
                    self.fail(f"mismatched close tag </{close}> for <{tag}>")
                self.skip_ws()
                if self.pos >= self.n or self.text[self.pos] != ">":
                    self.fail("malformed close tag")
                self.pos += 1
                node.text = _normalize_ws("".join(text_parts))
                return node
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end == -1:
                    self.fail("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<![CDATA[", self.pos):
                end = self.text.find("]]>", self.pos)
                if end == -1:
                    self.fail("unterminated CDATA section")
                text_parts.append(self.text[self.pos + 9: end])
                self.pos = end + 3
            elif self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos)
                if end == -1:
                    self.fail("unterminated processing instruction")
                self.pos = end + 2
            elif self.text[self.pos] == "<":
                node.add_child(self.parse_element())
            else:
                end = self.text.find("<", self.pos)
                if end == -1:
                    self.fail(f"unexpected end of input inside <{tag}>")
                text_parts.append(
                    _decode_entities(self.text[self.pos: end], self.pos))
                self.pos = end


def _normalize_ws(text: str) -> str:
    return " ".join(text.split())


def parse_xml(text: str) -> XMLTree:
    """Parse XML text into a frozen `XMLTree`.

    Raises `XMLParseError` on malformed input or trailing garbage.
    """
    parser = _Parser(text)
    parser.skip_prolog()
    if parser.pos >= parser.n or parser.text[parser.pos] != "<":
        parser.fail("expected the root element")
    root = parser.parse_element()
    parser.skip_prolog()
    parser.skip_ws()
    if parser.pos != parser.n:
        parser.fail("trailing content after the root element")
    return XMLTree(root).freeze()


def parse_xml_file(path: str) -> XMLTree:
    """Parse an XML file (UTF-8) into a frozen `XMLTree`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_xml(handle.read())
