"""Workload capture: record what a serving daemon actually answered.

``repro serve --capture PATH`` writes a versioned JSONL workload: one
header line (schema, wall-clock start, daemon shape) followed by one
line per successfully answered query -- terms, semantics, ``k``, the
arrival offset from capture start, the response's **result digest**
(an order-sensitive SHA-1 over the canonical result payload) and the
query's merged `ResourceAccount` breakdown.

The file is the contract between capture and `repro replay`: replay
re-drives the same queries against any database/config and diffs the
digests (did the answers change?), the latencies (did it get slower?)
and the resource accounts (did it touch more data?).  The digest is
computed over the same payload shape the HTTP body carries, so a
capture taken from the daemon and a replay evaluated in-process agree
byte-for-byte when the answers agree.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Bumped when the entry shape changes; replay refuses to guess at an
#: unknown schema instead of silently misreading offsets or digests.
WORKLOAD_SCHEMA = "repro.workload/v1"


def result_digest(results: Sequence[Dict[str, Any]]) -> str:
    """Order-sensitive digest of a result payload list.

    `results` is the wire shape (``{dewey, tag, level, score,
    witnesses}`` dicts).  Canonical JSON (sorted keys, tight
    separators) makes the digest independent of dict insertion order;
    floats serialize via ``repr`` so identical scores digest
    identically across runs.
    """
    canonical = json.dumps(list(results), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()


class WorkloadCapture:
    """Append-only JSONL workload writer (the ``--capture`` sink).

    The daemon's event loop calls `record` inline on the 200 path;
    writes are line-buffered appends behind a lock (the daemon is
    single-threaded, but replay's open-loop driver shares the class).
    The arrival clock starts at the first recorded query, so offsets
    are workload-relative and a capture can be replayed at any time.
    """

    def __init__(self, path: str, meta: Optional[Dict[str, Any]] = None):
        self.path = path
        self.recorded = 0
        self._lock = threading.Lock()
        self._t0: Optional[float] = None
        self._handle = open(path, "w", encoding="utf-8")
        header = {"schema": WORKLOAD_SCHEMA, "created": time.time()}
        if meta:
            header["meta"] = dict(meta)
        self._handle.write(json.dumps(header) + "\n")
        self._handle.flush()

    def record(self, endpoint: str, terms: Sequence[str], semantics: str,
               k: Optional[int], results: Sequence[Dict[str, Any]],
               elapsed_ms: float, cached: bool = False,
               partial: bool = False,
               account: Optional[Dict[str, Any]] = None) -> None:
        """One answered query.  Partial/degraded answers are recorded
        (they happened) but flagged, so replay can skip digest
        comparison for them -- a deadline partial is not reproducible
        by construction."""
        now = time.perf_counter()
        with self._lock:
            if self._t0 is None:
                self._t0 = now
            entry = {
                "offset_ms": (now - self._t0) * 1000.0,
                "endpoint": endpoint,
                "terms": list(terms),
                "semantics": semantics,
                "k": k,
                "digest": result_digest(results),
                "result_count": len(results),
                "elapsed_ms": elapsed_ms,
                "cached": bool(cached),
                "partial": bool(partial),
            }
            if account:
                entry["account"] = account
            self._handle.write(json.dumps(entry) + "\n")
            self._handle.flush()
            self.recorded += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


def read_workload(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load a captured workload: ``(header, entries)``.

    Validates the schema line; tolerates a truncated final line (the
    daemon may have been killed mid-write) by dropping it.
    """
    header: Optional[Dict[str, Any]] = None
    entries: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write
            if header is None:
                if record.get("schema") != WORKLOAD_SCHEMA:
                    raise ValueError(
                        f"{path!r} is not a {WORKLOAD_SCHEMA} workload "
                        f"(header schema: {record.get('schema')!r})")
                header = record
            else:
                entries.append(record)
    if header is None:
        raise ValueError(f"{path!r} is empty; expected a "
                         f"{WORKLOAD_SCHEMA} header line")
    return header, entries
