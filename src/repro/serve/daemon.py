"""Long-lived sharded query daemon (`repro serve`, `docs/SERVING.md`).

A single-threaded asyncio front-end owns the accept loop, admission
control and the scatter-gather merge; query evaluation runs either
in-process (``workers=0``) or on per-shard fork/copy-on-write process
pools (``workers=W``), the same forking discipline as
`XMLDatabase.batch_executor`: the parent installs the shard databases
in a module global *before* the pools fork, so workers inherit index
structures -- including format-v3 mmap'd columns -- without any
serialization, and a pool's workers only ever touch their own shard
(warm per-process block caches stay shard-affine).

Admission control is explicit and typed (HTTP endpoints below):

* a **bounded accept queue** -- requests beyond ``max_concurrency``
  wait; once more than ``queue_limit`` are waiting, new arrivals are
  rejected immediately with 429 / ``queue_full`` instead of queueing
  unboundedly;
* **deadline propagation** -- the request budget starts at *arrival*
  (client ``timeout_ms`` or the configured default), so time spent
  waiting for an execution slot is charged against it; what remains is
  re-issued to every shard via `Deadline.to_wire`, and a budget that
  dies in the queue is rejected as 504 / ``deadline`` without running
  anything;
* the ``partial`` policy returns consistent merged partials: every
  shard's unreturned results score at most its reported bound, so the
  merge keeps only results above the largest bound and reports that
  bound.

Endpoints: ``GET /search`` (complete, document order), ``GET /topk``
(best-first top-K), ``GET /healthz``, ``GET /stats``, ``GET /metrics``
(Prometheus text), ``POST /cache/clear``.  Query parameters:
``q`` (required), ``semantics`` (elca|slca), ``k`` (topk only),
``timeout_ms``, ``partial`` (0|1).
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
import urllib.parse
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.base import ELCA, SEMANTICS, SearchResult
from ..cache import QueryCache, result_key
from ..obs.metrics import MetricsRegistry, get_registry
from ..reliability.deadline import Deadline
from ..reliability.errors import DeadlineExceeded
from .merge import ShardedDatabase

#: Shard id -> per-shard `XMLDatabase`, inherited copy-on-write by the
#: forked pool workers.  Populated completely before any pool is
#: created -- fork happens lazily on first submit, and a worker that
#: forked before the dict was full would serve the wrong world.
_SERVE_DBS: Dict[int, object] = {}


class AdmissionError(Exception):
    """Typed rejection: carries the HTTP status and machine-readable
    reason the client sees (429 ``queue_full`` / 504 ``deadline``)."""

    def __init__(self, status: int, reason: str, message: str):
        super().__init__(message)
        self.status = status
        self.reason = reason


def _light(results: Sequence[SearchResult]) -> List[Tuple]:
    """Results as `(level, jdewey-number, score, witnesses)` tuples --
    what crosses the process boundary instead of node graphs."""
    return [(r.node.level, r.node.jdewey[-1], r.score,
             tuple(r.witness_scores)) for r in results]


def _serve_shard_topk(payload):
    """Pool entry: one shard's slice of a top-K scatter.

    Evaluates ``k+1`` shard-locally (one slot covers the dropped
    shard-local root) and ships light tuples plus the stream outcome;
    exceptions return as values so one shard cannot lose the gather.
    """
    sid, terms, semantics, k, wire = payload
    db = _SERVE_DBS.get(sid)
    if db is None:  # pragma: no cover - misuse guard
        return sid, None, False, None, 0.0, RuntimeError(
            "worker has no shard database; pools must be created by "
            "ServeDaemon after _SERVE_DBS is installed")
    deadline = Deadline.from_wire(wire) if wire else None
    start = time.perf_counter()
    try:
        top = db._topk_result(terms, semantics, "topk-join", k + 1,
                              deadline=deadline)
        light = _light(r for r in top.results if r.level > 1)
        elapsed = (time.perf_counter() - start) * 1000.0
        bound = top.bound
        if top.partial and bound is None:
            bound = float("inf")
        return sid, light, top.partial, bound, elapsed, None
    except Exception as exc:  # noqa: BLE001 - shipped back as a value
        import pickle

        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        return sid, None, False, None, (time.perf_counter() - start) * 1000.0, exc


def _serve_shard_search(payload):
    """Pool entry: one shard's slice of a complete-evaluation scatter."""
    sid, terms, semantics, wire = payload
    db = _SERVE_DBS.get(sid)
    if db is None:  # pragma: no cover - misuse guard
        return sid, None, False, None, 0.0, RuntimeError(
            "worker has no shard database")
    deadline = Deadline.from_wire(wire) if wire else None
    start = time.perf_counter()
    try:
        results, stats = db._complete_results(terms, semantics, "join",
                                              deadline=deadline)
        light = _light(r for r in results if r.level > 1)
        elapsed = (time.perf_counter() - start) * 1000.0
        return sid, light, stats.partial, None, elapsed, None
    except Exception as exc:  # noqa: BLE001
        import pickle

        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        return sid, None, False, None, (time.perf_counter() - start) * 1000.0, exc


class ServeDaemon:
    """The serving front-end: admission control + scatter-gather merge.

    ``workers=0`` evaluates in-process on a thread off the event loop
    (the right default on small machines -- no IPC tax); ``workers>=1``
    creates one fork-context pool of that width per shard.  Either way
    the event loop itself never evaluates a query: it only admits,
    dispatches, merges and serializes.
    """

    def __init__(self, db: ShardedDatabase, host: str = "127.0.0.1",
                 port: int = 8388, workers: int = 0,
                 max_concurrency: int = 8, queue_limit: int = 64,
                 default_timeout_ms: Optional[float] = None,
                 default_partial: bool = False,
                 result_cache_size: int = 1024,
                 metrics: Optional[MetricsRegistry] = None):
        self.db = db
        self.host = host
        self.port = port
        self.workers = int(workers)
        self.max_concurrency = max(1, int(max_concurrency))
        self.queue_limit = max(0, int(queue_limit))
        self.default_timeout_ms = default_timeout_ms
        self.default_partial = default_partial
        self.metrics = metrics if metrics is not None else get_registry()
        self.cache = QueryCache(0, result_cache_size)
        self._pools: List = []
        self._sem: Optional[asyncio.Semaphore] = None
        self._waiting = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._started = time.perf_counter()
        # instruments (created eagerly so /metrics shows them at zero)
        reg = self.metrics
        self._queue_depth = reg.gauge("repro_serve_queue_depth")
        self._inflight = reg.gauge("repro_serve_inflight")
        self._queue_wait = reg.histogram("repro_serve_queue_wait_ms")
        self._latency = reg.histogram("repro_serve_latency_ms")
        for reason in ("queue_full", "deadline"):
            reg.counter("repro_serve_rejects_total", {"reason": reason})
        for outcome in ("ok", "partial", "error"):
            reg.counter("repro_serve_requests_total", {"outcome": outcome})
        for sid in range(db.n_shards):
            reg.histogram("repro_serve_shard_ms", {"shard": str(sid)})

    # ------------------------------------------------------------------
    # pools
    # ------------------------------------------------------------------

    def _start_pools(self) -> None:
        if self.workers < 1:
            return
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self.workers = 0
            return
        global _SERVE_DBS
        _SERVE_DBS = {sid: shard for sid, shard
                      in enumerate(self.db.shards)}
        self._pools = [ProcessPoolExecutor(max_workers=self.workers,
                                           mp_context=ctx)
                       for _ in range(self.db.n_shards)]

    def _stop_pools(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=False, cancel_futures=True)
        self._pools = []

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    async def _admit(self, deadline: Optional[Deadline]):
        """Pass admission control or raise a typed `AdmissionError`.

        Returns the queue wait in ms; the caller must release
        ``self._sem`` when the query finishes.
        """
        if self._waiting >= self.queue_limit:
            self.metrics.counter("repro_serve_rejects_total",
                                 {"reason": "queue_full"}).inc()
            raise AdmissionError(
                429, "queue_full",
                f"accept queue is full ({self._waiting} waiting, "
                f"limit {self.queue_limit}); retry later")
        waited = time.perf_counter()
        self._waiting += 1
        self._queue_depth.set(self._waiting)
        try:
            timeout_s = None
            if deadline is not None and deadline.budget_ms is not None:
                timeout_s = max(0.0, deadline.remaining_ms() / 1000.0)
            try:
                if timeout_s is None:
                    await self._sem.acquire()
                else:
                    await asyncio.wait_for(self._sem.acquire(), timeout_s)
            except asyncio.TimeoutError:
                self.metrics.counter("repro_serve_rejects_total",
                                     {"reason": "deadline"}).inc()
                raise AdmissionError(
                    504, "deadline",
                    "budget expired while waiting for an execution slot")
        finally:
            self._waiting -= 1
            self._queue_depth.set(self._waiting)
        wait_ms = (time.perf_counter() - waited) * 1000.0
        self._queue_wait.observe(wait_ms)
        if deadline is not None and deadline.expired():
            self._sem.release()
            self.metrics.counter("repro_serve_rejects_total",
                                 {"reason": "deadline"}).inc()
            raise AdmissionError(
                504, "deadline",
                "budget expired while waiting for an execution slot")
        return wait_ms

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def _rehydrate(self, light: Sequence[Tuple]) -> List[SearchResult]:
        node_at = self.db.shards[0].columnar_index.node_at
        return [SearchResult(node_at(level, number), level, score,
                             tuple(witnesses))
                for level, number, score, witnesses in light]

    async def _scatter(self, fn, payloads) -> List[Tuple]:
        """Run one pool task per qualifying shard, concurrently."""
        loop = asyncio.get_running_loop()
        futures = [loop.run_in_executor(self._pools[payload[0]], fn,
                                        payload)
                   for payload in payloads]
        outcomes = await asyncio.gather(*futures)
        for sid, _light, _partial, _bound, elapsed, exc in outcomes:
            self.metrics.histogram("repro_serve_shard_ms",
                                   {"shard": str(sid)}).observe(elapsed)
            if exc is not None:
                raise exc
        return outcomes

    async def _eval_topk(self, terms: List[str], semantics: str, k: int,
                         deadline: Optional[Deadline]) -> dict:
        db = self.db
        if self.workers < 1:
            top = await asyncio.get_running_loop().run_in_executor(
                None, lambda: db.search_topk(terms, k, semantics,
                                             deadline=deadline))
            return self._payload(top.results, top.partial, top.bound)
        if not db._covered(terms):
            return self._payload([], False, None)
        wire = deadline.to_wire() if deadline is not None else None
        shard_ids = [sid for sid, shard in enumerate(db.shards)
                     if all(t in shard.columnar_index for t in terms)]
        outcomes = await self._scatter(
            _serve_shard_topk,
            [(sid, terms, semantics, k, wire) for sid in shard_ids])
        merged: List[SearchResult] = []
        partial, bound = False, None
        for _sid, light, shard_partial, shard_bound, _ms, _exc in outcomes:
            merged.extend(self._rehydrate(light))
            if shard_partial:
                partial = True
                if bound is None or shard_bound > bound:
                    bound = shard_bound
        root = db._root_result(terms, semantics)
        if root is not None:
            merged.append(root)
        merged.sort(key=lambda r: (-r.score, r.node.dewey))
        if partial:
            merged = [r for r in merged if r.score > bound]
        return self._payload(merged[:k], partial, bound)

    async def _eval_search(self, terms: List[str], semantics: str,
                           deadline: Optional[Deadline]) -> dict:
        db = self.db
        if self.workers < 1:
            results, stats = await asyncio.get_running_loop().run_in_executor(
                None, lambda: db.search(terms, semantics,
                                        deadline=deadline,
                                        with_stats=True))
            return self._payload(results, stats.partial, None)
        if not db._covered(terms):
            return self._payload([], False, None)
        wire = deadline.to_wire() if deadline is not None else None
        shard_ids = [sid for sid, shard in enumerate(db.shards)
                     if all(t in shard.columnar_index for t in terms)]
        outcomes = await self._scatter(
            _serve_shard_search,
            [(sid, terms, semantics, wire) for sid in shard_ids])
        merged: List[SearchResult] = []
        partial = False
        for _sid, light, shard_partial, _bound, _ms, _exc in outcomes:
            merged.extend(self._rehydrate(light))
            partial = partial or shard_partial
        if deadline is not None and deadline.expired():
            partial = True
        else:
            root = db._root_result(terms, semantics)
            if root is not None:
                merged.append(root)
        merged.sort(key=lambda r: r.node.dewey)
        return self._payload(merged, partial, None)

    def _payload(self, results: Sequence[SearchResult], partial: bool,
                 bound: Optional[float]) -> dict:
        return {
            "results": [{
                "dewey": list(r.node.dewey),
                "tag": r.node.tag,
                "level": r.level,
                "score": r.score,
                "witnesses": list(r.witness_scores),
            } for r in results],
            "partial": bool(partial),
            "bound": (None if bound is None or bound == float("inf")
                      else bound),
        }

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_query(self, endpoint: str, params: dict) -> Tuple[int, dict]:
        query = params.get("q", "").strip()
        if not query:
            return 400, {"error": {"type": "bad_request",
                                   "message": "missing ?q="}}
        semantics = params.get("semantics", ELCA)
        if semantics not in SEMANTICS:
            return 400, {"error": {"type": "bad_request",
                                   "message": f"unknown semantics "
                                              f"{semantics!r}"}}
        k = None
        if endpoint == "topk":
            try:
                k = int(params.get("k", "10"))
            except ValueError:
                return 400, {"error": {"type": "bad_request",
                                       "message": "k must be an integer"}}
            if k < 1:
                return 400, {"error": {"type": "bad_request",
                                       "message": "k must be >= 1"}}
        timeout_ms = self.default_timeout_ms
        if "timeout_ms" in params:
            try:
                timeout_ms = float(params["timeout_ms"])
            except ValueError:
                return 400, {"error": {"type": "bad_request",
                                       "message": "timeout_ms must be "
                                                  "a number"}}
        partial_ok = self.default_partial
        if "partial" in params:
            partial_ok = params["partial"] not in ("0", "false", "")
        # The budget starts *now*, at admission -- queue wait spends it.
        deadline = Deadline.coerce(None, timeout_ms,
                                   "partial" if partial_ok else "raise")
        arrival = time.perf_counter()
        terms = self.db._terms(query)
        cache_key = result_key(terms, semantics,
                               "serve-" + endpoint, k)
        cached = self.cache.get_results(cache_key)
        if cached is not None:
            # `get_results` hands back a list copy; the single element
            # is the cached response body.
            body = dict(cached[0])
            body.update(terms=terms, semantics=semantics, cached=True,
                        elapsed_ms=(time.perf_counter() - arrival) * 1000.0)
            self.metrics.counter("repro_serve_requests_total",
                                 {"outcome": "ok"}).inc()
            return 200, body
        try:
            await self._admit(deadline)
        except AdmissionError as exc:
            if exc.reason == "deadline" and partial_ok:
                # The partial policy promises degraded answers instead
                # of failure; a budget spent entirely in the queue has
                # the degenerate consistent partial: nothing, no bound.
                self.metrics.counter("repro_serve_requests_total",
                                     {"outcome": "partial"}).inc()
                body = self._payload([], True, None)
                body.update(terms=terms, semantics=semantics,
                            cached=False,
                            elapsed_ms=(time.perf_counter() - arrival)
                            * 1000.0)
                return 200, body
            return exc.status, {"error": {"type": exc.reason,
                                          "message": str(exc)}}
        self._inflight.inc()
        try:
            if endpoint == "topk":
                body = await self._eval_topk(terms, semantics, k, deadline)
            else:
                body = await self._eval_search(terms, semantics, deadline)
        except DeadlineExceeded as exc:
            self.metrics.counter("repro_serve_requests_total",
                                 {"outcome": "error"}).inc()
            return 504, {"error": {"type": "deadline", "message": str(exc)}}
        except Exception as exc:  # noqa: BLE001 - typed 500
            self.metrics.counter("repro_serve_requests_total",
                                 {"outcome": "error"}).inc()
            return 500, {"error": {"type": "internal",
                                   "message": f"{type(exc).__name__}: "
                                              f"{exc}"}}
        finally:
            self._inflight.dec()
            self._sem.release()
        elapsed_ms = (time.perf_counter() - arrival) * 1000.0
        self._latency.observe(elapsed_ms)
        outcome = "partial" if body["partial"] else "ok"
        self.metrics.counter("repro_serve_requests_total",
                             {"outcome": outcome}).inc()
        if not body["partial"]:
            self.cache.put_results(cache_key, [dict(body)])
        body.update(terms=terms, semantics=semantics, cached=False,
                    elapsed_ms=elapsed_ms)
        return 200, body

    async def _dispatch(self, method: str, path: str) -> Tuple[int, str, str]:
        """Route one request; returns (status, content_type, body)."""
        parsed = urllib.parse.urlsplit(path)
        params = {key: values[-1] for key, values
                  in urllib.parse.parse_qs(parsed.query).items()}
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            return 200, "text/plain; version=0.0.4", \
                self.metrics.render_prometheus()
        if route == "/healthz":
            return 200, "application/json", json.dumps(
                {"status": "ok", "shards": self.db.n_shards,
                 "workers": self.workers})
        if route == "/stats":
            return 200, "application/json", json.dumps({
                "shards": self.db.n_shards,
                "workers": self.workers,
                "manifest": self.db.manifest,
                "uptime_s": time.perf_counter() - self._started,
                "max_concurrency": self.max_concurrency,
                "queue_limit": self.queue_limit,
                "cache": self.cache.stats(),
            })
        if route == "/cache/clear":
            if method != "POST":
                return 405, "application/json", json.dumps(
                    {"error": {"type": "method_not_allowed",
                               "message": "POST /cache/clear"}})
            self.cache.clear()
            self.db.clear_caches()
            return 200, "application/json", json.dumps({"cleared": True})
        if route in ("/search", "/topk"):
            status, body = await self._handle_query(route[1:], params)
            return status, "application/json", json.dumps(body)
        return 404, "application/json", json.dumps(
            {"error": {"type": "not_found", "message": route}})

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    raw = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                except asyncio.LimitOverrunError:
                    return
                head = raw.decode("latin-1", "replace")
                request_line, *header_lines = head.split("\r\n")
                parts = request_line.split(" ")
                if len(parts) < 2:
                    return
                method, path = parts[0], parts[1]
                headers = {}
                for line in header_lines:
                    if ":" in line:
                        name, _sep, value = line.partition(":")
                        headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or 0)
                if length:
                    await reader.readexactly(length)
                status, ctype, body = await self._dispatch(method, path)
                close = headers.get("connection", "").lower() == "close"
                payload = body.encode("utf-8")
                reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                          405: "Method Not Allowed",
                          429: "Too Many Requests", 500: "Internal "
                          "Server Error", 504: "Gateway Timeout"}.get(
                              status, "Status")
                writer.write(
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: {'close' if close else 'keep-alive'}"
                    "\r\n\r\n".encode("latin-1") + payload)
                await writer.drain()
                if close:
                    return
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - teardown race
                pass

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._sem = asyncio.Semaphore(self.max_concurrency)
        self._shutdown = asyncio.Event()
        self._start_pools()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        if self.port == 0:
            self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._stop_pools()
        self._shutdown.set()

    async def run(self, ready=None) -> None:
        """Start, announce readiness and serve until SIGTERM/SIGINT."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.stop()))
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        if ready is not None:
            ready(self.host, self.port)
        await self._shutdown.wait()


def serve(db: ShardedDatabase, **kwargs) -> None:
    """Blocking convenience wrapper: run a `ServeDaemon` until killed."""

    def announce(host: str, port: int) -> None:
        print(f"serving {db.n_shards} shard(s) on http://{host}:{port} "
              f"(workers={kwargs.get('workers', 0)})", flush=True)

    daemon = ServeDaemon(db, **kwargs)
    asyncio.run(daemon.run(ready=announce))
