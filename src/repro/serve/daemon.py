"""Long-lived sharded query daemon (`repro serve`, `docs/SERVING.md`).

A single-threaded asyncio front-end owns the accept loop, admission
control and the scatter-gather merge; query evaluation runs either
in-process (``workers=0``) or on per-shard fork/copy-on-write process
pools (``workers=W``), the same forking discipline as
`XMLDatabase.batch_executor`: the parent installs the shard databases
in a module global *before* the pools fork, so workers inherit index
structures -- including format-v3 mmap'd columns -- without any
serialization, and a pool's workers only ever touch their own shard
(warm per-process block caches stay shard-affine).

Admission control is explicit and typed (HTTP endpoints below):

* a **bounded accept queue** -- requests beyond ``max_concurrency``
  wait; once more than ``queue_limit`` are waiting, new arrivals are
  rejected immediately with 429 / ``queue_full`` instead of queueing
  unboundedly;
* **deadline propagation** -- the request budget starts at *arrival*
  (client ``timeout_ms`` or the configured default), so time spent
  waiting for an execution slot is charged against it; what remains is
  re-issued to every shard via `Deadline.to_wire`, and a budget that
  dies in the queue is rejected as 504 / ``deadline`` without running
  anything;
* the ``partial`` policy returns consistent merged partials: every
  shard's unreturned results score at most its reported bound, so the
  merge keeps only results above the largest bound and reports that
  bound.

The scatter is wrapped in a **self-healing layer** (see
``docs/RELIABILITY.md`` "Self-healing serving"):

* a `ShardSupervisor` owns the pools; a worker death
  (`BrokenProcessPool`) quarantines the shard, rebuilds its pool off
  the critical path, and the request degrades to the healthy shards;
* one `CircuitBreaker` per shard skips a sick shard outright
  (closed/open/half-open, consecutive-failure + error-rate trips,
  seeded-jitter backoff probes) instead of burning the deadline on it;
* transient shard failures (worker crash, injected fault, corrupt
  payload) get bounded **in-deadline retries** with
  `RetryPolicy`-shaped backoff, and optionally a **hedged** duplicate
  call after ``hedge_ms`` for tail stragglers -- every attempt
  re-issues `Deadline.to_wire`, so backoff and hedging debit the
  budget exactly like queue wait does;
* a degraded response is an honest partial: skipped shards contribute
  a conservative ``bound`` (max possible score of any result they
  could hold), the merge keeps only results above it, and the body is
  marked ``degraded: true``.

Endpoints: ``GET /search`` (complete, document order), ``GET /topk``
(best-first top-K), ``GET /healthz`` (per-shard liveness; 503 only
when *all* shards are down), ``GET /stats``, ``GET /metrics``
(Prometheus text), ``POST /cache/clear``.  Query parameters:
``q`` (required), ``semantics`` (elca|slca), ``k`` (topk only),
``timeout_ms``, ``partial`` (0|1).
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import re
import signal
import time
import urllib.parse
from concurrent.futures import BrokenExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..algorithms.base import ELCA, SEMANTICS, SearchResult
from ..cache import QueryCache, result_key
from ..obs.account import merge_resources
from ..obs.distributed import (AccessLog, TailSampler, TraceContext,
                               TraceStore, stitch_trace)
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.slo import SLOConfig, SLOTracker
from ..obs.slowlog import SlowQueryLog
from ..obs.tracing import NULL_TRACER, Tracer
from ..reliability.deadline import Deadline
from ..reliability.errors import (DeadlineExceeded, InjectedFault,
                                  ShardPayloadError, WorkerCrashError)
from ..reliability.retry import RetryPolicy
from .chaos import BYTE_FAULT, ChaosInjector, apply_worker_fault, corrupt_light
from .merge import ShardedDatabase
from .supervisor import BreakerConfig, BreakerOpenError, ShardSupervisor

#: Shard id -> per-shard `XMLDatabase`, inherited copy-on-write by the
#: forked pool workers.  Populated completely before any pool is
#: created -- fork happens lazily on first submit, and a worker that
#: forked before the dict was full would serve the wrong world.
_SERVE_DBS: Dict[int, object] = {}

#: Worker-process-local state for metric shipping.  A forked worker
#: inherits the parent registry's pre-fork counter values copy-on-write;
#: shipping those verbatim would double-count everything the parent
#: recorded before the fork.  The first task a worker runs snapshots
#: the inherited counters as a baseline, and every response ships the
#: cumulative *delta* since that baseline, keyed by pid so the parent
#: can keep latest-per-worker and sum per shard.
_WORKER_STATE: Dict[str, Any] = {}


def _worker_baseline(db) -> None:
    pid = os.getpid()
    if _WORKER_STATE.get("pid") != pid:
        _WORKER_STATE["pid"] = pid
        _WORKER_STATE["baseline"] = dict(
            db.metrics.snapshot()["counters"])


def _worker_counter_deltas(db) -> Dict[str, float]:
    """Shard-local counter growth since this worker process forked."""
    base = _WORKER_STATE.get("baseline") or {}
    out: Dict[str, float] = {}
    for key, value in db.metrics.snapshot()["counters"].items():
        delta = value - base.get(key, 0.0)
        if delta > 0:
            out[key] = delta
    return out


def _worker_publish(db, endpoint: str, stats, partial: bool) -> None:
    """Record shard-local counters into the worker's (inherited)
    registry.  These never reach a scrape directly -- the worker has no
    HTTP endpoint -- they ride back to the parent as deltas and surface
    as ``repro_worker_*{shard=...}`` on the daemon's ``/metrics``."""
    reg = db.metrics
    reg.counter("repro_shard_requests_total",
                {"endpoint": endpoint}).inc()
    if stats is not None:
        if stats.tuples_scanned:
            reg.counter("repro_shard_tuples_scanned_total").inc(
                stats.tuples_scanned)
        if stats.cache_hits:
            reg.counter("repro_shard_cache_hits_total").inc(
                stats.cache_hits)
    if partial:
        reg.counter("repro_shard_deadline_partials_total").inc()


def _shard_extra(db, tracer, stats) -> Dict[str, Any]:
    """The observability sidecar shipped back with a shard response:
    the worker's span tree (wire dict form), the engine's retrieval
    counters, and the worker metric deltas."""
    root = tracer.last_root() if tracer.enabled else None
    extra: Dict[str, Any] = {
        "pid": os.getpid(),
        "trace": root.to_dict() if root is not None else None,
        "counters": _worker_counter_deltas(db),
    }
    if stats is not None:
        extra["retrievals"] = stats.tuples_scanned
        extra["emitted"] = stats.results_emitted
        extra["levels"] = stats.levels_processed
        if stats.resources:
            extra["account"] = stats.resources
    return extra


class AdmissionError(Exception):
    """Typed rejection: carries the HTTP status and machine-readable
    reason the client sees (429 ``queue_full`` / 504 ``deadline``)."""

    def __init__(self, status: int, reason: str, message: str):
        super().__init__(message)
        self.status = status
        self.reason = reason


def _light(results: Sequence[SearchResult]) -> List[Tuple]:
    """Results as `(level, jdewey-number, score, witnesses)` tuples --
    what crosses the process boundary instead of node graphs."""
    return [(r.node.level, r.node.jdewey[-1], r.score,
             tuple(r.witness_scores)) for r in results]


def _serve_shard_topk(payload):
    """Pool entry: one shard's slice of a top-K scatter.

    Evaluates ``k+1`` shard-locally (one slot covers the dropped
    shard-local root) and ships light tuples plus the stream outcome;
    exceptions return as values so one shard cannot lose the gather.
    When the payload carries a sampled `TraceContext`, the engine runs
    under a worker-local `Tracer` and the span tree travels back in the
    7th (sidecar) slot together with the rank-join retrieval counters
    and the worker's metric deltas.
    """
    sid, terms, semantics, k, wire, ctx_wire, fault = payload
    db = _SERVE_DBS.get(sid)
    if db is None:  # pragma: no cover - misuse guard
        return sid, None, False, None, 0.0, RuntimeError(
            "worker has no shard database; pools must be created by "
            "ServeDaemon after _SERVE_DBS is installed"), None
    deadline = Deadline.from_wire(wire) if wire else None
    ctx = TraceContext.from_wire(ctx_wire)
    _worker_baseline(db)
    tracer = Tracer() if ctx is not None and ctx.sampled else NULL_TRACER
    prev_tracer, db.tracer = db.tracer, tracer
    start = time.perf_counter()
    try:
        deferred = apply_worker_fault(fault)
        with tracer.span("shard_query", shard=sid, terms=list(terms),
                         k=k, pid=os.getpid(),
                         trace_id=ctx.trace_id if ctx else None) as qspan:
            top = db._topk_result(terms, semantics, "topk-join", k + 1,
                                  deadline=deadline)
            qspan.tag(retrievals=top.stats.tuples_scanned,
                      emitted=top.stats.results_emitted,
                      levels=top.stats.levels_processed,
                      partial=top.stats.partial)
        light = _light(r for r in top.results if r.level > 1)
        if deferred == BYTE_FAULT:
            light = corrupt_light(light)
        elapsed = (time.perf_counter() - start) * 1000.0
        bound = top.bound
        if top.partial and bound is None:
            bound = float("inf")
        _worker_publish(db, "topk", top.stats, top.partial)
        return (sid, light, top.partial, bound, elapsed, None,
                _shard_extra(db, tracer, top.stats))
    except Exception as exc:  # noqa: BLE001 - shipped back as a value
        import pickle

        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        return (sid, None, False, None,
                (time.perf_counter() - start) * 1000.0, exc,
                _shard_extra(db, tracer, None))
    finally:
        db.tracer = prev_tracer


def _serve_shard_search(payload):
    """Pool entry: one shard's slice of a complete-evaluation scatter."""
    sid, terms, semantics, wire, ctx_wire, fault = payload
    db = _SERVE_DBS.get(sid)
    if db is None:  # pragma: no cover - misuse guard
        return sid, None, False, None, 0.0, RuntimeError(
            "worker has no shard database"), None
    deadline = Deadline.from_wire(wire) if wire else None
    ctx = TraceContext.from_wire(ctx_wire)
    _worker_baseline(db)
    tracer = Tracer() if ctx is not None and ctx.sampled else NULL_TRACER
    prev_tracer, db.tracer = db.tracer, tracer
    start = time.perf_counter()
    try:
        deferred = apply_worker_fault(fault)
        with tracer.span("shard_query", shard=sid, terms=list(terms),
                         pid=os.getpid(),
                         trace_id=ctx.trace_id if ctx else None) as qspan:
            results, stats = db._complete_results(terms, semantics, "join",
                                                  deadline=deadline)
            qspan.tag(retrievals=stats.tuples_scanned,
                      emitted=stats.results_emitted,
                      levels=stats.levels_processed,
                      partial=stats.partial)
        light = _light(r for r in results if r.level > 1)
        if deferred == BYTE_FAULT:
            light = corrupt_light(light)
        elapsed = (time.perf_counter() - start) * 1000.0
        _worker_publish(db, "search", stats, stats.partial)
        return (sid, light, stats.partial, None, elapsed, None,
                _shard_extra(db, tracer, stats))
    except Exception as exc:  # noqa: BLE001
        import pickle

        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        return (sid, None, False, None,
                (time.perf_counter() - start) * 1000.0, exc,
                _shard_extra(db, tracer, None))
    finally:
        db.tracer = prev_tracer


#: ``name{label="v"}`` keys from `MetricsRegistry.snapshot`, split back
#: into (name, labels) so worker counters can be re-registered in the
#: parent registry with a ``shard`` label added.
_METRIC_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")
_LABEL_RE = re.compile(r'(\w+)="([^"]*)"')


def _parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    match = _METRIC_KEY_RE.match(key)
    if match is None:  # pragma: no cover - snapshot keys always match
        return key, {}
    labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
    return match.group("name"), labels


class _RequestObs:
    """Per-request timing facts collected on the way to a stitched
    trace: where the queue wait went, what the scatter touched, what
    each shard reported.  Plain accumulator -- the daemon handles many
    requests concurrently on one thread, so each request carries its
    own instead of sharing tracer state."""

    __slots__ = ("shards", "scatter_ms", "merge_ms", "fanout", "mode",
                 "faults", "retries", "hedges", "degraded_shards",
                 "account")

    def __init__(self):
        self.shards: List[Dict[str, Any]] = []
        self.scatter_ms: Optional[float] = None
        self.merge_ms = 0.0
        self.fanout = 0
        self.mode = "inline"
        self.faults: List[str] = []     # chaos kinds injected this request
        self.retries = 0
        self.hedges = 0
        self.degraded_shards: List[int] = []
        # merged per-shard `ResourceAccount.as_dict` breakdown
        self.account: Optional[Dict[str, Any]] = None


class ServeDaemon:
    """The serving front-end: admission control + scatter-gather merge.

    ``workers=0`` evaluates in-process on a thread off the event loop
    (the right default on small machines -- no IPC tax); ``workers>=1``
    creates one fork-context pool of that width per shard.  Either way
    the event loop itself never evaluates a query: it only admits,
    dispatches, merges and serializes.

    Observability (on by default, ``tracing=False`` turns span
    collection off): every request gets a `TraceContext`, shard workers
    ship span trees back, and the daemon stitches one trace per request
    (tail-sampled into `TraceStore` / ``/debug/traces``), writes one
    `AccessLog` record (optionally JSONL at ``access_log_path``), feeds
    the `SLOTracker` behind ``/slo``, attaches trace-id exemplars to
    ``repro_serve_latency_ms``, and -- with ``slow_ms`` or an explicit
    ``slow_log`` -- records over-threshold requests with their stitched
    per-shard breakdown.
    """

    def __init__(self, db: ShardedDatabase, host: str = "127.0.0.1",
                 port: int = 8388, workers: int = 0,
                 max_concurrency: int = 8, queue_limit: int = 64,
                 default_timeout_ms: Optional[float] = None,
                 default_partial: bool = False,
                 result_cache_size: int = 1024,
                 metrics: Optional[MetricsRegistry] = None,
                 tracing: bool = True,
                 trace_capacity: int = 256,
                 trace_log_path: Optional[str] = None,
                 access_log_path: Optional[str] = None,
                 access_log_capacity: int = 1024,
                 tail_slow_ms: float = 250.0,
                 tail_sample_rate: float = 1.0,
                 slow_log: Optional[SlowQueryLog] = None,
                 slow_ms: Optional[float] = None,
                 slo_config: Optional[SLOConfig] = None,
                 breaker: Optional[BreakerConfig] = None,
                 retry_attempts: int = 2,
                 retry_backoff_ms: float = 10.0,
                 hedge_ms: Optional[float] = None,
                 chaos: Optional[ChaosInjector] = None,
                 drain_grace_ms: float = 5000.0,
                 supervision: bool = True,
                 capture_path: Optional[str] = None):
        self.db = db
        self.host = host
        self.port = port
        self.workers = int(workers)
        self.max_concurrency = max(1, int(max_concurrency))
        self.queue_limit = max(0, int(queue_limit))
        self.default_timeout_ms = default_timeout_ms
        self.default_partial = default_partial
        self.metrics = metrics if metrics is not None else get_registry()
        self.cache = QueryCache(0, result_cache_size)
        self.tracing = bool(tracing)
        self.traces = TraceStore(trace_capacity, path=trace_log_path)
        self.access_log = AccessLog(access_log_capacity,
                                    path=access_log_path)
        self.sampler = TailSampler(tail_slow_ms, tail_sample_rate)
        self.slo = SLOTracker(slo_config)
        if slow_log is None and slow_ms is not None:
            slow_log = SlowQueryLog(threshold_ms=slow_ms)
        self.slow_log = slow_log
        self.capture = None
        if capture_path:
            from .capture import WorkloadCapture
            self.capture = WorkloadCapture(capture_path, meta={
                "shards": db.n_shards, "workers": self.workers})
        # (shard, pid) -> the worker's latest cumulative counter deltas
        self._worker_metrics: Dict[Tuple[int, int], Dict[str, float]] = {}
        self._sem: Optional[asyncio.Semaphore] = None
        self._waiting = 0
        self._inflight_count = 0
        self._draining = False
        self._conn_tasks: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._started = time.perf_counter()
        # self-healing layer
        self.supervision = bool(supervision)
        self.retry_policy = RetryPolicy(
            max_attempts=max(1, int(retry_attempts)),
            backoff_ms=retry_backoff_ms)
        self.hedge_ms = hedge_ms
        self.chaos = chaos
        if chaos is not None and self.workers < 1:
            raise ValueError("--chaos needs worker pools (workers >= 1); "
                             "inline evaluation has no shard boundary to "
                             "inject into")
        if chaos is not None and chaos.metrics is None:
            chaos.metrics = self.metrics
        self.drain_grace_ms = drain_grace_ms
        self.supervisor = ShardSupervisor(
            db.n_shards, self.workers,
            pool_factory=self._make_pool,
            breaker_config=breaker,
            metrics=self.metrics)
        # instruments (created eagerly so /metrics shows them at zero)
        reg = self.metrics
        self._queue_depth = reg.gauge("repro_serve_queue_depth")
        self._inflight = reg.gauge("repro_serve_inflight")
        self._queue_wait = reg.histogram("repro_serve_queue_wait_ms")
        self._latency = reg.histogram("repro_serve_latency_ms")
        for reason in ("queue_full", "deadline", "shutting_down"):
            reg.counter("repro_serve_rejects_total", {"reason": reason})
        for outcome in ("ok", "partial", "degraded", "error"):
            reg.counter("repro_serve_requests_total", {"outcome": outcome})
        reg.counter("repro_serve_degraded_total")
        for sid in range(db.n_shards):
            labels = {"shard": str(sid)}
            reg.histogram("repro_serve_shard_ms", labels)
            reg.counter("repro_serve_retries_total", labels)
            reg.counter("repro_serve_hedges_total", labels)
            reg.counter("repro_serve_shard_skipped_total", labels)

    # ------------------------------------------------------------------
    # pools
    # ------------------------------------------------------------------

    def _make_pool(self):
        """One fork-context executor; `_SERVE_DBS` must be installed
        first (`_start_pools` guarantees it, including on rebuilds --
        the supervisor's factory closure is only this method)."""
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        ctx = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=self.workers, mp_context=ctx)

    def _start_pools(self) -> None:
        if self.workers < 1:
            return
        import multiprocessing

        try:
            multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self.workers = 0
            self.supervisor = ShardSupervisor(self.db.n_shards, 0,
                                              metrics=self.metrics)
            return
        global _SERVE_DBS
        _SERVE_DBS = {sid: shard for sid, shard
                      in enumerate(self.db.shards)}
        self.supervisor.start()

    def _stop_pools(self) -> None:
        self.supervisor.stop()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    async def _admit(self, deadline: Optional[Deadline]):
        """Pass admission control or raise a typed `AdmissionError`.

        Returns the queue wait in ms; the caller must release
        ``self._sem`` when the query finishes.
        """
        if self._waiting >= self.queue_limit:
            self.metrics.counter("repro_serve_rejects_total",
                                 {"reason": "queue_full"}).inc()
            raise AdmissionError(
                429, "queue_full",
                f"accept queue is full ({self._waiting} waiting, "
                f"limit {self.queue_limit}); retry later")
        waited = time.perf_counter()
        self._waiting += 1
        self._queue_depth.set(self._waiting)
        try:
            timeout_s = None
            if deadline is not None and deadline.budget_ms is not None:
                timeout_s = max(0.0, deadline.remaining_ms() / 1000.0)
            try:
                if timeout_s is None:
                    await self._sem.acquire()
                else:
                    await asyncio.wait_for(self._sem.acquire(), timeout_s)
            except asyncio.TimeoutError:
                self.metrics.counter("repro_serve_rejects_total",
                                     {"reason": "deadline"}).inc()
                raise AdmissionError(
                    504, "deadline",
                    "budget expired while waiting for an execution slot")
        finally:
            self._waiting -= 1
            self._queue_depth.set(self._waiting)
        wait_ms = (time.perf_counter() - waited) * 1000.0
        self._queue_wait.observe(wait_ms)
        if deadline is not None and deadline.expired():
            self._sem.release()
            self.metrics.counter("repro_serve_rejects_total",
                                 {"reason": "deadline"}).inc()
            raise AdmissionError(
                504, "deadline",
                "budget expired while waiting for an execution slot")
        return wait_ms

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def _rehydrate(self, light: Sequence[Tuple]) -> List[SearchResult]:
        node_at = self.db.shards[0].columnar_index.node_at
        return [SearchResult(node_at(level, number), level, score,
                             tuple(witnesses))
                for level, number, score, witnesses in light]

    def _absorb_worker_counters(self, sid: int, pid: Optional[int],
                                counters: Dict[str, float]) -> None:
        """Fold one worker's cumulative counter deltas into the parent
        registry as ``repro_worker_*`` counters labelled by shard.

        The worker ships totals-since-fork, so the parent increments by
        the growth over the previous report from the same (shard, pid)
        -- monotonic in the parent even across interleaved reports from
        sibling workers, self-correcting when a pool respawns a worker
        (a fresh pid starts a fresh series)."""
        if pid is None or not counters:
            return
        prev = self._worker_metrics.get((sid, pid), {})
        for key, value in counters.items():
            grown = value - prev.get(key, 0.0)
            if grown <= 0:
                continue
            name, labels = _parse_metric_key(key)
            if name.startswith("repro_"):
                name = name[len("repro_"):]
            labels["shard"] = str(sid)
            self.metrics.counter("repro_worker_" + name, labels).inc(grown)
        self._worker_metrics[(sid, pid)] = dict(counters)

    def worker_metrics(self) -> Dict[str, Dict[str, float]]:
        """Latest worker counter deltas summed per shard (``/stats``)."""
        per_shard: Dict[str, Dict[str, float]] = {}
        for (sid, _pid), counters in sorted(self._worker_metrics.items()):
            agg = per_shard.setdefault(str(sid), {})
            for key, value in counters.items():
                agg[key] = agg.get(key, 0.0) + value
        return per_shard

    # -- self-healing shard calls --------------------------------------

    def _validate_light(self, sid: int, light) -> None:
        """Structural validation of a shard reply at the pool boundary.

        A corrupt reply (chaos byte-fault, or a real serialization bug)
        must surface as the typed, retryable `ShardPayloadError` --
        never be silently rehydrated into wrong results."""
        if not isinstance(light, list):
            raise ShardPayloadError(
                f"shard {sid} reply is {type(light).__name__}, not a "
                "result list", shard=sid)
        for item in light:
            if not isinstance(item, tuple) or len(item) != 4:
                raise ShardPayloadError(
                    f"shard {sid} reply entry has shape "
                    f"{type(item).__name__}[{len(item) if isinstance(item, tuple) else '?'}], want a 4-tuple",
                    shard=sid)
            _level, _number, score, _wit = item
            if not isinstance(score, (int, float)) or not math.isfinite(score):
                raise ShardPayloadError(
                    f"shard {sid} reply carries a non-finite score",
                    shard=sid)

    def _shard_score_bound(self, sid: int, terms: Sequence[str]) -> float:
        """Conservative cap on the score of *any* result a skipped shard
        could have contributed, computed parent-side (the parent's index
        structures are intact even while the shard's pool is dead).

        Per keyword, no occurrence in the shard scores above its max
        raw posting score (damping is ``base**delta <= 1``), and the
        combiner's `upper_bound` is monotone, so folding the per-term
        maxima through it bounds every candidate result in the shard.
        """
        idx = self.db.shards[sid].columnar_index
        per_term: List[float] = []
        for term in terms:
            plist = idx.term_postings(term)
            scores = plist.scores
            best = float(max(scores)) if len(scores) else 0.0
            per_term.append(best)
        return float(self.db.ranking.combiner.upper_bound(per_term))

    async def _submit_once(self, fn, sid: int, make_payload, fault,
                           obs: _RequestObs):
        """One pool submission, optionally hedged: if the primary has
        not answered within ``hedge_ms``, fire a clean duplicate on the
        same pool and take whichever finishes first (safe: shard
        queries are read-only).  The loser is left to finish and its
        result discarded."""
        pool = self.supervisor.pool(sid)
        if pool is None:
            raise WorkerCrashError(
                f"shard {sid} pool is {self.supervisor.pool_state(sid)}",
                shard=sid)
        loop = asyncio.get_running_loop()
        primary = loop.run_in_executor(pool, fn, make_payload(sid, fault))
        if self.hedge_ms is None:
            return await primary
        try:
            return await asyncio.wait_for(asyncio.shield(primary),
                                          self.hedge_ms / 1000.0)
        except asyncio.TimeoutError:
            pass
        self.metrics.counter("repro_serve_hedges_total",
                             {"shard": str(sid)}).inc()
        obs.hedges += 1
        hedge = loop.run_in_executor(pool, fn, make_payload(sid, None))
        done, pending = await asyncio.wait({primary, hedge},
                                           return_when=asyncio.FIRST_COMPLETED)
        for straggler in pending:
            # consume the loser's eventual result/exception silently
            straggler.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None)
        for winner in done:
            if winner.exception() is None:
                return winner.result()
        return (primary if primary in done else next(iter(done))).result()

    async def _call_shard(self, fn, sid: int, make_payload,
                          deadline: Optional[Deadline],
                          obs: _RequestObs) -> Tuple:
        """One shard's supervised slice of the scatter: breaker gate,
        chaos decision, bounded in-deadline retries, pool healing.

        Always returns the worker outcome 7-tuple; a shard that could
        not answer returns with the typed error in slot 5 (the merge
        degrades it), plus a bookkeeping dict for ``obs.shards``.
        """
        entry: Dict[str, Any] = {"shard": sid}
        started = time.perf_counter()
        breaker = (self.supervisor.breaker(sid) if self.supervision
                   else None)
        attempts = (self.retry_policy.max_attempts if self.supervision
                    else 1)
        last_exc: Optional[BaseException] = None
        for attempt in range(1, attempts + 1):
            entry["attempts"] = attempt
            if breaker is not None and not breaker.allow():
                self.metrics.counter("repro_serve_shard_skipped_total",
                                     {"shard": str(sid)}).inc()
                entry["skipped"] = True
                last_exc = BreakerOpenError(
                    f"shard {sid} circuit breaker is {breaker.state}",
                    shard=sid, reopen_in_ms=breaker.reopen_in_ms())
                break
            if (deadline is not None and deadline.budget_ms is not None
                    and deadline.expired()):
                if breaker is not None:
                    breaker.record_success()  # budget death, not shard sickness
                last_exc = last_exc or DeadlineExceeded(
                    "budget expired before shard dispatch")
                break
            fault = None
            if self.chaos is not None:
                fault = self.chaos.next_fault(sid)
                if fault is not None:
                    chaos_fault = (fault, self.chaos.latency_ms)
                    obs.faults.append(fault)
                    entry.setdefault("faults", []).append(fault)
                    fault = chaos_fault
            exc: Optional[BaseException] = None
            try:
                outcome = await self._submit_once(fn, sid, make_payload,
                                                  fault, obs)
            except BrokenExecutor:
                try:
                    self.supervisor.note_pool_broken(sid)
                    detail = "pool quarantined and rebuilt"
                except Exception as rebuild_exc:
                    detail = f"pool rebuild failed: {rebuild_exc}"
                exc = WorkerCrashError(
                    f"shard {sid} worker died mid-query; {detail}",
                    shard=sid)
            except OSError as os_exc:
                exc = os_exc
            else:
                worker_exc = outcome[5]
                if worker_exc is None:
                    try:
                        self._validate_light(sid, outcome[1])
                    except ShardPayloadError as payload_exc:
                        exc = payload_exc
                    else:
                        if breaker is not None:
                            breaker.record_success()
                        return outcome, entry
                elif isinstance(worker_exc, DeadlineExceeded):
                    if breaker is not None:
                        breaker.record_success()
                    return outcome, entry
                else:
                    exc = worker_exc
            last_exc = exc
            if breaker is not None:
                breaker.record_failure()
            if attempt >= attempts or not self.retry_policy.retryable(exc):
                break
            delay_ms = self.retry_policy.delay_ms(attempt)
            if (deadline is not None and deadline.budget_ms is not None
                    and deadline.remaining_ms() <= delay_ms):
                break  # the backoff alone would outlive the budget
            self.metrics.counter("repro_serve_retries_total",
                                 {"shard": str(sid)}).inc()
            obs.retries += 1
            await asyncio.sleep(delay_ms / 1000.0)
        elapsed = (time.perf_counter() - started) * 1000.0
        return (sid, None, False, None, elapsed, last_exc, None), entry

    async def _scatter(self, fn, shard_ids, make_payload,
                       deadline: Optional[Deadline],
                       obs: _RequestObs) -> List[Tuple]:
        """Run one supervised call per qualifying shard, concurrently.

        Fills ``obs.shards`` with each shard's latency / retrieval
        counts / span tree and absorbs worker metric deltas.  Transient
        shard failures stay *in* the outcome list (slot 5) for the
        merge to degrade around; a worker `DeadlineExceeded` or an
        unexpected (non-transient) error is re-raised after the healthy
        shards' observability is recorded.
        """
        results = await asyncio.gather(*[
            self._call_shard(fn, sid, make_payload, deadline, obs)
            for sid in shard_ids])
        outcomes: List[Tuple] = []
        first_deadline: Optional[BaseException] = None
        first_fatal: Optional[BaseException] = None
        for outcome, call_entry in results:
            sid, _light, partial, bound, elapsed, exc, extra = outcome
            self.metrics.histogram("repro_serve_shard_ms",
                                   {"shard": str(sid)}).observe(elapsed)
            entry: Dict[str, Any] = {"shard": sid, "elapsed_ms": elapsed,
                                     "partial": bool(partial)}
            entry.update(call_entry)
            if bound is not None and bound != float("inf"):
                entry["bound"] = bound
            if extra:
                self._absorb_worker_counters(sid, extra.get("pid"),
                                             extra.get("counters") or {})
                for key in ("retrievals", "emitted", "levels", "pid"):
                    if extra.get(key) is not None:
                        entry[key] = extra[key]
                if extra.get("account"):
                    obs.account = merge_resources(obs.account,
                                                  extra["account"])
                entry["trace"] = extra.get("trace")
            if exc is not None:
                entry["error"] = f"{type(exc).__name__}: {exc}"
                if isinstance(exc, DeadlineExceeded):
                    if first_deadline is None:
                        first_deadline = exc
                elif self.supervision and isinstance(
                        exc, (WorkerCrashError, InjectedFault,
                              ShardPayloadError, BreakerOpenError, OSError)):
                    entry["degraded"] = True
                    obs.degraded_shards.append(sid)
                elif first_fatal is None:
                    first_fatal = exc
            obs.shards.append(entry)
            outcomes.append(outcome)
        if first_fatal is not None:
            raise first_fatal
        if first_deadline is not None:
            raise first_deadline
        return outcomes

    async def _eval_topk(self, terms: List[str], semantics: str, k: int,
                         deadline: Optional[Deadline],
                         ctx: Optional[TraceContext],
                         obs: _RequestObs) -> dict:
        db = self.db
        if self.workers < 1:
            started = time.perf_counter()
            top = await asyncio.get_running_loop().run_in_executor(
                None, lambda: db.search_topk(terms, k, semantics,
                                             deadline=deadline))
            obs.scatter_ms = (time.perf_counter() - started) * 1000.0
            obs.account = merge_resources(obs.account, top.stats.resources)
            return self._payload(top.results, top.partial, top.bound)
        if not db._covered(terms):
            return self._payload([], False, None)
        ctx_wire = (ctx.child("scatter").to_wire()
                    if ctx is not None else None)

        def make_payload(sid, fault):
            # A fresh wire per attempt: the *remaining* budget travels,
            # so retry backoff and hedge delay debit the deadline the
            # same way queue wait already does.
            wire = deadline.to_wire() if deadline is not None else None
            return (sid, terms, semantics, k, wire, ctx_wire, fault)

        shard_ids = [sid for sid, shard in enumerate(db.shards)
                     if all(t in shard.columnar_index for t in terms)]
        obs.mode = "pool"
        obs.fanout = len(shard_ids)
        started = time.perf_counter()
        outcomes = await self._scatter(_serve_shard_topk, shard_ids,
                                       make_payload, deadline, obs)
        merging = time.perf_counter()
        obs.scatter_ms = (merging - started) * 1000.0
        merged: List[SearchResult] = []
        partial, bound, degraded = False, None, False
        for outcome in outcomes:
            sid, light, shard_partial, shard_bound, _el, exc = outcome[:6]
            if exc is not None:
                # Skipped/failed shard: its results are missing, but no
                # missed result can outscore the shard's score cap --
                # fold that cap into the partial bound and stay exact.
                degraded = True
                shard_cap = self._shard_score_bound(sid, terms)
                if bound is None or shard_cap > bound:
                    bound = shard_cap
                continue
            merged.extend(self._rehydrate(light))
            if shard_partial:
                partial = True
                if bound is None or shard_bound > bound:
                    bound = shard_bound
        root = db._root_result(terms, semantics)
        if root is not None:
            merged.append(root)
        merged.sort(key=lambda r: (-r.score, r.node.dewey))
        if partial or degraded:
            partial = True
            merged = [r for r in merged if r.score > bound]
        obs.merge_ms = (time.perf_counter() - merging) * 1000.0
        return self._payload(merged[:k], partial, bound, degraded=degraded)

    async def _eval_search(self, terms: List[str], semantics: str,
                           deadline: Optional[Deadline],
                           ctx: Optional[TraceContext],
                           obs: _RequestObs) -> dict:
        db = self.db
        if self.workers < 1:
            started = time.perf_counter()
            results, stats = await asyncio.get_running_loop().run_in_executor(
                None, lambda: db.search(terms, semantics,
                                        deadline=deadline,
                                        with_stats=True))
            obs.scatter_ms = (time.perf_counter() - started) * 1000.0
            obs.account = merge_resources(obs.account, stats.resources)
            return self._payload(results, stats.partial, None)
        if not db._covered(terms):
            return self._payload([], False, None)
        ctx_wire = (ctx.child("scatter").to_wire()
                    if ctx is not None else None)

        def make_payload(sid, fault):
            wire = deadline.to_wire() if deadline is not None else None
            return (sid, terms, semantics, wire, ctx_wire, fault)

        shard_ids = [sid for sid, shard in enumerate(db.shards)
                     if all(t in shard.columnar_index for t in terms)]
        obs.mode = "pool"
        obs.fanout = len(shard_ids)
        started = time.perf_counter()
        outcomes = await self._scatter(_serve_shard_search, shard_ids,
                                       make_payload, deadline, obs)
        merging = time.perf_counter()
        obs.scatter_ms = (merging - started) * 1000.0
        merged: List[SearchResult] = []
        partial, bound, degraded = False, None, False
        for outcome in outcomes:
            sid, light, shard_partial, _b, _el, exc = outcome[:6]
            if exc is not None:
                # The healthy shards' results are still exact; the
                # bound says "anything missing scores at most this".
                degraded = True
                shard_cap = self._shard_score_bound(sid, terms)
                if bound is None or shard_cap > bound:
                    bound = shard_cap
                continue
            merged.extend(self._rehydrate(light))
            partial = partial or shard_partial
        if deadline is not None and deadline.expired():
            partial = True
        else:
            root = db._root_result(terms, semantics)
            if root is not None:
                merged.append(root)
        merged.sort(key=lambda r: r.node.dewey)
        partial = partial or degraded
        obs.merge_ms = (time.perf_counter() - merging) * 1000.0
        return self._payload(merged, partial, bound, degraded=degraded)

    def _payload(self, results: Sequence[SearchResult], partial: bool,
                 bound: Optional[float], degraded: bool = False) -> dict:
        return {
            "results": [{
                "dewey": list(r.node.dewey),
                "tag": r.node.tag,
                "level": r.level,
                "score": r.score,
                "witnesses": list(r.witness_scores),
            } for r in results],
            "partial": bool(partial),
            "bound": (None if bound is None or bound == float("inf")
                      else bound),
            "degraded": bool(degraded),
        }

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_query(self, endpoint: str, params: dict) -> Tuple[int, dict]:
        """Admission, evaluation and — on every terminal path — the
        request's observability bookkeeping via the `finish` closure:
        stitch + tail-sample the trace, write the access-log record,
        feed the SLO tracker and the slow log."""
        arrival = time.perf_counter()
        wall = time.time()
        ctx = TraceContext() if self.tracing else None
        obs = _RequestObs()

        def finish(status, outcome, terms, semantics, k, *,
                   queue_wait_ms=0.0, result_count=0, partial=False,
                   bound=None, cached=False, degraded=False):
            elapsed_ms = (time.perf_counter() - arrival) * 1000.0
            trace_id = ctx.trace_id if ctx is not None else None
            if ctx is not None:
                extra = {"fanout": obs.fanout, "mode": obs.mode,
                         "result_count": result_count}
                if bound is not None:
                    extra["bound"] = bound
                if degraded:
                    extra["degraded"] = True
                    extra["degraded_shards"] = list(obs.degraded_shards)
                if obs.retries:
                    extra["retries"] = obs.retries
                if obs.hedges:
                    extra["hedges"] = obs.hedges
                trace = stitch_trace(
                    ctx.trace_id, endpoint, terms, semantics, k, status,
                    outcome, elapsed_ms, queue_wait_ms, shards=obs.shards,
                    scatter_ms=obs.scatter_ms, merge_ms=obs.merge_ms,
                    cached=cached, wall_time=wall, extra_tags=extra)
                if self.sampler.keep(status, outcome, elapsed_ms):
                    self.traces.add(trace)
                if (self.slow_log is not None and status == 200
                        and not cached):
                    self.slow_log.maybe_record(
                        elapsed_ms, terms, semantics, "serve-" + endpoint,
                        k, stats={
                            "trace_id": trace_id,
                            "queue_wait_ms": queue_wait_ms,
                            "scatter_ms": obs.scatter_ms,
                            "merge_ms": obs.merge_ms,
                            "fanout": obs.fanout,
                            "mode": obs.mode,
                            "shards": {
                                str(s["shard"]): {
                                    "elapsed_ms": s.get("elapsed_ms"),
                                    "retrievals": s.get("retrievals"),
                                    "partial": s.get("partial"),
                                } for s in obs.shards},
                        }, trace_dict=trace["root"])
            self.access_log.record(
                wall_time=wall, trace_id=trace_id, endpoint=endpoint,
                terms=terms, semantics=semantics, k=k, status=status,
                outcome=outcome, cached=cached,
                queue_wait_ms=queue_wait_ms, elapsed_ms=elapsed_ms,
                result_count=result_count, partial=partial, bound=bound,
                degraded=degraded,
                chaos=(list(obs.faults) if obs.faults else None),
                account=obs.account,
                shards=[{key: value for key, value in shard.items()
                         if key != "trace"} for shard in obs.shards])
            self.slo.record(status, elapsed_ms, degraded=degraded)
            return trace_id, elapsed_ms

        query = params.get("q", "").strip()
        semantics = params.get("semantics", ELCA)
        k: Optional[int] = None

        def bad_request(message):
            trace_id, _ = finish(400, "bad_request",
                                 query.split() if query else [],
                                 semantics, k)
            return 400, {"error": {"type": "bad_request",
                                   "message": message},
                         "trace_id": trace_id}

        if not query:
            return bad_request("missing ?q=")
        if semantics not in SEMANTICS:
            return bad_request(f"unknown semantics {semantics!r}")
        if endpoint == "topk":
            try:
                k = int(params.get("k", "10"))
            except ValueError:
                return bad_request("k must be an integer")
            if k < 1:
                return bad_request("k must be >= 1")
        timeout_ms = self.default_timeout_ms
        if "timeout_ms" in params:
            try:
                timeout_ms = float(params["timeout_ms"])
            except ValueError:
                return bad_request("timeout_ms must be a number")
        partial_ok = self.default_partial
        if "partial" in params:
            partial_ok = params["partial"] not in ("0", "false", "")
        # The budget starts *now*, at admission -- queue wait spends it.
        deadline = Deadline.coerce(None, timeout_ms,
                                   "partial" if partial_ok else "raise")
        terms = self.db._terms(query)
        if self._draining:
            # SIGTERM drain: in-flight work finishes, new work gets a
            # typed rejection so clients fail over instead of hanging.
            self.metrics.counter("repro_serve_rejects_total",
                                 {"reason": "shutting_down"}).inc()
            trace_id, _ = finish(503, "shutting_down", terms, semantics, k)
            return 503, {"error": {"type": "shutting_down",
                                   "message": "daemon is draining; "
                                              "retry another replica"},
                         "trace_id": trace_id}
        cache_key = result_key(terms, semantics,
                               "serve-" + endpoint, k)
        cached = self.cache.get_results(cache_key)
        if cached is not None:
            # `get_results` hands back a list copy; the single element
            # is the cached response body.
            body = dict(cached[0])
            self.metrics.counter("repro_serve_requests_total",
                                 {"outcome": "ok"}).inc()
            trace_id, elapsed_ms = finish(
                200, "ok", terms, semantics, k, cached=True,
                result_count=len(body.get("results", [])))
            if self.capture is not None:
                self.capture.record(endpoint, terms, semantics, k,
                                    body.get("results", []), elapsed_ms,
                                    cached=True,
                                    partial=body.get("partial", False))
            body.update(terms=terms, semantics=semantics, cached=True,
                        elapsed_ms=elapsed_ms, trace_id=trace_id)
            return 200, body
        try:
            queue_wait_ms = await self._admit(deadline)
        except AdmissionError as exc:
            waited_ms = (time.perf_counter() - arrival) * 1000.0
            if exc.reason == "deadline" and partial_ok:
                # The partial policy promises degraded answers instead
                # of failure; a budget spent entirely in the queue has
                # the degenerate consistent partial: nothing, no bound.
                self.metrics.counter("repro_serve_requests_total",
                                     {"outcome": "partial"}).inc()
                body = self._payload([], True, None)
                trace_id, elapsed_ms = finish(
                    200, "partial", terms, semantics, k,
                    queue_wait_ms=waited_ms, partial=True)
                body.update(terms=terms, semantics=semantics,
                            cached=False, elapsed_ms=elapsed_ms,
                            trace_id=trace_id)
                return 200, body
            outcome = "shed" if exc.reason == "queue_full" else "deadline"
            trace_id, _ = finish(exc.status, outcome, terms, semantics, k,
                                 queue_wait_ms=waited_ms)
            return exc.status, {"error": {"type": exc.reason,
                                          "message": str(exc)},
                                "trace_id": trace_id}
        self._inflight.inc()
        self._inflight_count += 1
        try:
            if endpoint == "topk":
                body = await self._eval_topk(terms, semantics, k,
                                             deadline, ctx, obs)
            else:
                body = await self._eval_search(terms, semantics,
                                               deadline, ctx, obs)
        except DeadlineExceeded as exc:
            self.metrics.counter("repro_serve_requests_total",
                                 {"outcome": "error"}).inc()
            trace_id, _ = finish(504, "deadline", terms, semantics, k,
                                 queue_wait_ms=queue_wait_ms)
            return 504, {"error": {"type": "deadline",
                                   "message": str(exc)},
                         "trace_id": trace_id}
        except Exception as exc:  # noqa: BLE001 - typed 500
            self.metrics.counter("repro_serve_requests_total",
                                 {"outcome": "error"}).inc()
            trace_id, _ = finish(500, "error", terms, semantics, k,
                                 queue_wait_ms=queue_wait_ms)
            return 500, {"error": {"type": "internal",
                                   "message": f"{type(exc).__name__}: "
                                              f"{exc}"},
                         "trace_id": trace_id}
        finally:
            self._inflight.dec()
            self._inflight_count -= 1
            self._sem.release()
        degraded = body.get("degraded", False)
        outcome = ("degraded" if degraded
                   else "partial" if body["partial"] else "ok")
        self.metrics.counter("repro_serve_requests_total",
                             {"outcome": outcome}).inc()
        if degraded:
            self.metrics.counter("repro_serve_degraded_total").inc()
        if not body["partial"]:
            self.cache.put_results(cache_key, [dict(body)])
        trace_id, elapsed_ms = finish(
            200, outcome, terms, semantics, k,
            queue_wait_ms=queue_wait_ms,
            result_count=len(body["results"]),
            partial=body["partial"], bound=body["bound"],
            degraded=degraded)
        if self.capture is not None:
            self.capture.record(endpoint, terms, semantics, k,
                                body["results"], elapsed_ms,
                                partial=body["partial"] or degraded,
                                account=obs.account)
        # The latency exemplar points the histogram bucket back at this
        # request's stitched trace.
        self._latency.observe(elapsed_ms, exemplar=trace_id)
        body.update(terms=terms, semantics=semantics, cached=False,
                    elapsed_ms=elapsed_ms, trace_id=trace_id)
        return 200, body

    async def _dispatch(self, method: str, path: str) -> Tuple[int, str, str]:
        """Route one request; returns (status, content_type, body)."""
        parsed = urllib.parse.urlsplit(path)
        params = {key: values[-1] for key, values
                  in urllib.parse.parse_qs(parsed.query).items()}
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            return 200, "text/plain; version=0.0.4", \
                self.metrics.render_prometheus()
        if route == "/healthz":
            # Per-shard liveness: "ok" needs every shard healthy; a
            # brownout (dead pool mid-rebuild, open breaker) reports
            # "degraded" but stays 200 -- load balancers should only
            # pull the node when *all* shards are down (503), or when
            # it is draining for shutdown.
            status = self.supervisor.overall()
            http_status = 200
            body = {"status": status, "shards": self.db.n_shards,
                    "workers": self.workers}
            if self.workers >= 1 or status != "ok":
                body["shard_health"] = self.supervisor.health()
            if self._draining:
                body["status"] = "draining"
                http_status = 503
            elif status == "down":
                http_status = 503
            return http_status, "application/json", json.dumps(body)
        if route == "/stats":
            return 200, "application/json", json.dumps({
                "shards": self.db.n_shards,
                "workers": self.workers,
                "manifest": self.db.manifest,
                "uptime_s": time.perf_counter() - self._started,
                "max_concurrency": self.max_concurrency,
                "queue_limit": self.queue_limit,
                "cache": self.cache.stats(),
                "tracing": {
                    "enabled": self.tracing,
                    "retained_traces": len(self.traces),
                    "traces_added": self.traces.added,
                    "traces_dropped": self.traces.dropped,
                    "access_log_records": len(self.access_log),
                    "access_log_written": self.access_log.written,
                    "slow_log_records": (len(self.slow_log)
                                         if self.slow_log is not None
                                         else None),
                },
                "worker_metrics": self.worker_metrics(),
                "supervision": {
                    "enabled": self.supervision,
                    "retry_attempts": self.retry_policy.max_attempts,
                    "hedge_ms": self.hedge_ms,
                    "chaos": (self.chaos.describe()
                              if self.chaos is not None else None),
                    "shards": self.supervisor.health(),
                    "pool_rebuilds": sum(self.supervisor.rebuilds),
                    "breaker_trips": sum(
                        b.trips_total for b in self.supervisor.breakers),
                },
            })
        if route == "/slo":
            return 200, "application/json", json.dumps(self.slo.report())
        if route == "/debug/traces":
            trace_id = params.get("trace_id")
            if trace_id:
                trace = self.traces.get(trace_id)
                if trace is None:
                    return 404, "application/json", json.dumps(
                        {"error": {"type": "not_found",
                                   "message": f"trace {trace_id} not "
                                              f"retained"}})
                return 200, "application/json", json.dumps(trace)
            try:
                limit = int(params.get("limit", "50"))
            except ValueError:
                limit = 50
            return 200, "application/json", json.dumps({
                "retained": len(self.traces),
                "added": self.traces.added,
                "dropped": self.traces.dropped,
                "traces": self.traces.summaries(limit),
            })
        if route == "/cache/clear":
            if method != "POST":
                return 405, "application/json", json.dumps(
                    {"error": {"type": "method_not_allowed",
                               "message": "POST /cache/clear"}})
            self.cache.clear()
            self.db.clear_caches()
            return 200, "application/json", json.dumps({"cleared": True})
        if route in ("/search", "/topk"):
            status, body = await self._handle_query(route[1:], params)
            return status, "application/json", json.dumps(body)
        return 404, "application/json", json.dumps(
            {"error": {"type": "not_found", "message": route}})

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    raw = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                except asyncio.LimitOverrunError:
                    return
                except asyncio.CancelledError:
                    # stop() cancelling an idle keep-alive; end the
                    # task cleanly so asyncio.streams' done-callback
                    # doesn't log the cancellation as an error.
                    return
                head = raw.decode("latin-1", "replace")
                request_line, *header_lines = head.split("\r\n")
                parts = request_line.split(" ")
                if len(parts) < 2:
                    return
                method, path = parts[0], parts[1]
                headers = {}
                for line in header_lines:
                    if ":" in line:
                        name, _sep, value = line.partition(":")
                        headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or 0)
                if length:
                    await reader.readexactly(length)
                status, ctype, body = await self._dispatch(method, path)
                close = (headers.get("connection", "").lower() == "close"
                         or self._draining)
                payload = body.encode("utf-8")
                reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                          405: "Method Not Allowed",
                          429: "Too Many Requests", 500: "Internal "
                          "Server Error", 503: "Service Unavailable",
                          504: "Gateway Timeout"}.get(
                              status, "Status")
                writer.write(
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: {'close' if close else 'keep-alive'}"
                    "\r\n\r\n".encode("latin-1") + payload)
                await writer.drain()
                if close:
                    return
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - teardown race
                pass

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._sem = asyncio.Semaphore(self.max_concurrency)
        self._shutdown = asyncio.Event()
        self._start_pools()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        if self.port == 0:
            self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        """Stop serving; by default drain gracefully first.

        Drain order: stop accepting new connections, answer new queries
        on kept-alive connections with typed 503s, wait up to
        ``drain_grace_ms`` for queued + in-flight requests to reach a
        terminal status (200 / 504 per their own deadlines), then shut
        the pools down.  ``drain=False`` is the old hard stop.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            self._draining = True
            grace = time.perf_counter() + self.drain_grace_ms / 1000.0
            while ((self._inflight_count > 0 or self._waiting > 0)
                   and time.perf_counter() < grace):
                await asyncio.sleep(0.005)
        # Whatever connections remain are idle keep-alives (or past the
        # grace): cancel them so the loop can close without pending tasks.
        leftover = list(self._conn_tasks)
        for task in leftover:
            task.cancel()
        if leftover:
            await asyncio.gather(*leftover, return_exceptions=True)
        self._stop_pools()
        if self.capture is not None:
            self.capture.close()
        self._shutdown.set()

    async def run(self, ready=None) -> None:
        """Start, announce readiness and serve until SIGTERM/SIGINT."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.stop()))
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        if ready is not None:
            ready(self.host, self.port)
        await self._shutdown.wait()


def serve(db: ShardedDatabase, **kwargs) -> None:
    """Blocking convenience wrapper: run a `ServeDaemon` until killed."""

    def announce(host: str, port: int) -> None:
        print(f"serving {db.n_shards} shard(s) on http://{host}:{port} "
              f"(workers={kwargs.get('workers', 0)})", flush=True)

    daemon = ServeDaemon(db, **kwargs)
    asyncio.run(daemon.run(ready=announce))
