"""Subtree-affine index partitioning.

A shard is *not* a sub-document: renumbering children would break the
global JDewey/Dewey coordinates every stored posting and score is
expressed in.  Instead every shard keeps the whole tree and a filtered
posting set -- occurrence ``o`` lands in the shard of its level-2
ancestor (the root child whose subtree contains it), chosen as
``child_ordinal % n_shards``.  Occurrences directly on the root
(length-1 JDewey sequences, empty Dewey) land in shard 0.

Why this affinity is the right one (and term-hashing is not): the
join-based algorithms evaluate one level at a time, and at every level
``l >= 2`` a candidate's occurrences, C-node containment test and
erasure ranges all live inside a single root-child subtree.  Routing
by subtree therefore keeps the entire LCA evaluation below the root
shard-local -- a shard-local result at level >= 2 is already globally
exact -- while hashing *terms* across shards would split every join
between machines.  The root itself (level 1) aggregates occurrences
from every subtree; `repro.serve.merge` reconstructs it from cheap
per-shard summaries.

Scores are untouched by partitioning: the persistence layer bakes the
exact global TF-IDF scores into the postings at save time, so a
shard-filtered posting carries the same score it had in the unsharded
index and no per-shard document-frequency skew can occur.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..index.columnar import ColumnarPostings
from ..index.inverted import PostingList
from ..xmltree.tree import XMLTree


def subtree_shard_map(tree: XMLTree, n_shards: int) -> Dict[int, int]:
    """Level-2 JDewey number -> shard id, by root-child ordinal.

    Round-robin over the root's children in document order: child ``i``
    goes to shard ``i % n_shards``.  With skewed subtree sizes (DBLP's
    Zipf-ish venues) round-robin spreads the big subtrees across
    shards instead of clustering them the way a range split would.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return {child.jdewey[-1]: i % n_shards
            for i, child in enumerate(tree.root.children)}


def shard_of_dewey(dewey: Sequence[int], n_shards: int) -> int:
    """Shard of a node identified by its Dewey id.

    ``dewey[0]`` is the 1-based root-child index, so this agrees with
    `subtree_shard_map` (0-based ordinal mod n).  The root itself
    (empty Dewey) goes to shard 0.
    """
    if not dewey:
        return 0
    return (dewey[0] - 1) % n_shards


def _materialize_seqs(postings: ColumnarPostings) -> List[tuple]:
    """Rebuild the JDewey sequences from the column view.

    Works for both the in-memory `ColumnarPostings` (which could hand
    out ``.seqs`` directly) and the disk-backed lazy postings (which
    refuse to); re-sharding a lazily opened database must not force a
    different code path.
    """
    seqs: List[List[int]] = [[] for _ in range(len(postings))]
    for level in range(1, postings.max_len + 1):
        column = postings.column(level)
        values = column.values
        for pos, ordinal in enumerate(column.seq_idx):
            seqs[int(ordinal)].append(int(values[pos]))
    return [tuple(seq) for seq in seqs]


def partition_columnar(postings_by_term: Dict[str, ColumnarPostings],
                       tree: XMLTree,
                       n_shards: int) -> List[Dict[str, ColumnarPostings]]:
    """Split per-term columnar postings into `n_shards` filtered sets.

    Each occurrence keeps its global JDewey sequence and its exact
    global score; terms with no occurrence in a shard are simply
    absent from that shard's dict (which is what lets the front-end
    prune whole shards with an O(1) vocabulary test).
    """
    level2_shard = subtree_shard_map(tree, n_shards)
    shards: List[Dict[str, ColumnarPostings]] = [
        {} for _ in range(n_shards)]
    for term, postings in postings_by_term.items():
        seqs = _materialize_seqs(postings)
        scores = postings.scores
        per_shard_seqs: List[List[tuple]] = [[] for _ in range(n_shards)]
        per_shard_scores: List[List[float]] = [[] for _ in range(n_shards)]
        for ordinal, seq in enumerate(seqs):
            sid = 0 if len(seq) == 1 else level2_shard[seq[1]]
            per_shard_seqs[sid].append(seq)
            per_shard_scores[sid].append(float(scores[ordinal]))
        for sid in range(n_shards):
            if per_shard_seqs[sid]:
                shards[sid][term] = ColumnarPostings(
                    term, per_shard_seqs[sid], per_shard_scores[sid])
    return shards


def partition_inverted(lists_by_term: Dict[str, PostingList],
                       n_shards: int) -> List[Dict[str, PostingList]]:
    """Split per-term Dewey posting lists, consistently with
    `partition_columnar`: a node's Dewey and JDewey route to the same
    shard, so each shard's two files describe the same occurrence set."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    shards: List[Dict[str, PostingList]] = [{} for _ in range(n_shards)]
    for term, plist in lists_by_term.items():
        buckets: List[list] = [[] for _ in range(n_shards)]
        for posting in plist.postings:
            buckets[shard_of_dewey(posting.dewey, n_shards)].append(posting)
        for sid in range(n_shards):
            if buckets[sid]:
                shards[sid][term] = PostingList(term, buckets[sid])
    return shards
