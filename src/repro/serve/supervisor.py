"""Shard supervision: circuit breakers and self-healing worker pools.

Two pieces, both owned by the daemon and consulted on every shard call:

* `CircuitBreaker` -- the classic closed / open / half-open state
  machine, one per shard.  It trips on either **consecutive failures**
  or a **rolling error rate** (with a minimum sample volume so one
  early failure cannot open a cold breaker), backs off with
  seeded-jitter exponential delays (the same shape as
  `reliability.retry.RetryPolicy.delay_ms`), and lets a bounded number
  of half-open probes through before closing again.  A tripped shard
  is *skipped* -- the request degrades instead of burning its deadline
  against a sick pool.

* `ShardSupervisor` -- owns the per-shard `ProcessPoolExecutor`s.
  When a worker dies (`BrokenProcessPool`), the supervisor quarantines
  the shard, shuts the poisoned pool down without waiting, and installs
  a fresh fork-context pool.  Creating the executor object is cheap --
  fork workers spawn lazily on first submit, inheriting the preloaded
  `_SERVE_DBS` module global by copy-on-write -- so the expensive part
  of the rebuild genuinely happens off the request path, and an
  in-deadline retry typically lands on the rebuilt pool.

Both are single-threaded by design: all mutation happens on the
daemon's event loop.  Clocks and RNG seeds are injectable so every
transition is deterministic under test.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = [
    "BreakerConfig", "BreakerOpenError", "CircuitBreaker",
    "ShardSupervisor", "CLOSED", "OPEN", "HALF_OPEN", "STATE_CODES",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding for the `repro_breaker_state` gauge
#: (0 = closed, 1 = half-open, 2 = open -- higher is sicker).
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class BreakerOpenError(OSError):
    """Raised/recorded when a shard call is refused by an open breaker."""

    def __init__(self, message: str, shard: Optional[int] = None,
                 reopen_in_ms: Optional[float] = None):
        super().__init__(message)
        self.shard = shard
        self.reopen_in_ms = reopen_in_ms


@dataclass
class BreakerConfig:
    """Trip and recovery tuning for one shard's circuit breaker.

    ``consecutive_failures`` trips fast on a hard-down shard;
    ``error_rate_threshold`` over the last ``window`` outcomes (once at
    least ``min_volume`` are recorded) trips on flapping.  While open,
    probes are refused for ``open_ms * multiplier**(trips-1)`` capped at
    ``max_open_ms`` and widened by a seeded ``jitter`` fraction, so a
    fleet of breakers does not probe in lockstep.
    """

    consecutive_failures: int = 3
    error_rate_threshold: float = 0.5
    window: int = 20
    min_volume: int = 10
    open_ms: float = 250.0
    multiplier: float = 2.0
    max_open_ms: float = 30_000.0
    jitter: float = 0.2
    half_open_probes: int = 1
    seed: int = 0

    def __post_init__(self):
        if self.consecutive_failures < 1:
            raise ValueError("consecutive_failures must be >= 1")
        if not 0.0 < self.error_rate_threshold <= 1.0:
            raise ValueError("error_rate_threshold must be in (0, 1]")
        if self.window < 1 or self.min_volume < 1:
            raise ValueError("window and min_volume must be >= 1")
        if self.open_ms <= 0 or self.max_open_ms < self.open_ms:
            raise ValueError("need 0 < open_ms <= max_open_ms")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


class CircuitBreaker:
    """Closed / open / half-open breaker for a single shard."""

    def __init__(self, config: Optional[BreakerConfig] = None, *,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[Callable[[str, str], None]] = None):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._on_transition = on_transition
        self._rng = random.Random(self.config.seed)
        self._state = CLOSED
        self._consecutive = 0
        self._outcomes: deque = deque(maxlen=self.config.window)
        self._reopen_at = 0.0
        self._trip_level = 0      # consecutive trips without a close
        self._probes_inflight = 0
        self.trips_total = 0
        self.transitions: Dict[str, int] = {}

    # -- introspection -------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    def reopen_in_ms(self) -> Optional[float]:
        """Milliseconds until the next half-open probe; None unless open."""
        if self._state != OPEN:
            return None
        return max(0.0, (self._reopen_at - self._clock()) * 1000.0)

    # -- state machine -------------------------------------------------

    def _transition(self, to: str) -> None:
        if to == self._state:
            return
        self._state = to
        self.transitions[to] = self.transitions.get(to, 0) + 1
        if self._on_transition is not None:
            self._on_transition(self._state, to)

    def _open(self) -> None:
        self._trip_level += 1
        self.trips_total += 1
        cfg = self.config
        base = min(cfg.open_ms * (cfg.multiplier ** (self._trip_level - 1)),
                   cfg.max_open_ms)
        delay_ms = base * (1.0 + cfg.jitter * self._rng.random())
        self._reopen_at = self._clock() + delay_ms / 1000.0
        self._probes_inflight = 0
        self._transition(OPEN)

    def allow(self) -> bool:
        """May a shard call proceed right now?

        In half-open state a ``True`` answer *reserves* a probe slot;
        the caller must follow up with `record_success` or
        `record_failure` to release it.
        """
        if self._state == CLOSED:
            return True
        if self._state == OPEN:
            if self._clock() < self._reopen_at:
                return False
            self._transition(HALF_OPEN)
        # half-open: bounded concurrent probes
        if self._probes_inflight >= self.config.half_open_probes:
            return False
        self._probes_inflight += 1
        return True

    def record_success(self) -> None:
        if self._state == HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._trip_level = 0
            self._consecutive = 0
            self._outcomes.clear()
            self._transition(CLOSED)
            return
        self._consecutive = 0
        self._outcomes.append(True)

    def record_failure(self) -> None:
        if self._state == HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._open()
            return
        if self._state == OPEN:
            return  # late failure from a call admitted before the trip
        self._consecutive += 1
        self._outcomes.append(False)
        cfg = self.config
        if self._consecutive >= cfg.consecutive_failures:
            self._open()
            return
        if len(self._outcomes) >= cfg.min_volume:
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= cfg.error_rate_threshold:
                self._open()


# Pool lifecycle states (distinct from breaker states: a pool can be
# "ready" behind an open breaker, and vice versa).
POOL_NONE = "none"          # inline mode: no worker pools at all
POOL_READY = "ready"
POOL_REBUILDING = "rebuilding"
POOL_DOWN = "down"          # rebuild itself failed; needs operator


class ShardSupervisor:
    """Owns per-shard pools + breakers and heals broken pools.

    ``pool_factory`` is called with no arguments to build one executor;
    the daemon passes a closure that creates a fork-context
    `ProcessPoolExecutor` against the already-installed `_SERVE_DBS`.
    With ``workers == 0`` the supervisor runs in *inline* mode: no
    pools exist, `pool()` returns None, and health is breaker-only.
    """

    def __init__(self, n_shards: int, workers: int, *,
                 pool_factory: Optional[Callable[[], ProcessPoolExecutor]] = None,
                 breaker_config: Optional[BreakerConfig] = None,
                 metrics=None,
                 clock: Callable[[], float] = time.monotonic):
        self.n_shards = n_shards
        self.workers = workers
        self._pool_factory = pool_factory
        self._metrics = metrics
        cfg = breaker_config or BreakerConfig()
        # Decorrelate per-shard jitter streams while keeping each one
        # deterministic for a given (seed, shard) pair.
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                BreakerConfig(**{**cfg.__dict__, "seed": cfg.seed + sid}),
                clock=clock,
                on_transition=self._transition_recorder(sid))
            for sid in range(n_shards)
        ]
        self._pools: List[Optional[ProcessPoolExecutor]] = [None] * n_shards
        self._pool_state = [POOL_NONE if workers < 1 else POOL_DOWN
                            for _ in range(n_shards)]
        self.rebuilds: List[int] = [0] * n_shards
        if metrics is not None:
            for sid in range(n_shards):
                labels = {"shard": str(sid)}
                breaker = self.breakers[sid]
                metrics.gauge("repro_breaker_state", labels).set_fn(
                    lambda b=breaker: float(STATE_CODES[b.state]))

    def _transition_recorder(self, sid: int):
        def record(_frm: str, to: str) -> None:
            if self._metrics is not None:
                self._metrics.counter(
                    "repro_breaker_transitions_total",
                    {"shard": str(sid), "to": to}).inc()
        return record

    # -- pool lifecycle ------------------------------------------------

    def start(self) -> None:
        if self.workers < 1 or self._pool_factory is None:
            return
        for sid in range(self.n_shards):
            self._pools[sid] = self._pool_factory()
            self._pool_state[sid] = POOL_READY

    def stop(self) -> None:
        for sid, pool in enumerate(self._pools):
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            self._pools[sid] = None
            if self._pool_state[sid] != POOL_NONE:
                self._pool_state[sid] = POOL_DOWN

    def pool(self, sid: int) -> Optional[ProcessPoolExecutor]:
        """The shard's executor, or None while rebuilding / down / inline."""
        if self._pool_state[sid] != POOL_READY:
            return None
        return self._pools[sid]

    def pool_state(self, sid: int) -> str:
        return self._pool_state[sid]

    def breaker(self, sid: int) -> CircuitBreaker:
        return self.breakers[sid]

    def note_pool_broken(self, sid: int) -> None:
        """Quarantine a poisoned pool and install a fresh one.

        The broken executor is shut down without waiting (its workers
        are already dead or doomed); the replacement is just an object
        allocation -- its fork workers spawn lazily on the next submit,
        so the rebuild cost is paid off the critical path.
        """
        if self._pool_state[sid] == POOL_NONE:
            return
        broken, self._pools[sid] = self._pools[sid], None
        self._pool_state[sid] = POOL_REBUILDING
        if broken is not None:
            try:
                broken.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        try:
            self._pools[sid] = self._pool_factory()
        except Exception:
            self._pool_state[sid] = POOL_DOWN
            raise
        self._pool_state[sid] = POOL_READY
        self.rebuilds[sid] += 1
        if self._metrics is not None:
            self._metrics.counter("repro_pool_rebuilds_total",
                                  {"shard": str(sid)}).inc()

    # -- health --------------------------------------------------------

    def shard_state(self, sid: int) -> str:
        """``healthy`` | ``degraded`` | ``down`` for one shard.

        Down means no way to serve the shard at all (pool dead and not
        coming back).  Degraded means temporarily skipped or probing:
        open/half-open breaker, or a pool mid-rebuild.
        """
        pool = self._pool_state[sid]
        if pool == POOL_DOWN:
            return "down"
        breaker = self.breakers[sid].state
        if pool == POOL_REBUILDING or breaker != CLOSED:
            return "degraded"
        return "healthy"

    def health(self) -> Dict[str, Dict[str, object]]:
        """Per-shard health report, JSON-shaped for `/healthz`."""
        report: Dict[str, Dict[str, object]] = {}
        for sid in range(self.n_shards):
            breaker = self.breakers[sid]
            entry: Dict[str, object] = {
                "state": self.shard_state(sid),
                "breaker": breaker.state,
                "pool": self._pool_state[sid],
                "rebuilds": self.rebuilds[sid],
            }
            reopen = breaker.reopen_in_ms()
            if reopen is not None:
                entry["reopen_in_ms"] = round(reopen, 3)
            report[str(sid)] = entry
        return report

    def overall(self) -> str:
        """``ok`` | ``degraded`` | ``down`` for the whole daemon."""
        states = [self.shard_state(sid) for sid in range(self.n_shards)]
        if states and all(s == "down" for s in states):
            return "down"
        if any(s != "healthy" for s in states):
            return "degraded"
        return "ok"
