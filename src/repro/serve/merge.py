"""Exact cross-shard merging: the root protocol and `ShardedDatabase`.

Subtree-affine partitioning (`repro.serve.sharding`) makes every result
at level >= 2 shard-local, so merging shard answers is mostly a sorted
union.  The one node whose evaluation genuinely spans shards is the
document root, and this module reconstructs it exactly from per-shard
summaries instead of shipping postings around:

*Root protocol.*  At root evaluation an occurrence is erased if and
only if its level-2 ancestor is a C-node (a root child whose subtree
contains every query term): containment is monotone up the tree, so a
C-node at any deeper level forces its level-2 ancestor to be one too,
and the range rule then erases the whole subtree's occurrences.
Root-level occurrences (length-1 sequences) have no level-2 ancestor
and are never erased.  Because a level-2 subtree's occurrences live in
exactly one shard, each shard can decide *locally* which of its level-2
children are C-nodes and what the best surviving ("free") damped score
per term is.  `compute_root_info` extracts that summary from one
column-2 decompression per term; `merge_root` folds the summaries:

* ELCA -- the root qualifies iff every term keeps a free occurrence
  somewhere; its witness per term is the max free damped score across
  shards.
* SLCA -- the root qualifies iff every term occurs and *no* shard has
  a C-node (any deeper LCA would disqualify the root); with no C-nodes
  every occurrence is free, so the same witnesses apply.

`ShardedDatabase` wraps N per-shard `XMLDatabase` objects (each holding
the full tree and its filtered postings) behind the `search` /
`search_topk` / `search_stream` / `search_batch` surface.  Top-K runs
as a rank join over the per-shard best-first streams: each stream is
pulled only while it holds the globally best head, so consuming k
results does only the per-shard work k results need.  Only the
join-family algorithms are served -- the baselines index the full tree
and would be wrong against shard-filtered postings.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Union

import numpy as np

from ..algorithms.base import (ELCA, SLCA, EmptyResultError, ExecutionStats,
                               SearchResult, TopKResult, check_semantics)
from ..algorithms.topk_keyword import TopKKeywordSearch, _StreamState
from ..cache import QueryCache, result_key
from ..obs.account import accounting, fold_into_stats
from ..reliability.deadline import Deadline
from ..scoring.ranking import RankingModel

_EXHAUSTED = object()


@dataclass
class RootInfo:
    """One shard's contribution to the root result.

    ``present`` -- query terms with at least one occurrence in the
    shard; ``has_ca`` -- whether any of the shard's level-2 children
    contains *all* query terms (a C-node); ``free_max`` -- per term,
    the best damped-at-root score over occurrences not erased by a
    C-node (absent when the term has no free occurrence here).
    """

    present: FrozenSet[str]
    has_ca: bool = False
    free_max: Dict[str, float] = field(default_factory=dict)


def compute_root_info(index, terms: Sequence[str],
                      ranking: RankingModel) -> RootInfo:
    """Summarize one shard's postings for the root protocol.

    Touches only per-term ``lengths`` / ``scores`` (decoded at block
    parse) and column 2, so against a lazy disk index the cost is one
    column decompression per term -- far below a full join.
    """
    unique = list(dict.fromkeys(terms))
    present = frozenset(t for t in unique if t in index)
    if not present:
        return RootInfo(present)
    postings = {t: index.term_postings(t) for t in present}
    # Level-2 C-nodes: root children whose subtree has every term.  A
    # shard missing any term has none (its subtrees hold the whole of
    # their occurrence sets, so absence here is absence, full stop).
    ca = np.empty(0, dtype=np.int64)
    if len(present) == len(unique):
        ca = postings[unique[0]].column(2).distinct
        for term in unique[1:]:
            if not len(ca):
                break
            ca = np.intersect1d(ca, postings[term].column(2).distinct,
                                assume_unique=True)
    free_max: Dict[str, float] = {}
    for term in present:
        plist = postings[term]
        lengths = np.asarray(plist.lengths, dtype=np.int64)
        scores = np.asarray(plist.scores, dtype=np.float64)
        if not len(lengths):
            continue
        factors = np.asarray([ranking.damping(delta)
                              for delta in range(int(lengths.max()))])
        damped = scores * factors[lengths - 1]
        if len(ca):
            column2 = plist.column(2)
            level2 = np.full(len(lengths), -1, dtype=np.int64)
            level2[column2.seq_idx] = column2.values
            free = (lengths == 1) | ~np.isin(level2, ca)
        else:
            free = np.ones(len(lengths), dtype=bool)
        if free.any():
            free_max[term] = float(damped[free].max())
    return RootInfo(present, has_ca=bool(len(ca)), free_max=free_max)


def merge_root(infos: Sequence[RootInfo], terms: Sequence[str],
               semantics: str, ranking: RankingModel,
               tree) -> Optional[SearchResult]:
    """Fold per-shard summaries into the root's global result (or None).

    Exact by the erasure invariant in the module docstring; witnesses
    come out aligned with the caller's term order, matching the
    engines' `SearchResult.witness_scores` contract.
    """
    required = set(terms)
    covered = set()
    for info in infos:
        covered |= info.present
    if not required <= covered:
        return None
    if semantics == SLCA and any(info.has_ca for info in infos):
        return None
    witnesses: Dict[str, float] = {}
    for info in infos:
        for term, value in info.free_max.items():
            if value > witnesses.get(term, float("-inf")):
                witnesses[term] = value
    if not required <= set(witnesses):
        # Every occurrence of some term sits under a C-node: the root's
        # erased view no longer covers the query (ELCA only -- SLCA
        # bailed out above on the C-node itself).
        return None
    per_keyword = [witnesses[t] for t in terms]
    return SearchResult(tree.root, 1,
                        score=ranking.score_result(per_keyword),
                        witness_scores=tuple(per_keyword))


class ShardedDatabase:
    """N subtree-affine shards behind the single-database search API.

    Construction does not copy the tree: every shard `XMLDatabase`
    references the same frozen `XMLTree`, only the postings differ.
    The facade carries its own result `QueryCache` for merged answers;
    per-shard postings caches live inside the shard databases.

    Supported algorithms are the join family -- ``join`` for complete
    evaluation, ``topk-join`` for top-K.  The in-memory baselines
    (``stack`` / ``index`` / ``oracle`` / ``rdil``) re-index the full
    tree on first touch and would silently ignore the partitioning, so
    they are rejected instead of answered wrongly.
    """

    def __init__(self, tree, shard_dbs: Sequence, manifest: Optional[dict] = None,
                 cache: Optional[QueryCache] = None,
                 result_cache_size: int = 1024):
        if not shard_dbs:
            raise ValueError("a sharded database needs at least one shard")
        self.tree = tree
        self.shards = list(shard_dbs)
        self.manifest = dict(manifest) if manifest else {
            "count": len(self.shards), "strategy": "root-child-mod"}
        first = self.shards[0]
        self.tokenizer = first.tokenizer
        self.ranking = first.ranking
        self.metrics = first.metrics
        self.cache = cache if cache is not None else QueryCache(
            0, result_cache_size)
        if self.cache.metrics is None:
            self.cache.bind_metrics(self.metrics)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_database(cls, db, n_shards: int, **kwargs) -> "ShardedDatabase":
        """Partition a built `XMLDatabase` in memory (no disk roundtrip).

        The shard databases receive eagerly installed columnar indexes
        built from the filtered postings; scores are the global ones
        already baked into ``db.columnar_index``.
        """
        from ..api import XMLDatabase
        from ..index.columnar import ColumnarIndex
        from .sharding import partition_columnar

        source = db.columnar_index
        postings = {t: source.term_postings(t) for t in source.vocabulary}
        parts = partition_columnar(postings, db.tree, n_shards)
        shard_dbs = []
        for part in parts:
            sdb = XMLDatabase(db.tree, tokenizer=db.tokenizer,
                              ranking=db.ranking, metrics=db.metrics)
            sdb._columnar = ColumnarIndex.from_postings(
                db.tree, part, db.tokenizer, db.ranking, source.n_docs)
            shard_dbs.append(sdb)
        return cls(db.tree, shard_dbs, **kwargs)

    @classmethod
    def open(cls, path: str, **kwargs) -> "ShardedDatabase":
        """Open a sharded database directory (`save_database(shards=N)`)."""
        from ..diskdb import load_database

        db = load_database(path, **kwargs)
        if not isinstance(db, cls):
            raise ValueError(f"{path!r} is not sharded "
                             "(its meta.json has no shard manifest)")
        return db

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return len(self.tree)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardedDatabase shards={self.n_shards} "
                f"nodes={len(self.tree)}>")

    # ------------------------------------------------------------------
    # shard selection
    # ------------------------------------------------------------------

    def _terms(self, query) -> List[str]:
        return self.shards[0]._terms(query)

    def _check_terms_exist(self, terms: Sequence[str]) -> None:
        missing = [t for t in terms
                   if not any(t in db.columnar_index for db in self.shards)]
        if missing:
            raise EmptyResultError(
                f"query terms with no occurrences: {missing}")

    def _covered(self, terms: Sequence[str]) -> bool:
        """Every term occurs somewhere (else the result set is empty)."""
        return all(any(t in db.columnar_index for db in self.shards)
                   for t in terms)

    def _qualifying(self, terms: Sequence[str]) -> List:
        """Shards that can hold results below the root: a level >= 2
        result's subtree is entirely inside one shard, so a shard
        missing any term is pruned with O(1) vocabulary tests -- the
        scatter never touches its postings."""
        return [db for db in self.shards
                if all(t in db.columnar_index for t in terms)]

    def _touched(self, terms: Sequence[str]) -> List:
        """Shards holding at least one query term: they contribute root
        witnesses even when pruned from the subtree scatter."""
        return [db for db in self.shards
                if any(t in db.columnar_index for t in terms)]

    def _root_result(self, terms: Sequence[str],
                     semantics: str) -> Optional[SearchResult]:
        infos = [compute_root_info(db.columnar_index, terms, self.ranking)
                 for db in self._touched(terms)]
        return merge_root(infos, terms, semantics, self.ranking, self.tree)

    # ------------------------------------------------------------------
    # complete evaluation
    # ------------------------------------------------------------------

    def search(self, query, semantics: str = ELCA, algorithm: str = "join",
               strict: bool = False, use_cache: bool = True,
               deadline: Optional[Union[Deadline, float]] = None,
               timeout_ms: Optional[float] = None,
               on_deadline: Optional[str] = None,
               with_stats: bool = False):
        """Complete result set in document order -- same contract as
        `XMLDatabase.search`, scatter-gathered across the shards.

        Under a ``partial`` deadline each shard returns what its
        evaluated levels proved; the union is returned with
        ``stats.partial`` set and the root is skipped unless the budget
        survived to compute it (a partial union stays a subset of the
        unbounded run's results either way).
        """
        check_semantics(semantics)
        if algorithm != "join":
            raise ValueError(
                "a sharded database serves algorithm='join' for complete "
                f"evaluation, not {algorithm!r} (the in-memory baselines "
                "would re-index the full tree and ignore the shards)")
        deadline = Deadline.coerce(deadline, timeout_ms, on_deadline)
        terms = self._terms(query)
        if strict:
            self._check_terms_exist(terms)
        key = result_key(terms, semantics, algorithm, None)
        stats = ExecutionStats()
        if use_cache:
            cached = self.cache.get_results(key)
            if cached is not None:
                stats.cache_hits = 1
                return (cached, stats) if with_stats else cached
        results: List[SearchResult] = []
        if self._covered(terms):
            # The shard calls account themselves (their nested account
            # shadows this one); this account catches the root
            # protocol's column touches, which run in the facade.
            with accounting() as account:
                for db in self._qualifying(terms):
                    shard_results, shard_stats = db._complete_results(
                        terms, semantics, "join", deadline=deadline)
                    stats += shard_stats
                    results.extend(r for r in shard_results if r.level > 1)
                if deadline is not None and deadline.expired():
                    # partial policy (raise would have thrown above): the
                    # root summary is cheap but unbudgeted work; skip it.
                    stats.partial = True
                else:
                    root = self._root_result(terms, semantics)
                    if root is not None:
                        results.append(root)
            fold_into_stats(stats, account)
            results.sort(key=lambda r: r.node.dewey)
        if use_cache:
            self.cache.put_results(key, results, partial=stats.partial)
            stats.cache_misses += 1
        return (results, stats) if with_stats else results

    # ------------------------------------------------------------------
    # top-K / streaming
    # ------------------------------------------------------------------

    def _merged_stream(self, terms: Sequence[str], semantics: str,
                       stats: ExecutionStats, state: _StreamState,
                       target_k: int = 2 ** 30,
                       deadline: Optional[Deadline] = None):
        """Rank-join over per-shard best-first streams.

        Classic k-way merge with lazy pulls: a shard's stream advances
        only while its head is the global best, so a shard whose best
        remaining score cannot enter the global top-K is never pulled
        again -- that is the issue's "stop pulling from a shard" rule,
        enforced structurally rather than by an explicit bound check.

        Per-shard deadline partials fold into one consistent guarantee:
        when a shard stops early with bound ``b``, every unseen result
        of that shard scores <= ``b``, so the merge may only emit heads
        scoring > max partial bound; the first head at or below it ends
        the stream with ``state.partial`` set and ``state.bound`` the
        max bound.  Shard-local level-1 results are dropped (a shard
        sees only its slice of the root's occurrences) and replaced by
        the exact `merge_root` reconstruction, budgeted one extra slot
        in ``target_k``.
        """
        if not self._covered(terms):
            state.finished = True
            return
        shard_states: List[_StreamState] = []
        streams = []
        for db in self._qualifying(terms):
            shard_state = _StreamState()
            shard_states.append(shard_state)
            engine = TopKKeywordSearch(db.columnar_index, tracer=db.tracer)
            raw = engine.stream(terms, semantics, stats=stats,
                                target_k=min(target_k + 1, 2 ** 30),
                                _state=shard_state, deadline=deadline)
            streams.append(filter(lambda r: r.level > 1, raw))
        partial_bound: Optional[float] = None

        def note_exhausted(shard_state: _StreamState) -> None:
            nonlocal partial_bound
            if shard_state.partial:
                bound = (shard_state.bound if shard_state.bound is not None
                         else float("inf"))
                if partial_bound is None or bound > partial_bound:
                    partial_bound = bound

        heap = []
        for idx, stream in enumerate(streams):
            head = next(stream, _EXHAUSTED)
            if head is _EXHAUSTED:
                note_exhausted(shard_states[idx])
            else:
                heapq.heappush(heap, ((-head.score, head.node.dewey),
                                      idx, head))
        root = self._root_result(terms, semantics)
        if root is not None:
            heapq.heappush(heap, ((-root.score, root.node.dewey), -1, root))
        emitted = 0
        while heap:
            _key, idx, result = heapq.heappop(heap)
            if partial_bound is not None and result.score <= partial_bound:
                state.partial = True
                state.bound = partial_bound
                return
            yield result
            emitted += 1
            if emitted >= target_k:
                return
            if idx >= 0:
                head = next(streams[idx], _EXHAUSTED)
                if head is _EXHAUSTED:
                    note_exhausted(shard_states[idx])
                else:
                    heapq.heappush(heap, ((-head.score, head.node.dewey),
                                          idx, head))
        if partial_bound is not None:
            state.partial = True
            state.bound = partial_bound
        else:
            state.finished = True

    def search_topk(self, query, k: int, semantics: str = ELCA,
                    algorithm: str = "topk-join", strict: bool = False,
                    deadline: Optional[Union[Deadline, float]] = None,
                    timeout_ms: Optional[float] = None,
                    on_deadline: Optional[str] = None) -> TopKResult:
        """Top-`k` best-first across all shards -- same contract as
        `XMLDatabase.search_topk` with ``algorithm="topk-join"``.

        Complete runs match the unsharded engine result for result
        (ids, scores, order and ``bound``); a run cut by a ``partial``
        deadline keeps the engine guarantee -- every returned result is
        exact and nothing unreturned scores above ``bound`` -- and is
        conservatively marked partial even when k results were found.
        """
        check_semantics(semantics)
        if algorithm != "topk-join":
            raise ValueError(
                "a sharded database serves algorithm='topk-join' for "
                f"top-K, not {algorithm!r}")
        deadline = Deadline.coerce(deadline, timeout_ms, on_deadline)
        stats = ExecutionStats()
        if k <= 0:
            return TopKResult([], stats)
        terms = self._terms(query)
        if strict:
            self._check_terms_exist(terms)
        state = _StreamState()
        # The merged stream drives the shard engines directly (no
        # XMLDatabase entry point in between), so activate the account
        # here: per-shard column work and the root protocol both land
        # on this query's stats.
        with accounting() as account:
            generator = self._merged_stream(terms, semantics, stats, state,
                                            target_k=k, deadline=deadline)
            results = list(generator)
            generator.close()
        fold_into_stats(stats, account)
        stats.partial = state.partial
        return TopKResult(results, stats,
                          terminated_early=not state.finished,
                          partial=state.partial, bound=state.bound)

    def search_stream(self, query, semantics: str = ELCA,
                      deadline: Optional[Union[Deadline, float]] = None,
                      timeout_ms: Optional[float] = None,
                      on_deadline: Optional[str] = None):
        """Yield all results best-first, lazily, across the shards
        (`XMLDatabase.search_stream` contract)."""
        deadline = Deadline.coerce(deadline, timeout_ms, on_deadline)
        return self._merged_stream(self._terms(query),
                                   check_semantics(semantics),
                                   ExecutionStats(), _StreamState(),
                                   deadline=deadline)

    # ------------------------------------------------------------------
    # batch (CLI serve-batch compatibility)
    # ------------------------------------------------------------------

    def search_batch(self, queries: Sequence, semantics: str = ELCA,
                     k: Optional[int] = None,
                     algorithm: Optional[str] = None,
                     threads: Optional[int] = None,
                     processes: Optional[int] = None,
                     executor=None,
                     with_stats: bool = False,
                     use_cache: bool = True,
                     deadline: Optional[Union[Deadline, float]] = None,
                     timeout_ms: Optional[float] = None,
                     on_deadline: Optional[str] = None,
                     raise_on_error: bool = False):
        """Evaluate a workload sequentially against the shard set.

        Same return shape as `XMLDatabase.search_batch` (a
        `BatchResult` with ``summary`` / ``latencies_ms`` /
        ``elapsed_ms`` / ``errors``).  ``threads`` / ``processes`` /
        ``executor`` are accepted for CLI compatibility but evaluation
        stays in-process -- the parallel serving path for a sharded
        database is the daemon (`repro.serve.daemon`), whose workers
        fan out per shard rather than per query.
        """
        from ..api import BatchResult

        check_semantics(semantics)
        deadline = Deadline.coerce(deadline, timeout_ms, on_deadline)
        if algorithm is None:
            algorithm = "join" if k is None else "topk-join"
        batch_start = time.perf_counter()
        entries, latencies = [], []
        errors: Dict[int, BaseException] = {}
        summary = ExecutionStats()
        for index, query in enumerate(queries):
            start = time.perf_counter()
            try:
                if k is None:
                    results, stats = self.search(
                        query, semantics, algorithm, use_cache=use_cache,
                        deadline=deadline, with_stats=True)
                else:
                    top = self.search_topk(query, k, semantics, algorithm,
                                           deadline=deadline)
                    results, stats = list(top.results), top.stats
                summary.merge(stats)
            except Exception as exc:
                if raise_on_error:
                    raise
                errors[index] = exc
                results, stats = None, ExecutionStats()
            latencies.append((time.perf_counter() - start) * 1000.0)
            entries.append((results, stats) if with_stats else results)
        batch = BatchResult(entries)
        batch.summary = summary
        batch.latencies_ms = latencies
        batch.elapsed_ms = (time.perf_counter() - batch_start) * 1000.0
        batch.errors = errors
        return batch

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        return self.cache.stats()

    def clear_caches(self) -> None:
        """Drop the merged-result cache and every shard's caches (the
        daemon's index-reload hook)."""
        self.cache.clear()
        for db in self.shards:
            db.cache.clear()
