"""Chaos harness for the serve path (`docs/RELIABILITY.md`).

`ChaosInjector` decides, per shard call, whether to inject a fault --
in the spirit of `reliability.faults.FaultInjector` but aimed at the
*pool boundary* instead of the disk:

* ``worker-kill``    the worker SIGKILLs itself mid-task, poisoning the
                     shard's `ProcessPoolExecutor` (exercises pool
                     supervision + rebuild).
* ``shard-error``    the worker raises a transient `InjectedFault`
                     (exercises in-deadline retries + breakers).
* ``shard-latency``  the worker sleeps before evaluating (exercises
                     hedged requests and deadline debiting).
* ``byte-fault``     the worker returns a structurally corrupt reply
                     (exercises parent-side payload validation).

Decisions are made in the **parent** and shipped to the worker inside
the payload, one seeded RNG stream *per shard*, so a run is
reproducible regardless of how the event loop interleaves concurrent
shard calls.  A ``script`` (list of kinds / Nones, consumed per shard)
overrides the RNG entirely for deterministic tests.

`run_chaos_drive` is the harness proper: it boots a daemon around a
`ShardedDatabase` with chaos enabled, drives a closed-loop workload,
waits for the daemon to heal, and returns a report asserting the
availability / degraded-marking / deadline / respawn invariants that
the bench chaos section and ``repro chaos`` both gate on.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import signal
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..reliability.errors import InjectedFault

__all__ = [
    "WORKER_KILL", "SHARD_ERROR", "SHARD_LATENCY", "BYTE_FAULT",
    "CHAOS_KINDS", "ChaosInjector", "apply_worker_fault", "corrupt_light",
    "sample_queries", "run_chaos_drive", "format_chaos_report",
]

WORKER_KILL = "worker-kill"
SHARD_ERROR = "shard-error"
SHARD_LATENCY = "shard-latency"
BYTE_FAULT = "byte-fault"

#: Roll order is part of the seeded contract -- do not reorder.
CHAOS_KINDS = (WORKER_KILL, SHARD_ERROR, SHARD_LATENCY, BYTE_FAULT)

_SPEC_KEYS = {"kill", "error", "latency", "byte"}


class ChaosInjector:
    """Seeded per-shard-call fault decisions for the serve path.

    Each shard gets an independent RNG stream derived from ``seed`` so
    concurrent scatter legs cannot perturb each other's schedules.  Per
    call, one uniform draw per kind in `CHAOS_KINDS` order; the first
    that lands under its rate wins (at most one fault per call).
    """

    def __init__(self, kill_rate: float = 0.0, error_rate: float = 0.0,
                 latency_rate: float = 0.0, latency_ms: float = 25.0,
                 byte_fault_rate: float = 0.0, seed: int = 0,
                 script: Optional[Sequence[Optional[str]]] = None,
                 metrics=None):
        rates = {WORKER_KILL: kill_rate, SHARD_ERROR: error_rate,
                 SHARD_LATENCY: latency_rate, BYTE_FAULT: byte_fault_rate}
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate must be in [0, 1]: {rate!r}")
        if latency_ms < 0:
            raise ValueError("latency_ms must be >= 0")
        if script is not None:
            for kind in script:
                if kind is not None and kind not in CHAOS_KINDS:
                    raise ValueError(f"unknown scripted fault: {kind!r}")
        self.rates = rates
        self.latency_ms = float(latency_ms)
        self.seed = seed
        self.script = list(script) if script is not None else None
        self.metrics = metrics
        self._rngs: Dict[int, random.Random] = {}
        self._scripts: Dict[int, List[Optional[str]]] = {}
        self.injected: Dict[str, int] = {kind: 0 for kind in CHAOS_KINDS}

    @classmethod
    def from_spec(cls, spec: str, metrics=None) -> "ChaosInjector":
        """Parse ``kill=0.05,latency=0.2,latency-ms=50,seed=3`` syntax.

        Keys: ``kill``, ``error``, ``latency``, ``byte`` (rates in
        [0, 1]), plus ``latency-ms`` and ``seed``.
        """
        kwargs: Dict[str, float] = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ValueError(f"bad chaos spec element {part!r} "
                                 "(want key=value)")
            key, _, value = part.partition("=")
            key = key.strip()
            if key in _SPEC_KEYS:
                kwargs[{"kill": "kill_rate", "error": "error_rate",
                        "latency": "latency_rate",
                        "byte": "byte_fault_rate"}[key]] = float(value)
            elif key == "latency-ms":
                kwargs["latency_ms"] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(f"unknown chaos spec key {key!r} (want "
                                 "kill/error/latency/byte/latency-ms/seed)")
        return cls(metrics=metrics, **kwargs)

    def describe(self) -> Dict[str, float]:
        out = {"kill": self.rates[WORKER_KILL],
               "error": self.rates[SHARD_ERROR],
               "latency": self.rates[SHARD_LATENCY],
               "byte": self.rates[BYTE_FAULT],
               "latency_ms": self.latency_ms, "seed": self.seed}
        return out

    def _record(self, kind: str) -> None:
        self.injected[kind] += 1
        if self.metrics is not None:
            self.metrics.counter("repro_chaos_injected_total",
                                 {"kind": kind}).inc()

    def next_fault(self, sid: int) -> Optional[str]:
        """Fault kind for the next call against shard `sid`, or None."""
        if self.script is not None:
            queue = self._scripts.setdefault(sid, list(self.script))
            if not queue:
                return None
            kind = queue.pop(0)
            if kind is not None:
                self._record(kind)
            return kind
        rng = self._rngs.setdefault(
            sid, random.Random(self.seed * 1_000_003 + sid))
        for kind in CHAOS_KINDS:
            if rng.random() < self.rates[kind]:
                self._record(kind)
                return kind
        return None

    def reset(self) -> None:
        self._rngs.clear()
        self._scripts.clear()
        self.injected = {kind: 0 for kind in CHAOS_KINDS}


def apply_worker_fault(fault: Optional[Tuple[str, float]]) -> Optional[str]:
    """Execute a parent-decided fault directive inside a pool worker.

    Returns the fault kind when it must be applied *after* evaluation
    (``byte-fault``), None otherwise.  Called at worker entry.
    """
    if fault is None:
        return None
    kind, latency_ms = fault
    if kind == WORKER_KILL:
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == SHARD_ERROR:
        raise InjectedFault("chaos: injected shard error", kind=SHARD_ERROR)
    elif kind == SHARD_LATENCY:
        time.sleep(latency_ms / 1000.0)
    elif kind == BYTE_FAULT:
        return kind
    return None


def corrupt_light(light: List[tuple]) -> List[tuple]:
    """Simulate a byte-fault on a shard reply: truncate one entry so the
    parent's structural validation rejects it (a *detectable* corruption
    -- silent wrong-answer corruption is out of scope without payload
    checksums, which `docs/RELIABILITY.md` notes as the boundary)."""
    if not light:
        return [("\x00garbage",)]
    out = list(light)
    idx = len(out) // 2
    out[idx] = tuple(out[idx][:2])
    return out


# ---------------------------------------------------------------------------
# Drive harness: boot a chaos-enabled daemon, load it, assert it heals.
# ---------------------------------------------------------------------------

def sample_queries(sharded, count: int = 8, seed: int = 0) -> List[str]:
    """Build a small workload from the corpus itself: frequent terms
    present in *every* shard (so queries exercise the full fan-out),
    paired up two per query."""
    dfs: Dict[str, int] = {}
    common: Optional[set] = None
    for shard in sharded.shards:
        idx = shard.columnar_index
        vocab = set(idx.vocabulary)
        common = vocab if common is None else (common & vocab)
        for term in vocab:
            dfs[term] = dfs.get(term, 0) + len(idx.term_postings(term))
    pool = sorted(common or dfs, key=lambda t: (-dfs[t], t))[:max(4, count)]
    if not pool:
        raise ValueError("corpus has no indexable terms to sample")
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        a, b = rng.choice(pool), rng.choice(pool)
        queries.append(a if a == b else f"{a} {b}")
    return queries


class _DaemonThread:
    """Run a ServeDaemon on a private event loop thread (context
    manager).  Mirrors the bench runner but lives here so the chaos
    verb / tests need not import `repro.bench`."""

    def __init__(self, db, **kwargs):
        import asyncio

        from ..obs.metrics import MetricsRegistry
        from .daemon import ServeDaemon
        kwargs.setdefault("port", 0)
        self.metrics = kwargs.setdefault("metrics", MetricsRegistry())
        self.daemon = ServeDaemon(db, **kwargs)
        self._asyncio = asyncio
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self._asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.daemon.start())
        self._ready.set()
        self.loop.run_forever()

    def __enter__(self):
        self.thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("chaos daemon failed to start")
        return self

    def __exit__(self, *exc):
        self._asyncio.run_coroutine_threadsafe(
            self.daemon.stop(), self.loop).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(30)
        self.loop.close()


def _drive_chaos(port: int, paths: List[str], clients: int
                 ) -> List[Tuple[int, float, Optional[dict]]]:
    """Closed-loop keep-alive clients; returns (status, wall_ms, body)
    per request, bodies parsed so degraded marking can be audited."""
    results: List[Tuple[int, float, Optional[dict]]] = []
    lock = threading.Lock()

    def worker(chunk: List[str]) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        local = []
        try:
            for path in chunk:
                t0 = time.perf_counter()
                try:
                    conn.request("GET", path)
                    resp = conn.getresponse()
                    raw = resp.read()
                    status = resp.status
                except Exception:
                    conn.close()
                    conn = http.client.HTTPConnection(
                        "127.0.0.1", port, timeout=60)
                    status, raw = 599, b""
                wall_ms = (time.perf_counter() - t0) * 1000.0
                try:
                    body = json.loads(raw) if raw else None
                except ValueError:
                    body = None
                local.append((status, wall_ms, body))
        finally:
            conn.close()
        with lock:
            results.extend(local)

    threads = [threading.Thread(target=worker, args=(paths[i::clients],))
               for i in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    pos = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[pos]


def run_chaos_drive(sharded, chaos: ChaosInjector, queries: List[str], *,
                    workers: int = 1, k: int = 10, requests: int = 200,
                    clients: int = 4, timeout_ms: float = 1500.0,
                    availability_target: float = 0.99,
                    settle_s: float = 10.0, daemon_kwargs: Optional[dict] = None
                    ) -> dict:
    """Boot a chaos-enabled daemon, drive it, wait for it to heal, and
    report against the self-healing acceptance invariants:

    * availability >= ``availability_target`` (429 sheds excluded, per
      `obs.slo` accounting);
    * every degraded 200 is marked ``degraded`` and carries a finite
      ``bound``;
    * no accepted request outlives its deadline budget
      (p99 <= 1.5x deadline + 100ms scheduling slack);
    * all killed pools are respawned and every breaker re-closes by end
      of run (``healed``), with rebuild counts matching the kills.

    Returns a report dict with ``ok`` / ``violations``; raises nothing.
    """
    kwargs = dict(daemon_kwargs or {})
    kwargs.setdefault("result_cache_size", 0)  # every request evaluates
    kwargs.setdefault("default_timeout_ms", timeout_ms)
    kwargs.setdefault("max_concurrency", max(2, clients))
    kwargs.setdefault("queue_limit", max(8, 4 * clients))
    kwargs["workers"] = workers
    kwargs["chaos"] = chaos
    paths = []
    for i in range(requests):
        q = queries[i % len(queries)].replace(" ", "+")
        paths.append(f"/topk?q={q}&k={k}")
    with _DaemonThread(sharded, **kwargs) as runner:
        port = runner.daemon.port
        t0 = time.perf_counter()
        outcomes = _drive_chaos(port, paths, clients)
        wall_s = time.perf_counter() - t0

        # Heal: probe with light traffic so half-open breakers get the
        # successes they need to close, and pools prove they respawned.
        probe = paths[0]
        healed = False
        deadline = time.monotonic() + settle_s
        while time.monotonic() < deadline:
            sup = runner.daemon.supervisor
            if sup.overall() == "ok":
                healed = True
                break
            _drive_chaos(port, [probe], 1)
            time.sleep(0.05)
        health = runner.daemon.supervisor.health()
        overall = runner.daemon.supervisor.overall()
        rebuilds = sum(runner.daemon.supervisor.rebuilds)
        trips = sum(b.trips_total for b in runner.daemon.supervisor.breakers)

    statuses = [s for s, _, _ in outcomes]
    total = len(statuses)
    shed = sum(1 for s in statuses if s == 429)
    bad = sum(1 for s in statuses if s == 504 or s >= 500)
    accepted = total - shed
    availability = 1.0 if accepted == 0 else (accepted - bad) / accepted
    accepted_lat = [ms for s, ms, _ in outcomes if s not in (429,)]
    degraded_bodies = [b for s, _, b in outcomes
                       if s == 200 and b and b.get("degraded")]
    unbounded = sum(1 for b in degraded_bodies
                    if b.get("bound") is None or not b.get("partial"))
    p99 = _percentile(accepted_lat, 0.99)
    deadline_budget_ms = 1.5 * timeout_ms + 100.0

    violations: List[str] = []
    if availability < availability_target:
        violations.append(
            f"availability {availability:.4f} < {availability_target}")
    if unbounded:
        violations.append(
            f"{unbounded} degraded responses missing a conservative bound")
    if p99 > deadline_budget_ms:
        violations.append(
            f"accepted p99 {p99:.1f}ms outlives deadline budget "
            f"{deadline_budget_ms:.0f}ms")
    if not healed:
        violations.append(f"daemon did not heal within {settle_s}s "
                          f"(overall={overall}, health={health})")
    if chaos.injected[WORKER_KILL] > 0 and rebuilds < 1:
        violations.append("workers were killed but no pool was rebuilt")

    return {
        "chaos": chaos.describe(),
        "requests": total,
        "wall_s": round(wall_s, 3),
        "qps": round(total / wall_s, 2) if wall_s > 0 else 0.0,
        "statuses": {str(s): statuses.count(s) for s in sorted(set(statuses))},
        "shed": shed,
        "bad": bad,
        "degraded_responses": len(degraded_bodies),
        "availability": round(availability, 6),
        "availability_target": availability_target,
        "accepted_p50_ms": round(_percentile(accepted_lat, 0.50), 3),
        "accepted_p99_ms": round(p99, 3),
        "deadline_budget_ms": deadline_budget_ms,
        "injected": dict(chaos.injected),
        "pool_rebuilds": rebuilds,
        "breaker_trips": trips,
        "healed": healed,
        "health": health,
        "violations": violations,
        "ok": not violations,
    }


def format_chaos_report(report: dict) -> str:
    lines = [
        "chaos drive: %(requests)d requests in %(wall_s).2fs "
        "(%(qps).1f qps)" % report,
        "  injected : " + ", ".join(
            f"{k}={v}" for k, v in report["injected"].items() if v)
        if any(report["injected"].values()) else "  injected : none",
        "  statuses : " + ", ".join(
            f"{k}={v}" for k, v in report["statuses"].items()),
        f"  availability: {report['availability']:.4f} "
        f"(target {report['availability_target']}, "
        f"{report['shed']} shed excluded)",
        f"  degraded : {report['degraded_responses']} responses "
        "(all marked + bounded)" if not any(
            "degraded" in v for v in report["violations"])
        else f"  degraded : {report['degraded_responses']} responses",
        f"  latency  : p50 {report['accepted_p50_ms']:.1f}ms  "
        f"p99 {report['accepted_p99_ms']:.1f}ms  "
        f"(budget {report['deadline_budget_ms']:.0f}ms)",
        f"  healing  : rebuilds={report['pool_rebuilds']} "
        f"breaker_trips={report['breaker_trips']} healed={report['healed']}",
    ]
    if report["violations"]:
        lines.append("  VIOLATIONS:")
        lines.extend(f"    - {v}" for v in report["violations"])
    else:
        lines.append("  all self-healing invariants hold")
    return "\n".join(lines)
