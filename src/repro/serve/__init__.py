"""Sharded, long-lived query serving (`docs/SERVING.md`).

The library half turns one database into N **subtree-affine shards**
(`sharding`), evaluates them independently and merges the per-shard
streams back into exact global answers (`merge.ShardedDatabase`); the
service half (`daemon`) is an asyncio front-end that scatter-gathers
each request across per-shard worker pools behind admission control.

The partitioning invariant doing all the work: every shard holds the
*full* document tree but only the postings whose level-2 ancestor
(root child) hashes to the shard, so global JDewey numbering, exact
global TF-IDF scores and every join/erasure at levels >= 2 stay
shard-local.  Only the document root needs a cross-shard protocol,
and `merge` implements it exactly (see `merge.compute_root_info`).
"""

from .sharding import (partition_columnar, partition_inverted,
                       shard_of_dewey, subtree_shard_map)
from .merge import RootInfo, ShardedDatabase, compute_root_info, merge_root
from .daemon import AdmissionError, ServeDaemon, serve
from .supervisor import (BreakerConfig, BreakerOpenError, CircuitBreaker,
                         ShardSupervisor)
from .chaos import (ChaosInjector, format_chaos_report, run_chaos_drive,
                    sample_queries)

__all__ = [
    "partition_columnar", "partition_inverted", "shard_of_dewey",
    "subtree_shard_map", "RootInfo", "ShardedDatabase",
    "compute_root_info", "merge_root", "AdmissionError", "ServeDaemon",
    "serve", "BreakerConfig", "BreakerOpenError", "CircuitBreaker",
    "ShardSupervisor", "ChaosInjector", "format_chaos_report",
    "run_chaos_drive", "sample_queries",
]
