"""Synthetic data: DBLP/XMark-like generators and query workloads."""

from .text import (CorrelatedGroup, PlantedTerm, PlantingPlan, TextSource,
                   apply_planting, frequency_ladder)
from .dblp import DBLPGenerator
from .xmark import XMarkGenerator
from .workload import QuerySpec, WorkloadBuilder, random_terms_in_range

__all__ = [
    "CorrelatedGroup",
    "PlantedTerm",
    "PlantingPlan",
    "TextSource",
    "apply_planting",
    "frequency_ladder",
    "DBLPGenerator",
    "XMarkGenerator",
    "QuerySpec",
    "WorkloadBuilder",
    "random_terms_in_range",
]
