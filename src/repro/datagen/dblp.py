"""Synthetic DBLP-like corpus.

The paper regroups the (very shallow) DBLP document by
conference/journal and then year, giving the tree

    dblp / conference / year / paper / {title, authors/author, abstract}

which is the structure generated here.  Conferences get Zipf-ish sizes
(big venues dominate, like the real DBLP), papers carry sampled titles,
author elements and optional abstracts, and planted terms provide the
frequency- and correlation-controlled keywords for the experiment
workloads (paper Figures 9 and 10).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..xmltree.tree import Node, XMLTree
from .text import PlantingPlan, TextSource, apply_planting


class DBLPGenerator:
    """Deterministic DBLP-like tree generator.

    Parameters
    ----------
    seed:
        Drives every random choice; same seed, same tree.
    n_papers:
        Total paper elements.
    n_conferences / n_years:
        Grouping fan-out above the papers.
    title_words / abstract_words:
        Text volume per paper; ``abstract_words = 0`` drops abstracts.
    plan:
        Planted terms / correlated groups (one *entity* = one paper).
    """

    def __init__(self, seed: int = 7, n_papers: int = 2000,
                 n_conferences: int = 20, n_years: int = 8,
                 title_words: int = 8, abstract_words: int = 0,
                 max_authors: int = 4, vocab_size: int = 3000,
                 plan: Optional[PlantingPlan] = None):
        self.seed = seed
        self.n_papers = n_papers
        self.n_conferences = n_conferences
        self.n_years = n_years
        self.title_words = title_words
        self.abstract_words = abstract_words
        self.max_authors = max_authors
        self.vocab_size = vocab_size
        self.plan = plan if plan is not None else PlantingPlan()
        self.realized_df: Dict[str, int] = {}

    def generate(self) -> XMLTree:
        """Build and freeze the tree (JDewey assignment is the caller's)."""
        text = TextSource(self.seed, self.vocab_size)
        names = TextSource(self.seed + 1, 500, prefix="author")
        rng = np.random.default_rng(self.seed + 2)

        root = Node("dblp")
        conferences: List[List[Node]] = []  # [conf][year] -> year node
        for c in range(self.n_conferences):
            conf = root.add_child(Node("conference"))
            conf.add_child(Node("name", f"conf{c:03d}"))
            years = [conf.add_child(Node("year", str(1996 + y)))
                     for y in range(self.n_years)]
            conferences.append(years)

        # Zipf-ish venue sizes: big conferences get most of the papers.
        weights = (np.arange(1, self.n_conferences + 1) ** -0.8)
        conf_probs = weights / weights.sum()
        conf_of = rng.choice(self.n_conferences, size=self.n_papers,
                             p=conf_probs)
        year_of = rng.integers(self.n_years, size=self.n_papers)

        paper_text_nodes: List[List[Node]] = []
        for p in range(self.n_papers):
            year_node = conferences[int(conf_of[p])][int(year_of[p])]
            paper = year_node.add_child(Node("paper"))
            title = paper.add_child(
                Node("title", text.sentence(self.title_words)))
            nodes = [title]
            authors = paper.add_child(Node("authors"))
            for _ in range(1 + int(rng.integers(self.max_authors))):
                authors.add_child(Node("author", names.sentence(2)))
            if self.abstract_words:
                abstract = paper.add_child(
                    Node("abstract", text.sentence(self.abstract_words)))
                nodes.append(abstract)
            paper_text_nodes.append(nodes)

        self.realized_df = apply_planting(self.plan, paper_text_nodes, rng)
        return XMLTree(root).freeze()
