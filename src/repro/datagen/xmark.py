"""Synthetic XMark-like corpus.

Mirrors the XMark auction-site schema the paper's second data set uses:

    site
      regions / {africa, asia, europe, namerica, samerica} / item
        -> name, description (text)
      people / person -> name, profile/interest...
      open_auctions / open_auction -> annotation/description, bidder...
      closed_auctions / closed_auction -> annotation/description
      categories / category -> name, description

Element counts scale linearly with ``scale`` (XMark's factor-1.0 counts,
scaled down to laptop size); text comes from the shared Zipf sampler and
planted terms give the controlled workloads (one *entity* = one item /
person / auction).  Compared to DBLP the tree is deeper and less
uniform, exercising the level-by-level machinery on varied shapes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..xmltree.tree import Node, XMLTree
from .text import PlantingPlan, TextSource, apply_planting

_REGIONS = ("africa", "asia", "europe", "namerica", "samerica")

# XMark factor-1.0 element counts (approximate) that `scale` multiplies.
_BASE_ITEMS = 21_750
_BASE_PEOPLE = 25_500
_BASE_OPEN = 12_000
_BASE_CLOSED = 9_750
_BASE_CATEGORIES = 1_000


class XMarkGenerator:
    """Deterministic XMark-like tree generator."""

    def __init__(self, seed: int = 7, scale: float = 0.01,
                 description_words: int = 12, vocab_size: int = 3000,
                 plan: Optional[PlantingPlan] = None):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.seed = seed
        self.scale = scale
        self.description_words = description_words
        self.vocab_size = vocab_size
        self.plan = plan if plan is not None else PlantingPlan()
        self.realized_df: Dict[str, int] = {}

    def _count(self, base: int) -> int:
        return max(1, int(base * self.scale))

    def generate(self) -> XMLTree:
        text = TextSource(self.seed, self.vocab_size)
        names = TextSource(self.seed + 1, 800, prefix="person")
        rng = np.random.default_rng(self.seed + 2)

        root = Node("site")
        entity_nodes: List[List[Node]] = []

        regions = root.add_child(Node("regions"))
        region_nodes = [regions.add_child(Node(r)) for r in _REGIONS]
        n_items = self._count(_BASE_ITEMS)
        region_of = rng.integers(len(region_nodes), size=n_items)
        for i in range(n_items):
            item = region_nodes[int(region_of[i])].add_child(Node("item"))
            name = item.add_child(Node("name", text.sentence(3)))
            description = item.add_child(Node("description"))
            para = description.add_child(
                Node("text", text.sentence(self.description_words)))
            entity_nodes.append([name, para])

        people = root.add_child(Node("people"))
        for _ in range(self._count(_BASE_PEOPLE)):
            person = people.add_child(Node("person"))
            name = person.add_child(Node("name", names.sentence(2)))
            profile = person.add_child(Node("profile"))
            interest = profile.add_child(Node("interest", text.sentence(4)))
            entity_nodes.append([name, interest])

        open_auctions = root.add_child(Node("open_auctions"))
        for _ in range(self._count(_BASE_OPEN)):
            auction = open_auctions.add_child(Node("open_auction"))
            annotation = auction.add_child(Node("annotation"))
            description = annotation.add_child(Node("description"))
            para = description.add_child(
                Node("text", text.sentence(self.description_words)))
            auction.add_child(Node("initial", f"{rng.integers(1, 500)}.00"))
            entity_nodes.append([para])

        closed_auctions = root.add_child(Node("closed_auctions"))
        for _ in range(self._count(_BASE_CLOSED)):
            auction = closed_auctions.add_child(Node("closed_auction"))
            annotation = auction.add_child(Node("annotation"))
            description = annotation.add_child(Node("description"))
            para = description.add_child(
                Node("text", text.sentence(self.description_words)))
            entity_nodes.append([para])

        categories = root.add_child(Node("categories"))
        for _ in range(self._count(_BASE_CATEGORIES)):
            category = categories.add_child(Node("category"))
            name = category.add_child(Node("name", text.sentence(2)))
            description = category.add_child(
                Node("description", text.sentence(6)))
            entity_nodes.append([name, description])

        self.realized_df = apply_planting(self.plan, entity_nodes, rng)
        return XMLTree(root).freeze()
