"""Synthetic text: Zipf-distributed vocabulary plus planted terms.

The paper's experiments control two quantities: per-keyword *frequency*
(posting-list length) and *correlation* (how often keywords co-occur
under the same entity).  Real DBLP gives both implicitly; our synthetic
corpora make them explicit:

* background text is sampled from a Zipf(s) distribution over an
  artificial vocabulary -- giving realistic skew to the "noise" terms;
* `PlantedTerm`s are injected into exactly ``df`` distinct text nodes,
  giving terms with exact posting-list lengths for the frequency sweeps;
* `CorrelatedGroup`s inject several terms into the *same* entities at a
  chosen co-occurrence rate, producing the high-correlation queries of
  Figure 10(b)-(c).

Everything is driven by a seeded `numpy` generator, so corpora are
reproducible bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PlantedTerm:
    """A term injected into exactly `df` distinct text nodes.

    ``tf_range = (lo, hi)`` draws a per-node term frequency uniformly;
    the default (1, 1) keeps scores deterministic for unit tests, while
    benchmarks use a spread so local scores vary like real tf-idf does
    (a flat score distribution is adversarial for every TA-style
    algorithm and would mask the paper's early-termination effects).
    """

    term: str
    df: int
    tf_range: Tuple[int, int] = (1, 1)


@dataclass(frozen=True)
class CorrelatedGroup:
    """Terms injected together.

    Each of ``n_entities`` chosen entities receives every term of the
    group with probability ``rate`` (so ``rate = 1.0`` means the terms
    always co-occur in those entities; their document frequencies are
    about ``n_entities * rate``).  ``tf_range`` as in `PlantedTerm`.
    """

    terms: Sequence[str]
    n_entities: int
    rate: float = 1.0
    tf_range: Tuple[int, int] = (1, 1)


class TextSource:
    """Bulk Zipf word sampler over a synthetic vocabulary."""

    def __init__(self, seed: int, vocab_size: int = 3000,
                 zipf_s: float = 1.2, prefix: str = "w"):
        if vocab_size < 1:
            raise ValueError("vocabulary must be non-empty")
        self.rng = np.random.default_rng(seed)
        self.words = [f"{prefix}{i:05d}" for i in range(vocab_size)]
        ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
        weights = ranks ** -zipf_s
        self._probs = weights / weights.sum()
        self._buffer = np.empty(0, dtype=np.int64)
        self._pos = 0

    def _refill(self, need: int) -> None:
        size = max(need, 65536)
        self._buffer = self.rng.choice(len(self.words), size=size,
                                       p=self._probs)
        self._pos = 0

    def words_batch(self, n: int) -> List[str]:
        """The next `n` sampled words."""
        if self._pos + n > len(self._buffer):
            self._refill(n)
        idx = self._buffer[self._pos: self._pos + n]
        self._pos += n
        return [self.words[i] for i in idx]

    def sentence(self, n_words: int) -> str:
        return " ".join(self.words_batch(n_words))

    def choice(self, n: int, size: int, replace: bool = False) -> np.ndarray:
        """Uniform index sample (used to place planted terms)."""
        return self.rng.choice(n, size=size, replace=replace)


@dataclass
class PlantingPlan:
    """Planted-term configuration shared by both generators."""

    planted: List[PlantedTerm] = field(default_factory=list)
    correlated: List[CorrelatedGroup] = field(default_factory=list)

    def all_terms(self) -> List[str]:
        terms = [p.term for p in self.planted]
        for group in self.correlated:
            terms.extend(group.terms)
        return terms


def frequency_ladder(frequencies: Sequence[int], per_step: int = 4,
                     prefix: str = "kw") -> List[PlantedTerm]:
    """`per_step` planted terms at each target frequency.

    Term names encode their frequency (``kw10-0``, ``kw10k-3``, ...) so
    workloads can pick by posting-list length without scanning the
    index.
    """
    ladder: List[PlantedTerm] = []
    for freq in frequencies:
        label = f"{freq // 1000}k" if freq % 1000 == 0 and freq >= 1000 \
            else str(freq)
        for i in range(per_step):
            ladder.append(PlantedTerm(f"{prefix}{label}-{i}", freq))
    return ladder


def apply_planting(plan: PlantingPlan, entity_text_nodes: List[List],
                   rng: np.random.Generator) -> Dict[str, int]:
    """Inject the plan's terms into the corpus.

    ``entity_text_nodes[e]`` lists the text-bearing nodes of entity
    ``e`` (e.g. one paper's title/abstract nodes).  Planted terms pick
    ``df`` distinct nodes across all entities; correlated groups pick
    entities and plant every term of the group inside each chosen
    entity.  Returns the realized document frequency per term.
    """
    realized: Dict[str, int] = {}
    flat_nodes = [node for nodes in entity_text_nodes for node in nodes]

    def inject(node, term: str, tf_range: Tuple[int, int]) -> None:
        lo, hi = tf_range
        tf = int(rng.integers(lo, hi + 1)) if hi > lo else lo
        addition = " ".join([term] * tf)
        node.text = f"{node.text} {addition}" if node.text else addition

    for planted in plan.planted:
        df = min(planted.df, len(flat_nodes))
        picks = rng.choice(len(flat_nodes), size=df, replace=False)
        for i in picks:
            inject(flat_nodes[i], planted.term, planted.tf_range)
        realized[planted.term] = df
    for group in plan.correlated:
        n = min(group.n_entities, len(entity_text_nodes))
        entity_picks = rng.choice(len(entity_text_nodes), size=n,
                                  replace=False)
        counts = {term: 0 for term in group.terms}
        for e in entity_picks:
            nodes = entity_text_nodes[e]
            if not nodes:
                continue
            for term in group.terms:
                if rng.random() > group.rate:
                    continue
                inject(nodes[int(rng.integers(len(nodes)))], term,
                       group.tf_range)
                counts[term] += 1
        for term, count in counts.items():
            realized[term] = realized.get(term, 0) + count
    return realized
