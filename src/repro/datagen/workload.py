"""Query workloads for the experiments (paper section V).

The paper evaluates three workload families:

* **frequency sweeps** (Figure 9(a)-(d)): queries with one fixed
  high-frequency keyword and k-1 keywords from a target low-frequency
  range; forty random picks per range.
* **equal-frequency** (Figure 9(e)-(f)): all keywords from the same
  frequency range.
* **correlated** (Figure 10(b)-(c)): hand-picked keyword sets with high
  co-occurrence ("sensor network", "xml keyword search") -- realized
  here by the generators' `CorrelatedGroup` planting.

`WorkloadBuilder` assembles all three from planted term names, and
`random_terms_in_range` draws from the organic vocabulary like the
paper's random selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..index.inverted import InvertedIndex
from .text import CorrelatedGroup, PlantedTerm, PlantingPlan


@dataclass(frozen=True)
class QuerySpec:
    """One benchmark query: terms plus the sweep cell it belongs to."""

    terms: tuple
    low_frequency: int
    n_keywords: int
    label: str = ""

    def __iter__(self):
        return iter(self.terms)


def planted_label(freq: int) -> str:
    return f"{freq // 1000}k" if freq % 1000 == 0 and freq >= 1000 \
        else str(freq)


class WorkloadBuilder:
    """Builds the planting plan and the query sets for one experiment.

    Usage::

        wb = WorkloadBuilder(high_freq=10_000,
                             low_freqs=(10, 100, 1_000, 10_000),
                             per_cell=4)
        tree = DBLPGenerator(seed=7, n_papers=30_000,
                             plan=wb.plan()).generate()
        queries = wb.frequency_sweep(n_keywords=3)
    """

    def __init__(self, high_freq: int, low_freqs: Sequence[int],
                 per_cell: int = 4, max_keywords: int = 5,
                 correlated_entities: int = 400, seed: int = 11,
                 tf_range: tuple = (1, 4)):
        self.high_freq = high_freq
        self.low_freqs = tuple(low_freqs)
        self.per_cell = per_cell
        self.max_keywords = max_keywords
        self.correlated_entities = correlated_entities
        self.rng = np.random.default_rng(seed)
        # Per-node term frequency spread: gives planted keywords the
        # score variance real tf-idf text has, which the top-K pruning
        # experiments rely on.
        self.tf_range = tf_range

    # ------------------------------------------------------------------
    # planting plan
    # ------------------------------------------------------------------

    def plan(self) -> PlantingPlan:
        planted: List[PlantedTerm] = [
            PlantedTerm(self._high_term(i), self.high_freq, self.tf_range)
            for i in range(self.per_cell)
        ]
        for freq in self.low_freqs:
            # One block of `max_keywords` low terms per query cell, so
            # both the sweep and the equal-frequency sets fit.
            n_terms = self.per_cell * self.max_keywords
            for i in range(n_terms):
                planted.append(PlantedTerm(self._low_term(freq, i), freq,
                                           self.tf_range))
        correlated = [
            CorrelatedGroup(
                tuple(f"corr{g}-{j}" for j in range(n_terms)),
                self.correlated_entities, rate=0.9,
                tf_range=self.tf_range)
            for g, n_terms in enumerate((2, 2, 3, 3, 4, 5))
        ]
        return PlantingPlan(planted, correlated)

    def _high_term(self, i: int) -> str:
        return f"hi{planted_label(self.high_freq)}-{i}"

    def _low_term(self, freq: int, i: int) -> str:
        return f"lo{planted_label(freq)}-{i}"

    # ------------------------------------------------------------------
    # query sets
    # ------------------------------------------------------------------

    def frequency_sweep(self, n_keywords: int) -> List[QuerySpec]:
        """Figure 9(a)-(d): fixed high keyword, low keywords per range."""
        if not 2 <= n_keywords <= self.max_keywords:
            raise ValueError(
                f"n_keywords must be in [2, {self.max_keywords}]")
        queries: List[QuerySpec] = []
        for freq in self.low_freqs:
            for cell in range(self.per_cell):
                base = cell * self.max_keywords
                lows = tuple(self._low_term(freq, base + j)
                             for j in range(n_keywords - 1))
                terms = (self._high_term(cell),) + lows
                queries.append(QuerySpec(terms, freq, n_keywords,
                                         f"k{n_keywords}-low{freq}"))
        return queries

    def equal_frequency(self, n_keywords: int, freq: int) -> List[QuerySpec]:
        """Figure 9(e)-(f): all keywords at the same frequency."""
        if not 1 <= n_keywords <= self.max_keywords:
            raise ValueError(
                f"n_keywords must be in [1, {self.max_keywords}]")
        queries: List[QuerySpec] = []
        for cell in range(self.per_cell):
            base = cell * self.max_keywords
            terms = tuple(self._low_term(freq, base + j)
                          for j in range(n_keywords))
            queries.append(QuerySpec(terms, freq, n_keywords,
                                     f"k{n_keywords}-eq{freq}"))
        return queries

    def correlated_queries(self) -> List[QuerySpec]:
        """Figure 10(b)-(c): the planted high-correlation keyword sets."""
        queries: List[QuerySpec] = []
        for g, n_terms in enumerate((2, 2, 3, 3, 4, 5)):
            terms = tuple(f"corr{g}-{j}" for j in range(n_terms))
            queries.append(QuerySpec(terms, self.correlated_entities,
                                     n_terms, f"corr-{g}"))
        return queries


def random_terms_in_range(index: InvertedIndex, low: int, high: int,
                          count: int, seed: int = 0,
                          exclude_prefixes: Sequence[str] = ("hi", "lo",
                                                             "corr")
                          ) -> List[str]:
    """Organic vocabulary terms with document frequency in [low, high].

    Mirrors the paper's "forty queries randomly selected within each
    frequency range"; planted terms are excluded by prefix so the draw
    only sees natural Zipf vocabulary.
    """
    rng = np.random.default_rng(seed)
    candidates = [
        term for term in index.vocabulary
        if low <= index.document_frequency(term) <= high
        and not any(term.startswith(p) for p in exclude_prefixes)
    ]
    if len(candidates) <= count:
        return candidates
    picks = rng.choice(len(candidates), size=count, replace=False)
    return [candidates[i] for i in sorted(picks)]
