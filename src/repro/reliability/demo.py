"""Reliability demo harness -- the CI `reliability` job's end-to-end.

::

    python -m repro.reliability.demo --seed 1 --out metrics.json

Exercises the whole layer against a throwaway corpus and *asserts* the
guarantees it advertises (`docs/RELIABILITY.md`):

1. a database loaded through a faulty disk (20% transient I/O errors,
   healed by bounded retry) answers 50 queries byte-identically to a
   clean load;
2. a permanent fault (every read fails) surfaces as the typed
   `DatabaseCorruptError`, never a bare injected exception;
3. a single flipped byte on disk is caught by the checksum manifest;
4. an expired query budget under the ``partial`` policy returns a
   degraded-but-consistent subset, with the partial flag set;
5. the metrics registry recorded the whole story (fault, retry, and
   checksum counters), snapshotted as JSON for the CI artifact.

Exit code 0 means every guarantee held; an `AssertionError` (exit 1)
is a reliability regression.  ``--seed`` shifts the fault sequence so
repeated CI runs explore different interleavings deterministically.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
from typing import List, Optional

from ..obs.metrics import get_registry
from .errors import DatabaseCorruptError, DatabaseFormatError
from .faults import FaultInjector
from .retry import RetryPolicy

QUERIES = ["alpha beta", "gamma beta", "alpha gamma", "rare alpha",
           "cx cy", "c3a c3b", "gamma", "beta rare", "alpha",
           "gamma beta alpha"]


def _transcript(db) -> List:
    """50 queries (5 passes over 10), as comparable tuples."""
    out = []
    for _pass in range(5):
        for query in QUERIES:
            results = db.search(query, use_cache=False)
            out.append([(r.node.dewey, round(r.score, 12))
                        for r in results])
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="end-to-end reliability guarantees check")
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-sequence seed")
    parser.add_argument("--out", default=None,
                        help="write the metrics snapshot JSON here")
    parser.add_argument("--papers", type=int, default=200,
                        help="size of the throwaway DBLP corpus")
    args = parser.parse_args(argv)

    from .. import XMLDatabase
    from ..diskdb import load_database, save_database

    workdir = tempfile.mkdtemp(prefix="repro-reliability-")
    path = os.path.join(workdir, "db")
    try:
        print(f"[1/5] building + saving a {args.papers}-paper corpus "
              f"(seed {args.seed})")
        from ..datagen import (CorrelatedGroup, DBLPGenerator, PlantedTerm,
                               PlantingPlan)

        # Plant the query vocabulary so every transcript query has work
        # to do (the stock generator vocabulary is seed-dependent).
        plan = PlantingPlan(
            planted=[PlantedTerm("alpha", 20), PlantedTerm("beta", 40),
                     PlantedTerm("gamma", 60), PlantedTerm("rare", 3)],
            correlated=[CorrelatedGroup(("cx", "cy"), 25, rate=0.9),
                        CorrelatedGroup(("c3a", "c3b"), 15, rate=0.8)])
        tree = DBLPGenerator(seed=args.seed, n_papers=args.papers,
                             plan=plan).generate()
        db = XMLDatabase(tree)
        db.columnar_index
        db.inverted_index
        save_database(db, path)

        print("[2/5] clean load vs. faulty load (error_rate=0.2, "
              "healed by retry): 50 queries must match byte-for-byte")
        clean = _transcript(load_database(path))
        injector = FaultInjector(error_rate=0.2, latency_rate=0.1,
                                 latency_ms=0.0, seed=args.seed,
                                 metrics=get_registry())
        retry = RetryPolicy(max_attempts=6, seed=args.seed,
                            sleep=lambda _s: None)
        faulty = _transcript(load_database(path, injector=injector,
                                           retry=retry))
        assert faulty == clean, "faulty-disk load diverged from clean load"
        healed = injector.injected["io-error"]
        print(f"      ok: {healed} injected I/O errors healed, "
              "answers identical")

        print("[3/5] permanent fault (error_rate=1.0) must be typed")
        try:
            load_database(path,
                          injector=FaultInjector(error_rate=1.0,
                                                 seed=args.seed),
                          retry=RetryPolicy(max_attempts=3,
                                            sleep=lambda _s: None))
        except DatabaseCorruptError as exc:
            print(f"      ok: DatabaseCorruptError: {exc}")
        else:
            raise AssertionError("permanent fault loaded successfully")

        print("[4/5] one flipped byte on disk must fail its checksum")
        blob_path = os.path.join(path, "columnar.bin")
        with open(blob_path, "rb") as fh:
            blob = bytearray(fh.read())
        blob[len(blob) // 2] ^= 0x01
        with open(blob_path, "wb") as fh:
            fh.write(bytes(blob))
        try:
            load_database(path)
        except DatabaseFormatError as exc:
            print(f"      ok: {type(exc).__name__}: {exc}")
        else:
            raise AssertionError("flipped byte loaded successfully")
        blob[len(blob) // 2] ^= 0x01  # restore
        with open(blob_path, "wb") as fh:
            fh.write(bytes(blob))

        print("[5/5] expired budget under the partial policy returns a "
              "consistent subset")
        full = db.search("gamma beta", use_cache=False)
        partial, stats = db.search("gamma beta", timeout_ms=0,
                                   on_deadline="partial", use_cache=False,
                                   with_stats=True)
        assert stats.partial, "expired budget did not mark partial"
        full_keys = {r.node.dewey for r in full}
        assert all(r.node.dewey in full_keys for r in partial), \
            "partial results are not a subset of the unbounded run"
        print(f"      ok: partial run returned {len(partial)}/{len(full)} "
              f"results with {stats.levels_skipped} levels unprocessed")

        snapshot = get_registry().snapshot()
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"metrics snapshot written to {args.out}")
        print("all reliability guarantees held")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
