"""Query deadlines and cooperative cancellation.

A `Deadline` is a wall-clock budget plus an expiry policy, threaded
through `XMLDatabase.search` / `search_topk` / `search_batch` /
`search_stream` and checked at cheap boundaries: once per level in
`JoinBasedSearch`, every few rank-join retrievals in
`TopKKeywordSearch`, and per column decompression in the lazy disk
index.  Two policies:

* ``raise``   -- expiry raises `DeadlineExceeded` (default);
* ``partial`` -- the engine stops cleanly and returns everything proven
  so far, with ``ExecutionStats.partial`` / ``levels_skipped`` set and,
  on the top-K path, the rank-join's current bound reported as the
  guarantee gap (no unreturned result can score above it).

Because partial results are produced by stopping a bottom-up evaluation
early they are always a *subset* of the unbounded run's results, and on
the top-K path a *prefix* of its emission order -- degraded, never
wrong.

The clock is injectable (``clock=...``) so tests expire deadlines
deterministically without sleeping.

`deadline_scope` installs a deadline in a thread-local so layers that
are not parameter-threaded (the lazy disk index's per-column fetch) can
poll it via `check_active` -- a getattr and a None test when no
deadline is active, so the unbudgeted path stays free.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Optional, Union

from .errors import DeadlineExceeded

RAISE = "raise"
PARTIAL = "partial"
POLICIES = (RAISE, PARTIAL)


class Deadline:
    """A wall-clock query budget with an expiry policy.

    Parameters
    ----------
    timeout_ms:
        Budget in milliseconds, counted from construction.  ``None``
        never expires (handy for code that always passes a deadline).
    on_deadline:
        ``"raise"`` (default) or ``"partial"`` -- what the engines do
        when the budget runs out.
    clock:
        Seconds-returning callable (default `time.perf_counter`);
        injectable for deterministic tests.
    """

    __slots__ = ("budget_ms", "on_deadline", "_clock", "_start")

    def __init__(self, timeout_ms: Optional[float] = None,
                 on_deadline: str = RAISE,
                 clock: Callable[[], float] = time.perf_counter):
        if on_deadline not in POLICIES:
            raise ValueError(f"unknown deadline policy {on_deadline!r}; "
                             f"one of {POLICIES}")
        self.budget_ms = None if timeout_ms is None else float(timeout_ms)
        self.on_deadline = on_deadline
        self._clock = clock
        self._start = clock()

    @classmethod
    def coerce(cls, deadline: Union["Deadline", float, int, None],
               timeout_ms: Optional[float] = None,
               on_deadline: Optional[str] = None) -> Optional["Deadline"]:
        """Normalize the API surface's three spellings to one object.

        ``deadline`` may be a `Deadline` (returned as-is), a number of
        milliseconds, or ``None`` -- in which case ``timeout_ms`` (the
        convenience kwarg) builds one.  ``on_deadline`` applies only
        when a new object is built here.
        """
        if isinstance(deadline, Deadline):
            return deadline
        if deadline is None and timeout_ms is None:
            return None
        budget = float(deadline) if deadline is not None else timeout_ms
        return cls(budget, on_deadline if on_deadline is not None else RAISE)

    @property
    def partial_ok(self) -> bool:
        return self.on_deadline == PARTIAL

    def elapsed_ms(self) -> float:
        return (self._clock() - self._start) * 1000.0

    def remaining_ms(self) -> float:
        if self.budget_ms is None:
            return float("inf")
        return self.budget_ms - self.elapsed_ms()

    def expired(self) -> bool:
        if self.budget_ms is None:
            return False
        return self.elapsed_ms() >= self.budget_ms

    def raise_expired(self) -> None:
        """Raise `DeadlineExceeded` describing this budget."""
        elapsed = self.elapsed_ms()
        raise DeadlineExceeded(
            f"query exceeded its {self.budget_ms:.1f} ms budget "
            f"({elapsed:.1f} ms elapsed)",
            elapsed_ms=elapsed, budget_ms=self.budget_ms)

    def check(self) -> None:
        """Raise if expired -- used where partial handling is a layer up."""
        if self.expired():
            self.raise_expired()

    def to_wire(self) -> dict:
        """Serialize for a hop to another process or over HTTP.

        The absolute start instant does not survive a clock domain
        change, so the wire form carries the *remaining* budget and the
        policy; `from_wire` on the receiving side restarts the clock
        from its own "now".  Time spent on the wire (or in an accept
        queue) between the two calls is therefore not charged -- the
        sender accounts for it by serializing as late as possible.
        """
        remaining = self.remaining_ms()
        return {"timeout_ms": (None if remaining == float("inf")
                               else max(0.0, remaining)),
                "on_deadline": self.on_deadline}

    @classmethod
    def from_wire(cls, wire: dict) -> "Deadline":
        """Rebuild a deadline from `to_wire` output, clock restarted."""
        return cls(wire.get("timeout_ms"),
                   wire.get("on_deadline", RAISE))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        budget = "inf" if self.budget_ms is None else f"{self.budget_ms:g}ms"
        return f"<Deadline {budget} on_deadline={self.on_deadline}>"


# The paper frames top-K as "answer quickly by not computing
# everything"; a budgeted query is the serving-layer form of the same
# idea, so the API accepts either name.
QueryBudget = Deadline


_tls = threading.local()


def active_deadline() -> Optional[Deadline]:
    """The deadline installed by the innermost `deadline_scope`, if any."""
    return getattr(_tls, "deadline", None)


@contextmanager
def deadline_scope(deadline: Optional[Deadline]):
    """Install `deadline` as the thread's active deadline.

    Scopes nest; ``None`` installs nothing but still shadows an outer
    scope, so an unbudgeted query inside a budgeted batch stays
    unbudgeted.
    """
    previous = getattr(_tls, "deadline", None)
    _tls.deadline = deadline
    try:
        yield deadline
    finally:
        _tls.deadline = previous


def check_active() -> None:
    """Poll the thread's active deadline; raise `DeadlineExceeded` when
    it has expired.  Engines that support partial results catch this at
    their own boundaries and downgrade per the deadline's policy."""
    deadline = getattr(_tls, "deadline", None)
    if deadline is not None and deadline.expired():
        deadline.raise_expired()
