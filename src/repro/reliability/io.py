"""Fault-injectable, retryable file primitives for the persistence layer.

`read_bytes` is the single chokepoint every `repro.diskdb` read goes
through: chunked reads (so short-read faults are observable), optional
`FaultInjector` wrapping, optional `RetryPolicy` healing, and byte
counters.  `write_bytes` / `fsync_dir` are the building blocks of the
atomic save protocol (write to a temp dir, fsync data, `os.replace`
into place, fsync the directory, manifest last).
"""

from __future__ import annotations

import os
from typing import Optional

from .faults import FaultInjector
from .retry import RetryPolicy

CHUNK_SIZE = 64 * 1024


def read_bytes(path: str, injector: Optional[FaultInjector] = None,
               retry: Optional[RetryPolicy] = None,
               metrics=None, op: str = "read") -> bytes:
    """Read a whole file in chunks, with faults and retries applied.

    Each retry attempt reopens the file and restarts from offset zero,
    so a transient mid-read error never yields a spliced buffer.
    """

    def attempt() -> bytes:
        handle = open(path, "rb")
        if injector is not None:
            handle = injector.wrap(handle, path)
        chunks = []
        with handle:
            while True:
                chunk = handle.read(CHUNK_SIZE)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    if retry is None:
        return attempt()
    return retry.call(attempt, metrics=metrics, op=op)


def write_bytes(path: str, data: bytes, fsync: bool = True) -> None:
    """Write `data` to `path` and optionally fsync the file."""
    with open(path, "wb") as handle:
        handle.write(data)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())


def fsync_dir(path: str) -> None:
    """fsync a directory so renames inside it are durable (POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)
