"""Fault-injectable, retryable file primitives for the persistence layer.

`read_bytes` is the single chokepoint every `repro.diskdb` read goes
through: chunked reads (so short-read faults are observable), optional
`FaultInjector` wrapping, optional `RetryPolicy` healing, and byte
counters.  `write_bytes` / `fsync_dir` are the building blocks of the
atomic save protocol (write to a temp dir, fsync data, `os.replace`
into place, fsync the directory, manifest last).

`map_bytes` is the zero-copy sibling: it memory-maps a file read-only
and returns a `MappedFile` whose buffer the format-v3 loader hands to
``np.frombuffer`` directly -- columns materialize as views over the
page cache, and forked worker processes share the mapping for free.

Every whole-payload materialization (a `read_bytes` call, or the
`map_bytes` fallback when a fault injector forces the copying path) is
recorded in `COPY_STATS`, the seam the zero-copy tests assert against:
loading a format-v3 database must record *no* copy event for the
columnar file.
"""

from __future__ import annotations

import mmap
import os
import threading
from typing import Dict, Optional, Union

from ..obs.account import active_account
from .faults import FaultInjector
from .retry import RetryPolicy

CHUNK_SIZE = 64 * 1024


class CopyStats:
    """Counts whole-payload ``bytes`` materializations, per read op.

    The zero-copy contract of the format-v3 load path is asserted
    through this seam: `read_bytes` records every copy it makes
    (labelled with its ``op``), `map_bytes` records nothing on the
    mmap path, so a test can reset the stats, load a database, and
    check the columnar op never copied.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.events: Dict[str, int] = {}
        self.bytes: Dict[str, int] = {}

    def record(self, op: str, nbytes: int) -> None:
        with self._lock:
            self.events[op] = self.events.get(op, 0) + 1
            self.bytes[op] = self.bytes.get(op, 0) + nbytes

    def reset(self) -> None:
        with self._lock:
            self.events.clear()
            self.bytes.clear()

    def copies(self, op: str) -> int:
        """Copy events recorded for `op` (0 when it never copied)."""
        with self._lock:
            return self.events.get(op, 0)


#: Process-wide copy accounting; tests reset it around a load.
COPY_STATS = CopyStats()


def read_bytes(path: str, injector: Optional[FaultInjector] = None,
               retry: Optional[RetryPolicy] = None,
               metrics=None, op: str = "read") -> bytes:
    """Read a whole file in chunks, with faults and retries applied.

    Each retry attempt reopens the file and restarts from offset zero,
    so a transient mid-read error never yields a spliced buffer.
    """

    def attempt() -> bytes:
        handle = open(path, "rb")
        if injector is not None:
            handle = injector.wrap(handle, path)
        chunks = []
        with handle:
            while True:
                chunk = handle.read(CHUNK_SIZE)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    if retry is None:
        data = attempt()
    else:
        data = retry.call(attempt, metrics=metrics, op=op)
    COPY_STATS.record(op, len(data))
    account = active_account()
    if account is not None:
        account.record_copy(len(data))
    return data


class MappedFile:
    """A read-only memory mapping plus the handles that keep it alive.

    Behaves like a buffer (`len`, slicing via `view`) and is accepted
    everywhere the format-v3 readers take bytes.  Keep a reference for
    as long as any `np.frombuffer` view of it is in use -- the columnar
    loader stores it on the index object.  ``close`` is optional: the
    mapping is released when the object is garbage-collected, and
    closing while numpy views exist would invalidate them.
    """

    def __init__(self, path: str):
        self.path = path
        with open(path, "rb") as handle:
            # length=0 maps the whole file; an empty file cannot be
            # mapped, so fall back to an empty buffer.
            size = os.fstat(handle.fileno()).st_size
            if size == 0:
                self._mmap = None
                self.view = memoryview(b"")
            else:
                self._mmap = mmap.mmap(handle.fileno(), 0,
                                       access=mmap.ACCESS_READ)
                self.view = memoryview(self._mmap)

    def __len__(self) -> int:
        return len(self.view)

    def close(self) -> None:  # pragma: no cover - explicit cleanup only
        self.view.release()
        if self._mmap is not None:
            self._mmap.close()


def map_bytes(path: str, injector: Optional[FaultInjector] = None,
              retry: Optional[RetryPolicy] = None,
              metrics=None, op: str = "map"
              ) -> Union[MappedFile, bytes]:
    """Memory-map `path` read-only; the zero-copy read primitive.

    With a `FaultInjector` installed the mapping cannot observe
    injected faults (the kernel serves pages directly), so the call
    degrades to `read_bytes` -- a copy, recorded in `COPY_STATS` as
    usual -- keeping the fault-injection test matrix meaningful for
    format-v3 databases.  Callers treat the two return shapes
    uniformly: both support ``len`` and expose bytes to
    ``np.frombuffer`` (pass ``MappedFile.view``).
    """
    if injector is not None:
        return read_bytes(path, injector=injector, retry=retry,
                          metrics=metrics, op=op)
    return MappedFile(path)


def write_bytes(path: str, data: bytes, fsync: bool = True) -> None:
    """Write `data` to `path` and optionally fsync the file."""
    with open(path, "wb") as handle:
        handle.write(data)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())


def fsync_dir(path: str) -> None:
    """fsync a directory so renames inside it are durable (POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)
