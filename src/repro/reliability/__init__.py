"""Reliability layer: deadlines, fault injection, checksummed persistence.

Three concerns, one package (see ``docs/RELIABILITY.md``):

* **Deadlines** (`Deadline` / `QueryBudget`, `deadline_scope`) --
  wall-clock budgets with a ``raise`` or ``partial`` expiry policy,
  cooperatively checked by the query engines, so a pathological query
  degrades into "best found within budget" instead of running forever.
* **Fault injection + retry** (`FaultInjector`, `RetryPolicy`) --
  probabilistic or scripted disk faults plus a bounded
  backoff-with-jitter wrapper, so transient I/O errors heal and
  permanent ones surface as the typed `RetryExhaustedError`.
* **Checksummed atomic persistence** (`checksum`, plus the save/load
  protocol in `repro.diskdb`) -- per-block and whole-file digests and a
  temp-dir + ``os.replace`` save order, so a crash or a flipped bit is
  detected (`DatabaseCorruptError`), never absorbed.
"""

from .checksum import (ALGORITHMS, DEFAULT_ALGORITHM, HAVE_NATIVE_CRC32C,
                       checksum, crc32, crc32c, hex_digest, verify)
from .deadline import (PARTIAL, POLICIES, RAISE, Deadline, QueryBudget,
                       active_deadline, check_active, deadline_scope)
from .errors import (DatabaseCorruptError, DatabaseFormatError,
                     DeadlineExceeded, InjectedFault, RetryExhaustedError,
                     ShardPayloadError, WorkerCrashError)
from .faults import (BIT_FLIP, FAULT_KINDS, IO_ERROR, LATENCY, SHORT_READ,
                     FaultInjector, FaultyFile)
from .io import fsync_dir, read_bytes, write_bytes
from .retry import DEFAULT_POLICY, RetryPolicy

__all__ = [
    "ALGORITHMS",
    "DEFAULT_ALGORITHM",
    "HAVE_NATIVE_CRC32C",
    "checksum",
    "crc32",
    "crc32c",
    "hex_digest",
    "verify",
    "PARTIAL",
    "POLICIES",
    "RAISE",
    "Deadline",
    "QueryBudget",
    "active_deadline",
    "check_active",
    "deadline_scope",
    "DatabaseCorruptError",
    "DatabaseFormatError",
    "DeadlineExceeded",
    "InjectedFault",
    "RetryExhaustedError",
    "ShardPayloadError",
    "WorkerCrashError",
    "BIT_FLIP",
    "FAULT_KINDS",
    "IO_ERROR",
    "LATENCY",
    "SHORT_READ",
    "FaultInjector",
    "FaultyFile",
    "fsync_dir",
    "read_bytes",
    "write_bytes",
    "DEFAULT_POLICY",
    "RetryPolicy",
]
