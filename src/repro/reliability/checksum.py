"""Checksums for the persistence layer (CRC32C and CRC32).

Two algorithms, both self-describing on disk (the block framing and
``meta.json`` record which one was used, so readers never guess):

* ``crc32c`` -- the Castagnoli polynomial (iSCSI/ext4), the stronger
  choice for storage.  Uses a native backend (the ``crc32c`` or
  ``google_crc32c`` packages) when one is importable; otherwise a
  table-driven pure-Python fallback (correct but ~9 MiB/s).
* ``crc32``  -- zlib's IEEE CRC-32, C speed everywhere.

`DEFAULT_ALGORITHM` picks ``crc32c`` when a native backend exists and
``crc32`` otherwise, so the default save path never pays the
pure-Python toll -- the ≤5% persistence-overhead budget holds on a bare
CPython install while the format stays CRC32C-ready.

Every function accepts any bytes-like buffer -- ``bytes``,
``memoryview`` or a ``numpy`` byte view -- without copying, which is
what lets the format-v3 loader verify CRCs directly against an mmap'd
file (`repro.reliability.io.map_bytes`).
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional

CRC32C_POLY = 0x82F63B78  # reflected Castagnoli polynomial

_crc32c_table: Optional[List[int]] = None


def _build_table() -> List[int]:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ CRC32C_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


def _crc32c_pure(data: bytes, value: int = 0) -> int:
    """Table-driven CRC32C; the dependency-free fallback."""
    global _crc32c_table
    if _crc32c_table is None:
        _crc32c_table = _build_table()
    table = _crc32c_table
    crc = value ^ 0xFFFFFFFF
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def _native_crc32c() -> Optional[Callable[[bytes, int], int]]:
    # Native backends may reject a memoryview; `_buffer_safe` retries
    # with a materialized copy only in that case, so the zero-copy path
    # stays zero-copy wherever the backend allows it.
    try:  # pragma: no cover - depends on the environment
        import crc32c as _c

        return _buffer_safe(lambda data, value=0: _c.crc32c(data, value))
    except ImportError:
        pass
    try:  # pragma: no cover - depends on the environment
        import google_crc32c as _g

        return _buffer_safe(lambda data, value=0: _g.extend(value, data))
    except ImportError:
        return None


def _buffer_safe(fn: Callable[..., int]) -> Callable[..., int]:
    def wrapped(data, value: int = 0) -> int:  # pragma: no cover - env
        try:
            return fn(data, value)
        except TypeError:
            return fn(bytes(data), value)
    return wrapped


_NATIVE_CRC32C = _native_crc32c()
HAVE_NATIVE_CRC32C = _NATIVE_CRC32C is not None


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC32C of `data` (optionally continuing from `value`)."""
    if _NATIVE_CRC32C is not None:  # pragma: no cover - env-dependent
        return _NATIVE_CRC32C(data, value)
    return _crc32c_pure(data, value)


def crc32(data: bytes, value: int = 0) -> int:
    """zlib's IEEE CRC-32 (C speed)."""
    return zlib.crc32(data, value) & 0xFFFFFFFF


ALGORITHMS: Dict[str, Callable[..., int]] = {
    "crc32c": crc32c,
    "crc32": crc32,
}

# Numeric ids used by the on-disk block framing (one byte after the
# magic); names used by meta.json.  Stable -- never renumber.
ALGORITHM_IDS = {"crc32": 0, "crc32c": 1}
ALGORITHM_NAMES = {v: k for k, v in ALGORITHM_IDS.items()}

DEFAULT_ALGORITHM = "crc32c" if HAVE_NATIVE_CRC32C else "crc32"


def checksum(data: bytes, algo: Optional[str] = None) -> int:
    """Digest of `data` under `algo` (default `DEFAULT_ALGORITHM`)."""
    algo = algo if algo is not None else DEFAULT_ALGORITHM
    try:
        fn = ALGORITHMS[algo]
    except KeyError:
        raise ValueError(f"unknown checksum algorithm {algo!r}; "
                         f"one of {sorted(ALGORITHMS)}")
    return fn(data)


def hex_digest(data: bytes, algo: Optional[str] = None) -> str:
    """The digest as a fixed-width hex string (what meta.json stores)."""
    return f"{checksum(data, algo):08x}"


def verify(data: bytes, expected_hex: str, algo: Optional[str] = None) -> bool:
    """True when `data` hashes to `expected_hex` under `algo`."""
    return hex_digest(data, algo) == expected_hex.lower()
