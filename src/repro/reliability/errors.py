"""Typed errors of the reliability layer.

These live at the bottom of the import graph (stdlib only) so every
layer -- `repro.index.storage`, `repro.index.lazydisk`, `repro.diskdb`,
`repro.api`, the CLI -- can raise and catch them without cycles.

Hierarchy::

    ValueError
      DatabaseFormatError      directory malformed / version mismatch
        DatabaseCorruptError   bytes present but provably wrong (checksum)
    TimeoutError
      DeadlineExceeded         a query budget expired with policy "raise"
    OSError
      InjectedFault            a fault-injection error (transient by intent)
      RetryExhaustedError      retries used up; the fault is permanent
      WorkerCrashError         a pool worker died mid-task (transient: the
                               pool is rebuilt and a retry usually lands)
      ShardPayloadError        a shard reply failed structural validation
                               (corrupt bytes at the pool boundary)
"""

from __future__ import annotations

from typing import Optional


class DatabaseFormatError(ValueError):
    """A database directory is missing pieces, mismatched or unreadable."""


class DatabaseCorruptError(DatabaseFormatError):
    """Stored bytes fail verification: a checksum mismatch, truncated
    framing, or an impossible field.  Carries the offending file and,
    when known, the keyword whose column block is bad."""

    def __init__(self, message: str, file: Optional[str] = None,
                 term: Optional[str] = None):
        super().__init__(message)
        self.file = file
        self.term = term


class DeadlineExceeded(TimeoutError):
    """A query ran past its `Deadline` under the ``raise`` policy."""

    def __init__(self, message: str, elapsed_ms: Optional[float] = None,
                 budget_ms: Optional[float] = None):
        super().__init__(message)
        self.elapsed_ms = elapsed_ms
        self.budget_ms = budget_ms


class InjectedFault(IOError):
    """An error produced by `FaultInjector` -- transient unless the
    injector is configured otherwise."""

    def __init__(self, message: str, kind: str = "io-error",
                 path: Optional[str] = None):
        super().__init__(message)
        self.kind = kind
        self.path = path


class RetryExhaustedError(OSError):
    """A retried operation failed on every attempt; the last underlying
    error is chained as ``__cause__``."""

    def __init__(self, message: str, attempts: int = 0,
                 op: Optional[str] = None):
        super().__init__(message)
        self.attempts = attempts
        self.op = op


class WorkerCrashError(OSError):
    """A process-pool worker died mid-task (SIGKILL, OOM, segfault) and
    poisoned its `ProcessPoolExecutor`.  The supervising layer quarantines
    and rebuilds the pool, so from the caller's perspective this is
    *transient*: a retry against the rebuilt pool usually succeeds."""

    def __init__(self, message: str, shard: Optional[int] = None,
                 query_index: Optional[int] = None):
        super().__init__(message)
        self.shard = shard
        self.query_index = query_index


class ShardPayloadError(OSError):
    """A shard reply crossed the pool boundary structurally corrupt
    (wrong shape / non-finite fields).  Treated like an I/O fault:
    transient, retryable, and never silently merged."""

    def __init__(self, message: str, shard: Optional[int] = None):
        super().__init__(message)
        self.shard = shard
