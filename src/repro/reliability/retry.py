"""Bounded retry with exponential backoff and jitter.

`RetryPolicy.call` runs a zero-argument operation, retrying transient
`OSError`s (injected or real) with exponential backoff plus seeded
jitter.  `FileNotFoundError` is treated as permanent (retrying a
missing file cannot help), and exhaustion raises the typed
`RetryExhaustedError` with the last error chained -- callers never see
a bare injected exception escape a retried region.

Attempt and outcome counters are published when a metrics registry is
passed::

    repro_io_attempts_total{op=...}            every attempt
    repro_io_retries_total{op=...}             attempts after the first
    repro_io_retry_exhausted_total{op=...}     gave up
    repro_io_recovered_total{op=...}           succeeded after >=1 retry
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Tuple, TypeVar

from .errors import RetryExhaustedError

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """How many times to try and how long to wait between tries.

    ``backoff_ms * multiplier**(attempt-1)``, each delay widened by a
    uniform jitter fraction drawn from a seeded RNG (deterministic
    tests, decorrelated retries in real fleets).  ``sleep`` is
    injectable so tests run at full speed.
    """

    max_attempts: int = 3
    backoff_ms: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    sleep: Callable[[float], None] = time.sleep
    retry_on: Tuple[type, ...] = (OSError,)
    _rng: random.Random = field(init=False, repr=False, default=None)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._rng = random.Random(self.seed)

    def delay_ms(self, attempt: int) -> float:
        """Backoff before retry `attempt` (1-based), jitter included."""
        base = self.backoff_ms * (self.multiplier ** (attempt - 1))
        return base * (1.0 + self.jitter * self._rng.random())

    def retryable(self, exc: BaseException) -> bool:
        """True when `exc` is transient under this policy.

        `FileNotFoundError` and `RetryExhaustedError` are permanent by
        nature regardless of `retry_on` -- retrying a missing file or an
        already-exhausted retry region cannot help.  The serve-path
        supervision layer shares this classification so a shard retry
        never spins on a permanent failure.
        """
        return (isinstance(exc, self.retry_on)
                and not isinstance(exc, (FileNotFoundError,
                                         RetryExhaustedError)))

    def call(self, fn: Callable[[], T], metrics=None, op: str = "io") -> T:
        """Run `fn`, retrying transient failures per this policy."""
        labels = {"op": op}
        last_error = None
        for attempt in range(1, self.max_attempts + 1):
            if metrics is not None:
                metrics.counter("repro_io_attempts_total", labels).inc()
            try:
                result = fn()
            except self.retry_on as exc:
                if not self.retryable(exc):
                    raise  # permanent by nature; retrying cannot help
                last_error = exc
                if attempt == self.max_attempts:
                    break
                if metrics is not None:
                    metrics.counter("repro_io_retries_total", labels).inc()
                self.sleep(self.delay_ms(attempt) / 1000.0)
                continue
            if attempt > 1 and metrics is not None:
                metrics.counter("repro_io_recovered_total", labels).inc()
            return result
        if metrics is not None:
            metrics.counter("repro_io_retry_exhausted_total", labels).inc()
        raise RetryExhaustedError(
            f"{op} failed after {self.max_attempts} attempts: {last_error}",
            attempts=self.max_attempts, op=op) from last_error


#: Policy used by `repro.diskdb` when the caller passes ``retry=None``
#: but an injector is installed -- transient faults heal by default.
DEFAULT_POLICY = RetryPolicy()
