"""Fault injection for disk I/O (test and chaos harness).

A `FaultInjector` decides, per read call, whether to misbehave and how;
`FaultyFile` applies the decision to a real file handle.  Four fault
kinds:

* ``io-error``   -- the read raises `InjectedFault` (an `IOError`).
  Transient by construction: the next attempt re-rolls, so a bounded
  retry heals it.  ``error_rate=1.0`` models a permanent fault.
* ``short-read`` -- the read returns a truncated chunk and the file
  reports EOF, so the caller sees silently truncated bytes.  Not an
  exception: corruption detection (checksums) must catch it.
* ``bit-flip``   -- one bit of the returned chunk is flipped; again
  only checksums can catch it.
* ``latency``    -- the read sleeps before returning (slow disk).

Faults are drawn either probabilistically (seeded RNG: a given seed
always injects the same faults at the same read indices, so suites are
reproducible) or from a ``script`` -- an explicit per-read sequence of
fault names (``None`` for a clean read), exhausted-then-clean.

Install an injector by passing it to `repro.diskdb.load_database`
(``injector=...``) or wrap any binary file handle directly::

    inj = FaultInjector(error_rate=0.2, seed=1)
    with inj.wrap(open(path, "rb"), path) as fh:
        data = fh.read()

Injected faults are counted per kind in ``injector.injected`` and, when
a metrics registry is bound, published as
``repro_injected_faults_total{kind=...}``.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, Iterable, List, Optional

from .errors import InjectedFault

IO_ERROR = "io-error"
SHORT_READ = "short-read"
BIT_FLIP = "bit-flip"
LATENCY = "latency"
FAULT_KINDS = (IO_ERROR, SHORT_READ, BIT_FLIP, LATENCY)


class FaultInjector:
    """Per-read fault decisions, probabilistic or scripted.

    Parameters
    ----------
    error_rate, short_read_rate, bit_flip_rate, latency_rate:
        Independent per-read probabilities in [0, 1].  At most one
        fault fires per read; they are tested in the order above.
    latency_ms:
        Sleep applied when a latency fault fires.
    seed:
        RNG seed -- the whole fault sequence is a pure function of it.
    script:
        Explicit fault sequence overriding the rates: an iterable of
        fault names or ``None`` entries, one per read call, clean once
        exhausted.
    sleep:
        Injectable sleep (tests pass a no-op).
    metrics:
        Optional `repro.obs.MetricsRegistry`-compatible object; fired
        faults increment ``repro_injected_faults_total{kind=...}``.
    """

    def __init__(self, error_rate: float = 0.0,
                 short_read_rate: float = 0.0,
                 bit_flip_rate: float = 0.0,
                 latency_rate: float = 0.0,
                 latency_ms: float = 0.0,
                 seed: int = 0,
                 script: Optional[Iterable[Optional[str]]] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 metrics=None):
        for name, rate in (("error_rate", error_rate),
                           ("short_read_rate", short_read_rate),
                           ("bit_flip_rate", bit_flip_rate),
                           ("latency_rate", latency_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.error_rate = error_rate
        self.short_read_rate = short_read_rate
        self.bit_flip_rate = bit_flip_rate
        self.latency_rate = latency_rate
        self.latency_ms = latency_ms
        self.seed = seed
        self._rng = random.Random(seed)
        self._script: Optional[List[Optional[str]]] = (
            list(script) if script is not None else None)
        self._script_pos = 0
        self._sleep = sleep
        self._metrics = metrics
        self.reads = 0
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def reset(self) -> None:
        """Rewind to the deterministic start (same seed, same faults)."""
        self._rng = random.Random(self.seed)
        self._script_pos = 0
        self.reads = 0
        self.injected = {kind: 0 for kind in FAULT_KINDS}

    def next_fault(self) -> Optional[str]:
        """Decide the fault (or None) for the next read call."""
        self.reads += 1
        if self._script is not None:
            if self._script_pos >= len(self._script):
                return None
            fault = self._script[self._script_pos]
            self._script_pos += 1
            if fault is not None and fault not in FAULT_KINDS:
                raise ValueError(f"unknown scripted fault {fault!r}; "
                                 f"one of {FAULT_KINDS}")
            return self._record(fault)
        for kind, rate in ((IO_ERROR, self.error_rate),
                           (SHORT_READ, self.short_read_rate),
                           (BIT_FLIP, self.bit_flip_rate),
                           (LATENCY, self.latency_rate)):
            # One RNG draw per kind regardless of outcome keeps the
            # sequence aligned across reads (reproducible per seed).
            roll = self._rng.random()
            if roll < rate:
                return self._record(kind)
        return None

    def _record(self, kind: Optional[str]) -> Optional[str]:
        if kind is not None:
            self.injected[kind] += 1
            if self._metrics is not None:
                self._metrics.counter("repro_injected_faults_total",
                                      {"kind": kind}).inc()
        return kind

    def corrupt_offset(self, length: int) -> int:
        """Deterministic position for a bit-flip within a chunk."""
        return self._rng.randrange(max(1, length))

    def wrap(self, fileobj, path: str = "?") -> "FaultyFile":
        """A `FaultyFile` proxy applying this injector to `fileobj`."""
        return FaultyFile(fileobj, self, path)


class FaultyFile:
    """A binary file proxy whose reads consult a `FaultInjector`.

    Only ``read`` misbehaves; everything else forwards to the wrapped
    handle.  Works as a context manager like the handle it wraps.
    """

    def __init__(self, fileobj, injector: FaultInjector, path: str = "?"):
        self._file = fileobj
        self._injector = injector
        self._path = path
        self._forced_eof = False

    def read(self, size: int = -1) -> bytes:
        if self._forced_eof:
            return b""
        fault = self._injector.next_fault()
        if fault == IO_ERROR:
            raise InjectedFault(
                f"injected I/O error reading {self._path}",
                kind=IO_ERROR, path=self._path)
        if fault == LATENCY:
            self._injector._sleep(self._injector.latency_ms / 1000.0)
        data = self._file.read(size)
        if not data:
            return data
        if fault == SHORT_READ:
            # Premature EOF: hand back a truncated chunk and end the
            # stream -- the caller gets fewer bytes than the file holds.
            self._forced_eof = True
            return data[: max(1, len(data) // 2)]
        if fault == BIT_FLIP:
            flipped = bytearray(data)
            pos = self._injector.corrupt_offset(len(flipped))
            flipped[pos] ^= 1 << (pos % 8)
            return bytes(flipped)
        return data

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name):
        return getattr(self._file, name)
