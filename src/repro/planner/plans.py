"""Join planning: merge vs. index join, static and dynamic (section III-C).

A level of the join-based algorithm intersects k sorted distinct-value
arrays.  The planner fixes the *order* (left-deep, shortest list first)
and picks the *algorithm* per pairwise join:

* ``merge``   -- cost ~ |A| + |B|; best when the sides are comparable.
* ``index``   -- cost ~ |A| * log2 |B|; best when one side is tiny
  (probes the larger side's sorted column / sparse index).
* ``dynamic`` -- decide per join from the sizes actually observed at run
  time, the paper's context-aware optimization: keyword correlation
  differs per level, so the same query may merge at one level and probe
  at another.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..algorithms.base import ExecutionStats

MERGE = "merge"
INDEX = "index"
DYNAMIC = "dynamic"
POLICIES = (MERGE, INDEX, DYNAMIC)


def merge_cost(probe_size: int, target_size: int) -> float:
    """Modeled cost of a merge intersection: scan both inputs."""
    return float(probe_size + target_size)


def index_cost(probe_size: int, target_size: int) -> float:
    """Modeled cost of an index intersection: probe the larger side."""
    return probe_size * max(1.0, math.log2(max(target_size, 1)))


def modeled_cost(algorithm: str, probe_size: int, target_size: int) -> float:
    """The section III-C cost model for one pairwise join.

    The same model `JoinPlanner.choose` decides with, exposed so the
    plan auditor (`repro.obs.audit`) can re-evaluate decisions against
    the sizes actually observed at run time.
    """
    if algorithm == INDEX:
        return index_cost(probe_size, target_size)
    if algorithm == MERGE:
        return merge_cost(probe_size, target_size)
    raise ValueError(f"no cost model for algorithm {algorithm!r}")


def alternative_of(algorithm: str) -> str:
    """The join algorithm `choose` did not pick."""
    if algorithm == MERGE:
        return INDEX
    if algorithm == INDEX:
        return MERGE
    raise ValueError(f"no alternative for algorithm {algorithm!r}")


def merge_intersect(a: np.ndarray, b: np.ndarray,
                    stats: Optional[ExecutionStats] = None) -> np.ndarray:
    """Sorted-set intersection by merging; scans both inputs."""
    if stats is not None:
        stats.merge_joins += 1
        stats.tuples_scanned += len(a) + len(b)
    return np.intersect1d(a, b, assume_unique=True)


def index_intersect(probe: np.ndarray, target: np.ndarray,
                    stats: Optional[ExecutionStats] = None) -> np.ndarray:
    """Sorted-set intersection by probing `target` for each probe value."""
    if stats is not None:
        stats.index_joins += 1
        stats.lookups += len(probe)
    if len(probe) == 0 or len(target) == 0:
        return np.empty(0, dtype=np.int64)
    pos = np.searchsorted(target, probe)
    pos = np.minimum(pos, len(target) - 1)
    hit = target[pos] == probe
    return probe[hit]


class JoinPlanner:
    """Chooses the join algorithm for each pairwise intersection.

    ``policy`` is one of ``merge``, ``index`` (forced plans, used by the
    ablation in the paper's section V-B discussion) or ``dynamic``.
    """

    def __init__(self, policy: str = DYNAMIC):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; one of {POLICIES}")
        self.policy = policy

    def choose(self, probe_size: int, target_size: int) -> str:
        if self.policy != DYNAMIC:
            return self.policy
        if probe_size == 0 or target_size == 0:
            return INDEX
        if index_cost(probe_size, target_size) < \
                merge_cost(probe_size, target_size):
            return INDEX
        return MERGE

    def intersect(self, a: np.ndarray, b: np.ndarray,
                  stats: Optional[ExecutionStats] = None) -> np.ndarray:
        """Intersect with the chosen algorithm; smaller side probes."""
        probe, target = (a, b) if len(a) <= len(b) else (b, a)
        algorithm = self.choose(len(probe), len(target))
        if stats is not None:
            stats.joins += 1
        if algorithm == INDEX:
            return index_intersect(probe, target, stats)
        return merge_intersect(probe, target, stats)

    def intersect_all(self, columns: List[np.ndarray],
                      stats: Optional[ExecutionStats] = None,
                      level: Optional[int] = None) -> np.ndarray:
        """Left-deep k-way intersection, shortest columns first.

        The intermediate result can only shrink (set semantics), so after
        the first join the planner effectively always has a small probe
        side when the keywords are weakly correlated -- the behaviour
        section III-C describes.
        """
        ordered = sorted(columns, key=len)
        result = ordered[0]
        for column in ordered[1:]:
            if len(result) == 0:
                break
            algorithm = self.choose(len(result), len(column))
            if stats is not None and level is not None:
                stats.per_level_plan.append((level, algorithm))
            result = self.intersect(result, column, stats)
        return result
