"""Join-cardinality estimation (paper section V-D).

The hybrid plan needs to predict, per level, how many JDewey numbers the
k columns will share before running the join: a large estimate favours
the top-K join (many results, early termination pays off), a small one
favours the complete join-based plan.  The estimator is the classic
containment-assumption formula from relational optimizers, applied to
the per-column distinct counts, optionally refined by a sampled overlap
probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class CardinalityEstimate:
    """Both ingredients of one estimate, for plan auditing.

    ``containment`` is the closed-form independence estimate,
    ``sampled`` the probe-refined one (0.0 when sampling saw nothing or
    was disabled), ``combined`` the value the planner actually uses.
    """

    containment: float
    sampled: float
    combined: float


def containment_estimate(distinct_sizes: Sequence[int],
                         domain_size: int) -> float:
    """Expected intersection size under independence within the domain.

    With columns of d_1..d_k distinct values drawn from a level domain of
    size D, E[|intersection|] = D * prod(d_i / D).
    """
    if not distinct_sizes or domain_size <= 0:
        return 0.0
    estimate = float(domain_size)
    for size in distinct_sizes:
        estimate *= min(size, domain_size) / domain_size
    return estimate


def sampled_estimate(columns: List[np.ndarray], sample_size: int = 64,
                     rng: Optional[np.random.Generator] = None) -> float:
    """Refined estimate: probe a sample of the smallest column.

    Samples values from the shortest distinct array, probes the others,
    and scales the hit rate back up.  Deterministic when `rng` is seeded.
    """
    nonempty = [c for c in columns if len(c)]
    if len(nonempty) != len(columns) or not columns or sample_size <= 0:
        return 0.0
    ordered = sorted(columns, key=len)
    smallest = ordered[0]
    if len(smallest) <= sample_size:
        sample = smallest
        scale = 1.0
    else:
        rng = rng if rng is not None else np.random.default_rng(0)
        picks = rng.choice(len(smallest), size=sample_size, replace=False)
        sample = smallest[np.sort(picks)]
        scale = len(smallest) / sample_size
    hits = sample
    for column in ordered[1:]:
        if len(hits) == 0:
            return 0.0
        pos = np.searchsorted(column, hits)
        pos = np.minimum(pos, len(column) - 1)
        hits = hits[column[pos] == hits]
    return len(hits) * scale


class CardinalityEstimator:
    """Per-level join-cardinality estimates for the hybrid planner.

    ``sample_size=0`` disables the probe refinement entirely, leaving
    the pure containment formula -- the configuration the plan auditor
    uses to demonstrate estimation error on correlated keywords.
    """

    def __init__(self, sample_size: int = 64, seed: int = 0):
        self.sample_size = sample_size
        self._rng = np.random.default_rng(seed)

    def estimate(self, columns: List[np.ndarray],
                 domain_size: Optional[int] = None) -> float:
        """Best-effort estimate of |intersection| of the distinct arrays."""
        return self.estimate_detail(columns, domain_size).combined

    def estimate_detail(self, columns: List[np.ndarray],
                        domain_size: Optional[int] = None
                        ) -> CardinalityEstimate:
        """Containment, sampled and combined estimates in one object."""
        if any(len(c) == 0 for c in columns) or not columns:
            return CardinalityEstimate(0.0, 0.0, 0.0)
        if domain_size is None:
            domain_size = int(max(c[-1] for c in columns))
        base = containment_estimate([len(c) for c in columns], domain_size)
        refined = sampled_estimate(columns, self.sample_size, self._rng)
        # The sampled probe dominates when it saw anything; the formula
        # covers the all-misses case where sampling returns 0.
        combined = max(base, refined) if refined > 0 else base
        return CardinalityEstimate(base, refined, combined)
