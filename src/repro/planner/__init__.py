"""Query planning: join-algorithm selection and cardinality estimation."""

from .plans import (DYNAMIC, INDEX, MERGE, POLICIES, JoinPlanner,
                    index_intersect, merge_intersect)
from .cardinality import (CardinalityEstimator, containment_estimate,
                          sampled_estimate)

__all__ = [
    "DYNAMIC",
    "INDEX",
    "MERGE",
    "POLICIES",
    "JoinPlanner",
    "index_intersect",
    "merge_intersect",
    "CardinalityEstimator",
    "containment_estimate",
    "sampled_estimate",
]
