"""Workload replay: re-drive a captured workload and diff the outcome.

``repro replay WORKLOAD DB`` loads a `repro.serve.capture` JSONL
workload and evaluates every recorded query against `DB` (sharded or
not), in-process, producing a **diff report**:

* **digests** -- per-query result digests vs. the capture (or a prior
  replay via ``--against``): a mismatch means the answers changed;
* **latency** -- replayed p50/p95/p99 next to the captured ones;
* **resources** -- summed `ResourceAccount` totals replayed vs.
  captured, plus the per-counter delta: did the same workload touch
  more data than it used to?

Two driving modes: **closed-loop** (default; back-to-back, what the
latency percentiles should be measured at) and **open-loop**
(``--mode open``; honor the recorded arrival offsets, scaled by
``--speed``) for load-shaped re-runs.

The report is ``repro.bench.replay/v1`` with a regress-compatible
``ops.replay_query`` entry and ``config.scale="replay"``, so
``repro replay --append`` files it into ``BENCH_history.jsonl`` and
``repro regress --check`` guards the replay p50 like any other serve
op (first append seeds the series).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..serve.capture import read_workload, result_digest

REPLAY_SCHEMA = "repro.bench.replay/v1"

#: The scalar account totals diffed between capture and replay.
ACCOUNT_TOTALS = ("bytes_mapped", "bytes_copied", "bytes_decompressed",
                  "postings_bytes_read", "columns_decompressed",
                  "cache_bytes_saved", "cache_bytes_paid")


def _percentiles(samples: Sequence[float]) -> Dict[str, float]:
    if not samples:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
                "mean_ms": 0.0, "n": 0}
    arr = np.asarray(samples, dtype=np.float64)
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
        "mean_ms": float(arr.mean()),
        "n": int(len(arr)),
    }


def _payload_results(results) -> List[Dict[str, Any]]:
    """The wire shape the daemon digests (`ServeDaemon._payload`)."""
    return [{
        "dewey": list(r.node.dewey),
        "tag": r.node.tag,
        "level": r.level,
        "score": r.score,
        "witnesses": list(r.witness_scores),
    } for r in results]


def _sum_accounts(accounts: Sequence[Optional[Dict[str, Any]]]
                  ) -> Dict[str, int]:
    totals = {name: 0 for name in ACCOUNT_TOTALS}
    for account in accounts:
        if not account:
            continue
        for name in ACCOUNT_TOTALS:
            value = account.get(name)
            if isinstance(value, (int, float)):
                totals[name] += int(value)
    return totals


def _evaluate(db, entry: Dict[str, Any]):
    """Run one captured query; returns ``(payload_results, resources)``.

    Uses the same evaluation the daemon's inline (``workers=0``) mode
    uses -- `search_topk` / `search` on the database facade -- so a
    capture taken inline round-trips digest-exactly against the same
    database.
    """
    terms = entry.get("terms") or []
    semantics = entry.get("semantics", "elca")
    if entry.get("endpoint") == "topk":
        top = db.search_topk(terms, int(entry.get("k") or 10), semantics)
        return _payload_results(top.results), top.stats.resources
    results, stats = db.search(terms, semantics, with_stats=True)
    return _payload_results(results), stats.resources


def run_replay(workload_path: str, db_path: str, mode: str = "closed",
               speed: float = 1.0, limit: Optional[int] = None,
               against: Optional[Dict[str, Any]] = None,
               db=None, lazy: bool = True) -> Dict[str, Any]:
    """Replay `workload_path` against `db_path` and build the report.

    ``against`` (a prior replay report dict) switches the latency and
    resource baselines from the capture to that report -- comparing two
    replays of the same workload on different databases or configs.
    ``db`` injects an already-open database (tests, doctor).  The
    database opens lazy/mmap-backed by default -- the same mode
    ``repro serve`` runs in -- so the resource diff compares like with
    like; ``lazy=False`` mirrors serve's ``--eager``.
    """
    header, entries = read_workload(workload_path)
    if limit is not None:
        entries = entries[:limit]
    if db is None:
        from ..diskdb import load_database

        db = load_database(db_path, lazy=lazy,
                           verify="lazy" if lazy else "eager")
    latencies: List[float] = []
    replay_accounts: List[Optional[Dict[str, Any]]] = []
    mismatches: List[Dict[str, Any]] = []
    skipped_partial = 0
    matched = 0
    started = time.perf_counter()
    for index, entry in enumerate(entries):
        if mode == "open":
            due = started + (entry.get("offset_ms", 0.0) / 1000.0) / max(
                speed, 1e-9)
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        t0 = time.perf_counter()
        payload, resources = _evaluate(db, entry)
        latencies.append((time.perf_counter() - t0) * 1000.0)
        # Diff like with like: an entry the capture never accounted
        # (served from the daemon's result cache) re-executes here, and
        # its cache-attribution counters (`cache_bytes_saved`) would
        # register as a spurious delta against a capture that recorded
        # nothing for it.  Its digest is still compared.
        replay_accounts.append(
            resources if entry.get("account") is not None else None)
        if entry.get("partial"):
            # A deadline/degradation partial is not reproducible by
            # construction; its digest is informational only.
            skipped_partial += 1
            continue
        digest = result_digest(payload)
        if digest == entry.get("digest"):
            matched += 1
        else:
            mismatches.append({
                "index": index,
                "terms": entry.get("terms"),
                "endpoint": entry.get("endpoint"),
                "k": entry.get("k"),
                "captured": entry.get("digest"),
                "replayed": digest,
                "captured_count": entry.get("result_count"),
                "replayed_count": len(payload),
            })
    captured_accounts = [e.get("account") for e in entries]
    captured_totals = _sum_accounts(captured_accounts)
    replayed_totals = _sum_accounts(replay_accounts)
    if against is not None:
        baseline_totals = dict(against.get("resources", {})
                               .get("replayed", captured_totals))
        baseline_latency = dict(against.get("ops", {})
                                .get("replay_query", {}))
        baseline_label = "prior replay"
    else:
        baseline_totals = captured_totals
        baseline_latency = _percentiles(
            [e.get("elapsed_ms", 0.0) for e in entries])
        baseline_label = "capture"
    delta = {name: replayed_totals[name] - baseline_totals.get(name, 0)
             for name in ACCOUNT_TOTALS
             if replayed_totals[name] != baseline_totals.get(name, 0)}
    accounted = sum(1 for a in captured_accounts if a)
    return {
        "schema": REPLAY_SCHEMA,
        "workload": workload_path,
        "workload_meta": header.get("meta"),
        "db": db_path,
        "queries": len(entries),
        "config": {"scale": "replay", "mode": mode, "speed": speed},
        "ops": {"replay_query": _percentiles(latencies)},
        "baseline": {"source": baseline_label,
                     "latency": baseline_latency},
        "digests": {
            "compared": matched + len(mismatches),
            "matched": matched,
            "mismatched": len(mismatches),
            "skipped_partial": skipped_partial,
            "mismatches": mismatches[:20],
        },
        "resources": {
            "captured_queries_with_account": accounted,
            "captured": captured_totals,
            "replayed": replayed_totals,
            "baseline": baseline_totals,
            "delta": delta,
        },
    }


def format_replay_report(report: Dict[str, Any]) -> str:
    ops = report["ops"]["replay_query"]
    digests = report["digests"]
    resources = report["resources"]
    baseline = report.get("baseline", {})
    lines = [
        f"replayed {report['queries']} queries from {report['workload']} "
        f"against {report['db']} "
        f"({report['config']['mode']}-loop, x{report['config']['speed']})",
        f"  latency: p50 {ops['p50_ms']:.3f}ms  p95 {ops['p95_ms']:.3f}ms  "
        f"p99 {ops['p99_ms']:.3f}ms",
    ]
    base_latency = baseline.get("latency") or {}
    if base_latency.get("n"):
        lines.append(
            f"  {baseline.get('source', 'capture')}: "
            f"p50 {base_latency.get('p50_ms', 0.0):.3f}ms  "
            f"p95 {base_latency.get('p95_ms', 0.0):.3f}ms")
    lines.append(
        f"  digests: {digests['matched']} matched, "
        f"{digests['mismatched']} mismatched, "
        f"{digests['skipped_partial']} partial (skipped)")
    for miss in digests["mismatches"][:5]:
        lines.append(f"    !! #{miss['index']} {miss['terms']} "
                     f"({miss['captured_count']} -> "
                     f"{miss['replayed_count']} results)")
    if resources["delta"]:
        lines.append("  resource deltas vs "
                     f"{baseline.get('source', 'capture')}:")
        for name, value in sorted(resources["delta"].items()):
            lines.append(f"    {name}: {value:+d}")
    else:
        lines.append("  resources: no deltas vs "
                     f"{baseline.get('source', 'capture')}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro replay",
        description="re-drive a captured workload and diff the outcome")
    parser.add_argument("workload", help="repro.workload/v1 JSONL "
                        "(from `repro serve --capture`)")
    parser.add_argument("db", help="database directory to replay against")
    parser.add_argument("--mode", choices=("closed", "open"),
                        default="closed",
                        help="closed-loop back-to-back (default) or "
                             "open-loop at the recorded arrival offsets")
    parser.add_argument("--speed", type=float, default=1.0,
                        help="open-loop arrival-rate multiplier")
    parser.add_argument("--limit", type=int, default=None,
                        help="replay only the first N queries")
    parser.add_argument("--against", metavar="REPORT_JSON",
                        help="diff against a prior replay report instead "
                             "of the capture")
    parser.add_argument("--out", metavar="PATH",
                        help="write the report JSON here")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    parser.add_argument("--append", action="store_true",
                        help="append the report to the regress history")
    parser.add_argument("--history", default="BENCH_history.jsonl")
    parser.add_argument("--fail-on-mismatch", action="store_true",
                        help="exit 1 when any digest mismatched or any "
                             "resource total grew vs the baseline")
    parser.add_argument("--eager", action="store_true",
                        help="open the database eagerly instead of "
                             "lazy/mmap-backed (mirrors `repro serve "
                             "--eager`; resource totals will differ "
                             "from a lazily-served capture)")
    args = parser.parse_args(argv)

    against = None
    if args.against:
        with open(args.against, "r", encoding="utf-8") as handle:
            against = json.load(handle)
    report = run_replay(args.workload, args.db, mode=args.mode,
                        speed=args.speed, limit=args.limit,
                        against=against, lazy=not args.eager)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_replay_report(report))
    if args.append:
        from .regress import append_run

        append_run(report, args.history)
        print(f"appended replay report to {args.history} (scale=replay)")
    if args.fail_on_mismatch:
        grew = any(value > 0
                   for value in report["resources"]["delta"].values())
        if report["digests"]["mismatched"] or grew:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
