"""Benchmark harness regenerating the paper's tables and figures."""

from .harness import (BenchConfig, Workbench, fig9_equal_rows, fig9_rows,
                      fig10a_rows, fig10bc_rows, run_complete, run_topk,
                      table1_rows)

__all__ = [
    "BenchConfig",
    "Workbench",
    "fig9_equal_rows",
    "fig9_rows",
    "fig10a_rows",
    "fig10bc_rows",
    "run_complete",
    "run_topk",
    "table1_rows",
]
