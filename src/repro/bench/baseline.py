"""Hot-path baseline emitter: writes ``BENCH_hotpath.json``.

Measures the operations this codebase treats as its serving hot path --
the join-based level loop (vectorized vs the scalar reference), the bulk
erasure APIs (vs their scalar loops) and cached vs uncached query
serving -- on the Figure 9 DBLP workload's high-frequency keyword pair.
Per-op p50/p95 wall times and the derived speedups are written as JSON
so later PRs have a perf trajectory to compare against::

    PYTHONPATH=src python -m repro.bench.baseline --small --out BENCH_hotpath.json

Schema (``repro.bench.hotpath/v1``)::

    {
      "schema": "repro.bench.hotpath/v1",
      "config": {"scale", "n_papers", "high_freq", "repeats"},
      "workload": {"queries": [[term, ...], ...], "semantics": "elca"},
      "ops": {"<op>": {"p50_ms": float, "p95_ms": float, "repeats": int}},
      "metrics": {...},               # MetricsRegistry.snapshot() of the run
      "speedups": {"<pair>": float},  # scalar p50 / vectorized p50
      "batch_pool": {                 # search_batch throughput (qps)
        "queries": int, "workers": [1, 2, 4],
        "thread": {"1": float, ...}, "process": {"1": float, ...}
      }
    }

Ops: ``level_loop_scalar`` / ``level_loop_vectorized`` (one complete
ELCA evaluation of every workload query), ``erased_counts_scalar`` /
``erased_counts_bulk``, ``mark_many_scalar`` / ``mark_many_bulk`` (the
erasure micro-ops), ``decompress_column_scalar`` /
``decompress_column_vectorized`` (decoding the workload terms'
compressed level columns -- exactly what a lazy v3 load pays when
serving these queries), ``decode_for_scalar`` / ``decode_for`` (the
format-v4 FOR/bit-packed codec on the same columns),
``erase_bitmap_ops_dense`` / ``erase_bitmap_ops`` (the dense-bitmap
reference vs the roaring eraser's bulk mark+count cycle),
``decode_cache_miss`` / ``decode_cache_hit`` (cold decode+populate vs
warm hits through the decoded-column cache on a v4 lazy index),
``query_uncached`` / ``query_cached`` (one query through
`XMLDatabase.search_batch`, result cache cold vs warm).

The ``batch_pool`` section times `search_batch` on the XMark corpus
under the thread pool vs the fork-based process pool at 1/2/4 workers;
the acceptance bar for the multi-process path is process qps > thread
qps at 2+ workers.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..algorithms.erasure import make_eraser
from ..algorithms.join_based import JoinBasedSearch
from ..index.compression import (compress_column, decode_for,
                                 decompress_column, encode_for)
from ..obs.metrics import get_registry
from .harness import BenchConfig, Workbench

SCHEMA = "repro.bench.hotpath/v1"
DEFAULT_OUT = "BENCH_hotpath.json"
# Every random input to the measurement is pinned and recorded in the
# emitted JSON, so reruns across commits measure the same workload --
# the contract the perf-regression series (repro.bench.regress) needs.
ERASURE_SEED = 5


def _timed_samples(fn: Callable[[], object], repeats: int) -> List[float]:
    """Wall times in milliseconds for `repeats` runs of `fn`."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000.0)
    return samples


def _op_entry(samples: List[float]) -> Dict[str, float]:
    return {
        "p50_ms": float(np.percentile(samples, 50)),
        "p95_ms": float(np.percentile(samples, 95)),
        "repeats": len(samples),
    }


def _fig9_high_pair(bench: Workbench) -> List[List[str]]:
    """The Figure 9 k=2 cells at the highest planted low frequency --
    both keywords frequent, so the level loop has maximal work."""
    top = max(bench.config.low_freqs)
    return [list(spec.terms) for spec in bench.builder.frequency_sweep(2)
            if spec.low_frequency == top]


def _erasure_fixture(seed: int = ERASURE_SEED, size: int = 200_000,
                     n_marks: int = 800, n_queries: int = 4_000):
    """Random contained-or-disjoint marks + query ranges for the erasure
    micro-ops (both erasers accept the same geometry)."""
    rng = np.random.default_rng(seed)
    points = np.sort(rng.choice(size, size=2 * n_marks, replace=False))
    mark_lows = points[0::2].astype(np.int64)
    mark_highs = points[1::2].astype(np.int64)
    q_lows = rng.integers(0, size - 1, size=n_queries).astype(np.int64)
    q_highs = (q_lows
               + rng.integers(1, 500, size=n_queries)).clip(max=size)
    return size, mark_lows, mark_highs, q_lows, q_highs


def _column_values(db, queries: List[List[str]]) -> List:
    """The raw level columns of every workload term -- the values a
    lazy load decodes when serving these queries."""
    index = db.columnar_index
    columns = []
    for term in sorted({term for query in queries for term in query}):
        postings = index.term_postings(term)
        for level in range(1, postings.max_len + 1):
            columns.append(postings.column(level).values)
    return columns


def _xmark_batch_queries(db, n_queries: int) -> List[str]:
    """Two-keyword conjunctions over the most frequent XMark terms --
    enough per-query work that pool dispatch overhead is not the story."""
    index = db.columnar_index
    by_freq = sorted(index.vocabulary,
                     key=lambda term: -len(index.term_postings(term).seqs))
    top = [term for term in by_freq if term.isalpha()][:16] or by_freq[:16]
    queries = []
    for i in range(n_queries):
        queries.append(f"{top[i % len(top)]} "
                       f"{top[(i * 7 + 3) % len(top)]}")
    return queries


def batch_pool_report(bench: Workbench,
                      workers: Sequence[int] = (1, 2, 4),
                      n_queries: int = 32) -> Dict:
    """Thread-pool vs process-pool `search_batch` throughput (qps).

    The workload is top-K serving (k=10, the paper's headline mode), so
    the per-query result transfer between processes stays tiny while the
    per-query evaluation work is real.  Pools are built outside the
    timed region (both modes), the result cache is off so every run does
    identical work, and the process pool inherits the parent index
    copy-on-write over ``fork`` -- the same shape `repro serve-batch`
    uses.  On a single-core host neither pool can beat inline serving
    (there is no parallelism to buy); interpret the qps table alongside
    the recorded ``cpu_count``.
    """
    import os

    db = bench.xmark
    db.columnar_index
    queries = _xmark_batch_queries(db, n_queries)
    db.search_batch(queries[:4], k=10, use_cache=False)   # warm the index

    report: Dict = {"queries": len(queries), "workers": list(workers),
                    "cpu_count": os.cpu_count(), "k": 10,
                    "thread": {}, "process": {}}
    for mode in ("thread", "process"):
        for width in workers:
            pool = (db.batch_executor(threads=width) if mode == "thread"
                    else db.batch_executor(processes=width))
            try:
                db.search_batch(queries[:2], k=10, executor=pool,
                                use_cache=False)    # pool warmup
                start = time.perf_counter()
                batch = db.search_batch(queries, k=10, executor=pool,
                                        use_cache=False)
                elapsed = time.perf_counter() - start
            finally:
                pool.shutdown(wait=True)
            if not batch.ok:
                raise RuntimeError(f"batch_pool {mode}x{width} had errors:"
                                   f" {batch.errors}")
            report[mode][str(width)] = len(queries) / elapsed
    return report


def hotpath_report(bench: Workbench, repeats: int = 5,
                   scale_label: str = "full") -> Dict:
    """Measure every hot-path op pair and return the report dict.

    The process metrics registry is reset first, so the report's
    ``metrics`` key is a snapshot of exactly this run's query serving
    (latency histograms, cache hit ratios, join counters).
    """
    get_registry().reset()
    db = bench.dblp
    queries = _fig9_high_pair(bench)
    specs = [spec for spec in bench.builder.frequency_sweep(2)
             if spec.low_frequency == max(bench.config.low_freqs)]
    bench.warm(db, specs)

    ops: Dict[str, Dict[str, float]] = {}

    def measure(name: str, fn: Callable[[], object]) -> float:
        fn()  # one warmup run outside the timed region
        samples = _timed_samples(fn, repeats)
        ops[name] = _op_entry(samples)
        return ops[name]["p50_ms"]

    # -- level loop: scalar reference vs vectorized -------------------
    scalar_engine = JoinBasedSearch(db.columnar_index, vectorized=False)
    vector_engine = JoinBasedSearch(db.columnar_index, vectorized=True)

    def run_engine(engine):
        for terms in queries:
            engine.evaluate(terms, "elca")

    scalar_p50 = measure("level_loop_scalar",
                         lambda: run_engine(scalar_engine))
    vector_p50 = measure("level_loop_vectorized",
                         lambda: run_engine(vector_engine))

    # -- erasure micro-ops: bulk vs scalar loops ----------------------
    size, m_lows, m_highs, q_lows, q_highs = _erasure_fixture()
    marked = make_eraser("bitmap", size)
    marked.mark_many(m_lows, m_highs)
    marked.erased_counts(q_lows[:1], q_highs[:1])  # build the prefix

    counts_scalar_p50 = measure(
        "erased_counts_scalar",
        lambda: [marked.erased_count(int(a), int(b))
                 for a, b in zip(q_lows, q_highs)])
    counts_bulk_p50 = measure(
        "erased_counts_bulk",
        lambda: marked.erased_counts(q_lows, q_highs))

    def mark_scalar():
        eraser = make_eraser("bitmap", size)
        for a, b in zip(m_lows, m_highs):
            eraser.mark(int(a), int(b))

    def mark_bulk():
        make_eraser("bitmap", size).mark_many(m_lows, m_highs)

    mark_scalar_p50 = measure("mark_many_scalar", mark_scalar)
    mark_bulk_p50 = measure("mark_many_bulk", mark_bulk)

    # -- column decode: scalar reference vs numpy-batched -------------
    values_list = _column_values(db, queries)
    payloads = [compress_column(values) for values in values_list]

    def decode_all(vectorized: bool):
        for scheme, payload in payloads:
            decompress_column(scheme, payload, vectorized=vectorized)

    decode_scalar_p50 = measure("decompress_column_scalar",
                                lambda: decode_all(False))
    decode_vector_p50 = measure("decompress_column_vectorized",
                                lambda: decode_all(True))

    # -- FOR decode: the format-v4 bit-packed codec on the same
    # workload columns, shift/mask kernels vs the scalar reference ----
    for_payloads = [encode_for(values) for values in values_list]

    def decode_for_all(vectorized: bool):
        for blob in for_payloads:
            decode_for(blob, vectorized=vectorized)

    for_scalar_p50 = measure("decode_for_scalar",
                             lambda: decode_for_all(False))
    for_vector_p50 = measure("decode_for", lambda: decode_for_all(True))

    # -- roaring eraser: the v4 default engine's bulk mark + count
    # cycle vs the dense-bitmap reference on the same fixture ---------
    def erase_cycle(mode: str):
        eraser = make_eraser(mode, size)
        eraser.mark_many(m_lows, m_highs)
        eraser.erased_counts(q_lows, q_highs)

    erase_dense_p50 = measure("erase_bitmap_ops_dense",
                              lambda: erase_cycle("bitmap"))
    erase_roaring_p50 = measure("erase_bitmap_ops",
                                lambda: erase_cycle("roaring"))

    # -- decoded-column cache: warm hits vs cold decode+populate on a
    # v4 lazy index serving the workload terms ------------------------
    from ..cache import DecodedColumnCache
    from ..index.lazydisk import LazyColumnarIndex
    from ..index.storage import serialize_columnar_index_v4

    eager_index = db.columnar_index
    v4_blob = serialize_columnar_index_v4(eager_index)
    decoded_cache = DecodedColumnCache(64 * 1024 * 1024)
    lazy_index = LazyColumnarIndex(
        v4_blob, eager_index.tree, eager_index.tokenizer,
        eager_index.ranking, verify="off", decoded_cache=decoded_cache)
    workload_terms = sorted({term for query in queries for term in query})

    def touch_columns():
        for term in workload_terms:
            postings = lazy_index.term_postings(term)
            for level in range(1, postings.max_len + 1):
                postings.column(level)

    def touch_cold():
        decoded_cache.clear()
        touch_columns()

    cache_miss_p50 = measure("decode_cache_miss", touch_cold)
    touch_columns()   # warm the cache once
    cache_hit_p50 = measure("decode_cache_hit", touch_columns)

    # -- query serving: result cache cold vs warm ---------------------
    query = queries[0]

    def uncached():
        db.search_batch([query], use_cache=False)

    def cached():
        db.search_batch([query])

    uncached_p50 = measure("query_uncached", uncached)
    db.cache.clear()
    cached()  # populate the result cache once
    cached_p50 = measure("query_cached", cached)

    return {
        "schema": SCHEMA,
        "config": {
            "scale": scale_label,
            "n_papers": bench.config.n_papers,
            "high_freq": bench.config.high_freq,
            "repeats": repeats,
            "seed": bench.config.seed,
            "workload_seed": bench.config.workload_seed,
            "erasure_seed": ERASURE_SEED,
        },
        "workload": {"queries": queries, "semantics": "elca"},
        "ops": ops,
        "metrics": get_registry().snapshot(),
        "speedups": {
            "level_loop": scalar_p50 / vector_p50,
            "erased_counts": counts_scalar_p50 / counts_bulk_p50,
            "mark_many": mark_scalar_p50 / mark_bulk_p50,
            "decompress_column": decode_scalar_p50 / decode_vector_p50,
            "decode_for": for_scalar_p50 / for_vector_p50,
            "erase_bitmap": erase_dense_p50 / erase_roaring_p50,
            "decode_cache": cache_miss_p50 / cache_hit_p50,
            "result_cache": uncached_p50 / cached_p50,
        },
        "batch_pool": batch_pool_report(bench),
    }


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        description="emit the hot-path baseline (BENCH_hotpath.json)")
    parser.add_argument("--small", action="store_true",
                        help="smoke-scale corpus (CI)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT})")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--history", metavar="JSONL", default=None,
                        help="also append this run to the perf-regression "
                             "series (see repro.bench.regress)")
    args = parser.parse_args(argv)

    scale = "small" if args.small else "full"
    bench = Workbench(BenchConfig.small() if args.small else BenchConfig())
    report = hotpath_report(bench, repeats=args.repeats, scale_label=scale)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    speedups = ", ".join(f"{name} {value:.2f}x"
                         for name, value in report["speedups"].items())
    print(f"wrote {args.out} ({scale}): {speedups}")
    pool = report["batch_pool"]
    for mode in ("thread", "process"):
        qps = ", ".join(f"{width}w {pool[mode][width]:.0f} qps"
                        for width in sorted(pool[mode], key=int))
        print(f"batch_pool[{mode}]: {qps}")
    if args.history:
        from .regress import append_run

        entry = append_run(report, args.history)
        sha = entry.get("git_sha") or "no-git"
        print(f"appended to {args.history} (sha={sha[:12]})")


if __name__ == "__main__":
    main()
